"""Exception taxonomy for the FFIS reproduction.

The taxonomy separates three very different kinds of failure:

* :class:`ApplicationCrash` and its subclasses — *expected experimental
  outcomes*.  When a fault-injection run raises one of these, the campaign
  runner records a ``CRASH`` outcome.  They model the application (or a
  library beneath it, such as the mini-HDF5 reader) aborting because
  corrupted state became unjustifiable.
* :class:`FFISError` — misuse of the framework itself (bad configuration,
  arming an injector twice, targeting an unknown primitive).  These are
  bugs in the experiment setup and are never swallowed by campaigns.
* :class:`VFSError` and subclasses — POSIX-style errors surfaced by the
  virtual file system (missing file, is-a-directory, ...).  Whether a
  particular ``VFSError`` counts as a crash outcome depends on whether the
  application under test handles it; unhandled ones propagate and are
  classified as crashes by the campaign runner.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class FFISError(ReproError):
    """Misuse of the FFIS framework (configuration or sequencing bug)."""


class ConfigError(FFISError):
    """A user configuration could not be validated."""


class ApplicationCrash(ReproError):
    """An application under test terminated before producing its output.

    Campaigns catch this (and any other unhandled exception escaping the
    application callable) and record a ``CRASH`` outcome.
    """


class FormatError(ApplicationCrash):
    """A structured file (mini-HDF5 / mini-FITS) failed validation.

    Raised by the strict readers when a signature, version number, message
    type, or structural size check fails -- the same condition under which
    the real HDF5 library throws and the paper records a crash.
    """


class VFSError(ReproError, OSError):
    """POSIX-style error from the virtual file system."""

    errno_name = "EIO"


class FileNotFound(VFSError):
    errno_name = "ENOENT"


class FileExists(VFSError):
    errno_name = "EEXIST"


class NotADirectory(VFSError):
    errno_name = "ENOTDIR"


class IsADirectory(VFSError):
    errno_name = "EISDIR"


class DirectoryNotEmpty(VFSError):
    errno_name = "ENOTEMPTY"


class BadFileDescriptor(VFSError):
    errno_name = "EBADF"


class ReadOnlyViolation(VFSError):
    errno_name = "EROFS"


class NotMounted(FFISError):
    """An I/O primitive was invoked on an unmounted FFIS file system."""
