"""Confidence intervals for campaign outcome rates.

The paper runs 1,000 injections per cell "to obtain a statistically
significant estimate, which leaves a 1%~2% error bar on average for 95%
confidence interval".  These helpers compute the same quantities so
results at any campaign size report their own uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Mapping, Protocol, Union

from repro.core.outcomes import Outcome, OutcomeTally, RunRecord


class SupportsTally(Protocol):
    """Anything exposing a live tally (e.g. the engine's ``TallySink``)."""

    tally: OutcomeTally


#: Anything the stats helpers can tabulate: a finished tally, a streaming
#: sink with a ``tally`` attribute (e.g. the engine's ``TallySink``), or
#: a (possibly lazy) iterable of run records.
TallySource = Union[OutcomeTally, SupportsTally, Iterable[RunRecord]]


def as_tally(source: TallySource) -> OutcomeTally:
    """Coerce any tally source to an :class:`OutcomeTally`.

    Record iterables are consumed in one streaming pass, so results read
    lazily from a JSONL checkpoint never need to be resident.
    """
    if isinstance(source, OutcomeTally):
        return source
    sink_tally = getattr(source, "tally", None)
    if isinstance(sink_tally, OutcomeTally):
        return sink_tally
    return OutcomeTally.from_records(source)

#: Two-sided z value for 95 % confidence.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class RateEstimate:
    """A proportion with its confidence interval."""

    rate: float
    low: float
    high: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return (f"{100 * self.rate:.1f}% "
                f"[{100 * self.low:.1f}, {100 * self.high:.1f}] (n={self.n})")


def normal_interval(successes: int, n: int, z: float = Z_95) -> RateEstimate:
    """Wald (normal-approximation) interval -- what the paper quotes."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= successes <= n:
        raise ValueError(f"successes {successes} outside [0, {n}]")
    p = successes / n
    half = z * math.sqrt(p * (1.0 - p) / n)
    return RateEstimate(rate=p, low=max(0.0, p - half),
                        high=min(1.0, p + half), n=n)


def wilson_interval(successes: int, n: int, z: float = Z_95) -> RateEstimate:
    """Wilson score interval -- better behaved near 0 %/100 %."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= successes <= n:
        raise ValueError(f"successes {successes} outside [0, {n}]")
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4 * n * n))
    # Clamp against floating-point slop so p always lies inside the CI.
    low = min(max(0.0, center - half), p)
    high = max(min(1.0, center + half), p)
    return RateEstimate(rate=p, low=low, high=high, n=n)


def rate_estimate(successes: int, n: int, method: str = "wilson") -> RateEstimate:
    if method == "wilson":
        return wilson_interval(successes, n)
    if method == "normal":
        return normal_interval(successes, n)
    raise ValueError(f"unknown interval method {method!r}")


def campaign_error_bars(tally: TallySource,
                        method: str = "wilson") -> Dict[Outcome, RateEstimate]:
    """Per-outcome rate estimates for one campaign tally.

    Accepts a tally, a streaming ``TallySink``, or an iterable of run
    records (e.g. ``load_records(path)`` from a checkpoint file).
    """
    tally = as_tally(tally)
    n = tally.total
    if n == 0:
        raise ValueError("empty tally")
    return {o: rate_estimate(tally.counts[o], n, method) for o in Outcome}


def mean_half_width(estimates: Mapping[Outcome, RateEstimate]) -> float:
    """Average CI half-width across outcomes (the paper's "error bar")."""
    values = list(estimates.values())
    return sum(e.half_width for e in values) / len(values)


def record_fault_count(record: RunRecord) -> int:
    """The nominal fault count *k* a record was produced under.

    Scenario-stamped records report their scenario's k (``k=3`` -> 3,
    ``burst=4`` -> 4, decay -> its byte count); legacy single-fault
    records are k=1.  The stamp is authoritative over ``instances``
    because colliding draws can collapse a k-fault plan to fewer
    distinct points without changing the scenario being measured.
    """
    return _stamp_fault_count(getattr(record, "scenario", None))


@lru_cache(maxsize=None)
def _stamp_fault_count(stamp) -> int:
    # A million-record stream carries only a handful of distinct stamps;
    # parse each stamp once, not once per record.
    from repro.core.scenario import parse_scenario

    if stamp is None:
        return 1
    try:
        return parse_scenario(stamp).fault_count
    except Exception as exc:
        from repro.errors import FFISError

        raise FFISError(
            f"record stamped with unknown scenario {stamp!r}: {exc}") from exc


def per_k_tallies(records: Iterable[RunRecord]) -> Dict[int, OutcomeTally]:
    """Group a record stream into one :class:`OutcomeTally` per fault
    count k (streaming single pass; records never need to be resident)."""
    tallies: Dict[int, OutcomeTally] = {}
    for record in records:
        k = record_fault_count(record)
        tallies.setdefault(k, OutcomeTally()).add_record(record)
    return dict(sorted(tallies.items()))


def sdc_vs_k(source: Union[Iterable[RunRecord], Mapping[int, OutcomeTally]],
             outcome: Outcome = Outcome.SDC,
             method: str = "wilson") -> Dict[int, RateEstimate]:
    """The outcome-rate-vs-fault-count curve of a multi-fault sweep.

    Accepts either a record stream (grouped by :func:`per_k_tallies`)
    or pre-grouped per-k tallies; returns one interval estimate per k,
    in ascending k order.
    """
    if isinstance(source, Mapping):
        tallies = dict(sorted(source.items()))
    else:
        tallies = per_k_tallies(source)
    return {k: rate_estimate(t.counts[outcome], t.total, method)
            for k, t in tallies.items() if t.total}
