"""Halo-mass distribution comparison (the paper's Fig. 8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.apps.nyx.halo_finder import HaloCatalog


@dataclass(frozen=True)
class MassHistogram:
    """Halo counts per logarithmic mass bin."""

    bin_edges: np.ndarray
    counts: np.ndarray

    @property
    def n_halos(self) -> int:
        return int(self.counts.sum())

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(bin centres, counts) -- the plottable Fig. 8 series."""
        centres = np.sqrt(self.bin_edges[:-1] * self.bin_edges[1:])
        return centres, self.counts


def mass_histogram(catalog: HaloCatalog, n_bins: int = 8,
                   mass_range: Optional[Tuple[float, float]] = None) -> MassHistogram:
    """Histogram halo masses in logarithmic bins.

    ``mass_range`` pins the binning so golden and faulty catalogs share
    bins (pass the golden catalog's range when comparing).
    """
    masses = catalog.masses
    if mass_range is None:
        if len(masses) == 0:
            raise ValueError("cannot infer a mass range from an empty catalog")
        lo, hi = float(masses.min()) * 0.9, float(masses.max()) * 1.1
    else:
        lo, hi = mass_range
    if not 0 < lo < hi:
        raise ValueError(f"bad mass range ({lo}, {hi})")
    edges = np.geomspace(lo, hi, n_bins + 1)
    counts, _ = np.histogram(masses, bins=edges)
    return MassHistogram(bin_edges=edges, counts=counts)


def histogram_distance(a: MassHistogram, b: MassHistogram) -> float:
    """L1 distance between two histograms on identical bins."""
    if not np.array_equal(a.bin_edges, b.bin_edges):
        raise ValueError("histograms must share bin edges")
    return float(np.abs(a.counts - b.counts).sum())
