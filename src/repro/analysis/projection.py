"""System-level failure-rate projection from campaign results.

The paper's motivation (Sec. I): device UBERs of 10^-11..10^-9 look
tiny, but a large HPC system's collective write volume turns them into
an application-level reliability problem, breaking the JEDEC enterprise
requirement of < 10^-16.  This module does that arithmetic: it combines

* a device fault rate (uncorrectable bit errors per bit written, or
  partial-failure events per write),
* an application's measured I/O profile (bytes/writes per run), and
* its measured conditional outcome profile P(outcome | one fault)
  from a campaign,

into projected per-run and per-system-day outcome probabilities, i.e.
"how often will this application silently corrupt its science on this
machine".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core.campaign import CampaignResult
from repro.core.outcomes import Outcome

#: The JEDEC JESD218 enterprise-class UBER requirement the paper cites.
JEDEC_ENTERPRISE_UBER = 1e-16

#: The field-study UBER band the paper cites for data-center SSDs [1].
FIELD_STUDY_UBER_RANGE = (1e-11, 1e-9)


@dataclass(frozen=True)
class DeviceModel:
    """Storage-device fault-rate assumptions.

    ``uber`` is uncorrectable bit errors per bit *written* (read-path
    errors fold into the same effective rate for a write-then-read-once
    workload, which is what the campaigns model).
    """

    uber: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.uber < 1.0:
            raise ValueError(f"UBER must be in [0, 1), got {self.uber}")

    def fault_probability(self, bytes_written: int) -> float:
        """P(at least one uncorrectable error over *bytes_written*)."""
        if bytes_written < 0:
            raise ValueError("bytes_written must be non-negative")
        bits = 8 * bytes_written
        # 1 - (1-u)^bits, computed stably for tiny u.
        return -math.expm1(bits * math.log1p(-self.uber))


@dataclass(frozen=True)
class RunProjection:
    """Projected per-run outcome probabilities for one application."""

    app_name: str
    fault_probability: float
    outcome_probabilities: Mapping[Outcome, float]

    def probability(self, outcome: Outcome) -> float:
        return self.outcome_probabilities[outcome]

    def expected_events(self, runs: float) -> Dict[Outcome, float]:
        """Expected outcome counts over *runs* application executions."""
        return {o: p * runs for o, p in self.outcome_probabilities.items()}

    def runs_per_sdc(self) -> float:
        """Mean runs between silent corruptions (inf if P(SDC) == 0)."""
        p = self.outcome_probabilities[Outcome.SDC]
        return math.inf if p == 0 else 1.0 / p


def project_run(result: CampaignResult, device: DeviceModel) -> RunProjection:
    """Combine a campaign's conditional profile with a device model.

    Uses the campaign's measured I/O profile (bytes written per run) for
    the exposure term and its outcome rates for the conditional term:
    ``P(outcome) = P(fault during run) * P(outcome | fault)``.
    """
    if result.profile is None:
        raise ValueError("campaign result carries no I/O profile")
    if result.tally.total == 0:
        raise ValueError("campaign result has no runs")
    p_fault = device.fault_probability(result.profile.bytes_written)
    probabilities = {o: p_fault * result.tally.rate(o) for o in Outcome
                     if o is not Outcome.BENIGN}
    probabilities[Outcome.BENIGN] = p_fault * result.tally.rate(Outcome.BENIGN)
    return RunProjection(app_name=result.app_name,
                         fault_probability=p_fault,
                         outcome_probabilities=probabilities)


def system_sdc_rate(projection: RunProjection, runs_per_day: float,
                    nodes: int = 1) -> float:
    """Expected silent corruptions per day on a system.

    ``runs_per_day`` is per node; the paper's point is that multiplying a
    per-run probability by a leadership-scale node count erases the
    comfort of small exponents.
    """
    if runs_per_day < 0 or nodes < 1:
        raise ValueError("need runs_per_day >= 0 and nodes >= 1")
    return projection.probability(Outcome.SDC) * runs_per_day * nodes


def effective_uber_budget(result: CampaignResult,
                          target_sdc_per_run: float) -> float:
    """Largest device UBER keeping P(SDC per run) under the target.

    This is the paper's trade-off space (Sec. I contribution (i)): an
    application that masks most faults can tolerate a cheaper/faster
    device for the same end-to-end reliability.  Returns an UBER; compare
    against :data:`JEDEC_ENTERPRISE_UBER` or the field-study band.
    """
    if result.profile is None or result.tally.total == 0:
        raise ValueError("campaign result lacks a profile or runs")
    if not 0 < target_sdc_per_run < 1:
        raise ValueError("target must be a probability in (0, 1)")
    p_sdc_given_fault = result.tally.rate(Outcome.SDC)
    bits = 8 * result.profile.bytes_written
    if p_sdc_given_fault == 0:
        return 1.0   # never silently corrupts: any device will do
    # Need 1-(1-u)^bits <= target/p  =>  u <= 1-(1-target/p)^(1/bits).
    ceiling = min(target_sdc_per_run / p_sdc_given_fault, 1.0 - 1e-15)
    return -math.expm1(math.log1p(-ceiling) / bits)
