"""Statistics, table rendering, and distribution comparison utilities."""

from repro.analysis.distributions import (
    MassHistogram,
    histogram_distance,
    mass_histogram,
)
from repro.analysis.projection import (
    FIELD_STUDY_UBER_RANGE,
    JEDEC_ENTERPRISE_UBER,
    DeviceModel,
    RunProjection,
    effective_uber_budget,
    project_run,
    system_sdc_rate,
)
from repro.analysis.stats import (
    RateEstimate,
    as_tally,
    campaign_error_bars,
    normal_interval,
    rate_estimate,
    wilson_interval,
)
from repro.analysis.tables import (
    format_percent,
    render_outcome_grid,
    render_table,
)

__all__ = [
    "RateEstimate",
    "as_tally",
    "campaign_error_bars",
    "normal_interval",
    "rate_estimate",
    "wilson_interval",
    "format_percent",
    "render_outcome_grid",
    "render_table",
    "MassHistogram",
    "histogram_distance",
    "mass_histogram",
    "DeviceModel",
    "FIELD_STUDY_UBER_RANGE",
    "JEDEC_ENTERPRISE_UBER",
    "RunProjection",
    "effective_uber_budget",
    "project_run",
    "system_sdc_rate",
]
