"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.analysis.stats import TallySource, as_tally
from repro.core.outcomes import Outcome


def format_percent(value: float, digits: int = 1) -> str:
    return f"{100 * value:.{digits}f}%"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Monospace table with column auto-sizing."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
    widths = [max(len(str(headers[c])),
                  *(len(str(row[c])) for row in rows)) if rows else len(str(headers[c]))
              for c in range(columns)]

    def line(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(sep)
    out.extend(line(row) for row in rows)
    return "\n".join(out) + "\n"


def render_outcome_grid(results: Mapping[str, TallySource],
                        title: Optional[str] = None) -> str:
    """One row per campaign cell, columns per outcome (Fig. 7 layout).

    Accepts any tally source per cell: an ``OutcomeTally``, an object
    with a ``tally`` attribute (``CampaignResult``, a streaming sink),
    or an iterable of run records.
    """
    headers = ["cell", "runs"] + [o.value for o in Outcome]
    rows: List[List[str]] = []
    for label, result in results.items():
        tally = as_tally(result)
        rows.append([label, str(tally.total)]
                    + [format_percent(tally.rate(o)) for o in Outcome])
    return render_table(headers, rows, title=title)


def render_comparison(headers: Sequence[str],
                      paper_row: Sequence[str],
                      measured_row: Sequence[str],
                      title: Optional[str] = None) -> str:
    """Two-row paper-vs-measured table used throughout EXPERIMENTS.md."""
    rows = [["paper"] + list(paper_row), ["measured"] + list(measured_row)]
    return render_table(["source"] + list(headers), rows, title=title)
