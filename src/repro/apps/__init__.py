"""The three HPC applications characterized by the FFIS campaigns."""

from repro.apps.base import GoldenRecord, HpcApplication, PhaseSpan

__all__ = ["GoldenRecord", "HpcApplication", "PhaseSpan"]
