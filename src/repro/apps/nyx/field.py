"""Synthetic baryon-density field generator for the Nyx workload.

Nyx evolves a cosmological density field whose over-densities (halos)
reach orders of magnitude above the mean while the *mean itself is
exactly 1* -- mass conservation, the invariant the paper's average-value
detector rests on.  We synthesize a field with the same decision-relevant
structure: a smoothed lognormal background plus a population of compact
high-density peaks, normalized to mean exactly 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.util.rngstream import RngStream


@dataclass(frozen=True)
class FieldConfig:
    """Parameters of the synthetic field.

    Defaults give ~8-12 well-separated halos occupying ~0.1 % of the
    volume at 64^3 -- comparable, at our reduced scale, to the sparse
    halo population of the paper's 512^3 Nyx snapshot.
    """

    shape: Tuple[int, int, int] = (64, 64, 64)
    background_sigma: float = 0.5    # lognormal width of the background
    smoothing: float = 1.5           # gaussian smoothing of the background
    n_halos: int = 6
    halo_amplitude: Tuple[float, float] = (150.0, 600.0)
    halo_radius: Tuple[float, float] = (0.8, 1.25)
    dtype: np.dtype = np.float32


def generate_baryon_density(config: FieldConfig, seed: int) -> np.ndarray:
    """Generate a baryon-density field with mean exactly 1 (float32).

    Deterministic given (*config*, *seed*).
    """
    stream = RngStream(seed, "nyx", "field")
    rng = stream.generator()

    noise = rng.standard_normal(config.shape)
    smooth = ndimage.gaussian_filter(noise, sigma=config.smoothing, mode="wrap")
    smooth /= max(smooth.std(), 1e-12)
    rho = np.exp(config.background_sigma * smooth)

    nz, ny, nx = config.shape
    zz, yy, xx = np.meshgrid(np.arange(nz), np.arange(ny), np.arange(nx),
                             indexing="ij")
    for _ in range(config.n_halos):
        center = rng.uniform(0, [nz, ny, nx])
        amp = rng.uniform(*config.halo_amplitude)
        radius = rng.uniform(*config.halo_radius)
        # Periodic (wrapped) distances, as in a cosmological box.
        dz = np.minimum(np.abs(zz - center[0]), nz - np.abs(zz - center[0]))
        dy = np.minimum(np.abs(yy - center[1]), ny - np.abs(yy - center[1]))
        dx = np.minimum(np.abs(xx - center[2]), nx - np.abs(xx - center[2]))
        r2 = dz * dz + dy * dy + dx * dx
        rho += amp * np.exp(-0.5 * r2 / (radius * radius))

    # Mass conservation: mean exactly 1 in float64, then cast.
    rho /= rho.mean(dtype=np.float64)
    rho = rho.astype(config.dtype)
    # The float32 cast can nudge the mean by ~1e-7; renormalize once more
    # in the storage dtype so the invariant holds for the written bytes.
    rho /= np.float32(rho.mean(dtype=np.float64))
    return rho
