"""Friends-of-Friends clustering on particle positions.

The paper notes Nyx's halo finder is "based on the Friends-of-Friends
algorithm" [Davis et al. 1985]: particles closer than a linking length
``b`` times the mean inter-particle separation belong to the same group.
The campaign classification uses the grid finder (the baryon-density
post-analysis the paper actually runs); this particle-space FoF is part
of the library surface and is exercised by the cosmology example and the
cross-validation tests (dense grid peaks and particle groups agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.apps.nyx.labeling import DisjointSet


@dataclass
class FofGroup:
    """One FoF group: member indices, centre of mass, total mass."""

    members: np.ndarray
    center: np.ndarray
    mass: float

    @property
    def size(self) -> int:
        return len(self.members)


def friends_of_friends(positions: np.ndarray,
                       linking_length: float,
                       masses: Optional[np.ndarray] = None,
                       min_members: int = 8,
                       box_size: Optional[float] = None) -> List[FofGroup]:
    """Group particles with the Friends-of-Friends percolation criterion.

    Parameters
    ----------
    positions:
        (N, 3) particle coordinates.
    linking_length:
        Absolute linking length (callers multiply ``b`` by the mean
        inter-particle separation).
    masses:
        Optional per-particle masses (default: unit masses).
    min_members:
        Minimum group multiplicity to report (conventionally ≥ 8-32).
    box_size:
        If given, positions live in a periodic box of this side length.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (N, 3)")
    n = len(positions)
    if masses is None:
        masses = np.ones(n, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    if masses.shape != (n,):
        raise ValueError("masses must have shape (N,)")
    if linking_length <= 0:
        raise ValueError("linking length must be positive")
    if n == 0:
        return []

    tree = cKDTree(positions, boxsize=box_size)
    pairs = tree.query_pairs(r=linking_length, output_type="ndarray")

    dsu = DisjointSet(n)
    for a, b in pairs.tolist():
        dsu.union(a, b)
    roots = dsu.roots()

    groups: List[FofGroup] = []
    order = np.argsort(roots, kind="stable")
    sorted_roots = roots[order]
    boundaries = np.flatnonzero(np.diff(sorted_roots)) + 1
    for chunk in np.split(order, boundaries):
        if len(chunk) < min_members:
            continue
        member_masses = masses[chunk]
        total = float(member_masses.sum())
        if box_size is None:
            center = (positions[chunk] * member_masses[:, None]).sum(axis=0) / total
        else:
            # Periodic centre of mass via the circular-mean trick.
            angles = positions[chunk] * (2 * np.pi / box_size)
            sin = (np.sin(angles) * member_masses[:, None]).sum(axis=0)
            cos = (np.cos(angles) * member_masses[:, None]).sum(axis=0)
            center = (np.arctan2(-sin, -cos) + np.pi) * (box_size / (2 * np.pi))
        groups.append(FofGroup(members=np.sort(chunk), center=center, mass=total))

    groups.sort(key=lambda g: (-g.mass, g.center[0]))
    return groups


def mean_interparticle_separation(n_particles: int, box_size: float) -> float:
    """The ``n^(-1/3)`` scale FoF linking lengths are quoted against."""
    if n_particles <= 0 or box_size <= 0:
        raise ValueError("need a positive particle count and box size")
    return box_size / n_particles ** (1.0 / 3.0)
