"""Mini-Nyx: cosmological density snapshot + halo-finder post-analysis."""

from repro.apps.nyx.app import DATASET, PLOTFILE, NyxApplication
from repro.apps.nyx.field import FieldConfig, generate_baryon_density
from repro.apps.nyx.fof import FofGroup, friends_of_friends, mean_interparticle_separation
from repro.apps.nyx.halo_finder import (
    Halo,
    HaloCatalog,
    average_value_check,
    candidate_count,
    find_halos,
)
from repro.apps.nyx.labeling import DisjointSet, label_components

__all__ = [
    "FieldConfig",
    "generate_baryon_density",
    "DisjointSet",
    "label_components",
    "Halo",
    "HaloCatalog",
    "average_value_check",
    "candidate_count",
    "find_halos",
    "FofGroup",
    "friends_of_friends",
    "mean_interparticle_separation",
    "DATASET",
    "PLOTFILE",
    "NyxApplication",
]
