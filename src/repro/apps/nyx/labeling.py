"""Connected-component labeling of 3-D boolean masks.

A from-scratch two-pass union-find labeler with 6-connectivity (face
neighbours), the clustering step of the grid halo finder.  Implemented
with vectorized neighbour scans: the only Python-level loop is over the
(few) provisional label merges, never over voxels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class DisjointSet:
    """Array-based union-find with path compression (vectorized find)."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        # Path compression.
        while self.parent[x] != root:
            self.parent[x], x = root, int(self.parent[x])
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Attach the larger id under the smaller so labels stay stable.
            if ra < rb:
                self.parent[rb] = ra
            else:
                self.parent[ra] = rb

    def roots(self) -> np.ndarray:
        """Resolve every element to its root (iterated pointer jumping)."""
        parent = self.parent.copy()
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                return parent
            parent = grand


def label_components(mask: np.ndarray, periodic: bool = False) -> Tuple[np.ndarray, int]:
    """Label 6-connected components of a 3-D boolean *mask*.

    Returns ``(labels, n_components)`` where ``labels`` is int64 with 0
    for background and components numbered from 1 in first-voxel order
    (deterministic).  With ``periodic=True`` opposite faces are adjacent,
    matching a cosmological box.
    """
    if mask.ndim != 3:
        raise ValueError(f"expected a 3-D mask, got {mask.ndim}-D")
    mask = np.ascontiguousarray(mask, dtype=bool)
    n = mask.size
    if n == 0 or not mask.any():
        return np.zeros(mask.shape, dtype=np.int64), 0

    flat_index = np.arange(n, dtype=np.int64).reshape(mask.shape)
    dsu = DisjointSet(n)

    def merge_axis(axis: int) -> None:
        # Pairs of adjacent foreground voxels along *axis*.
        a = [slice(None)] * 3
        b = [slice(None)] * 3
        a[axis] = slice(0, -1)
        b[axis] = slice(1, None)
        both = mask[tuple(a)] & mask[tuple(b)]
        ia = flat_index[tuple(a)][both]
        ib = flat_index[tuple(b)][both]
        for x, y in zip(ia.tolist(), ib.tolist()):
            dsu.union(x, y)
        if periodic and mask.shape[axis] > 1:
            lo = [slice(None)] * 3
            hi = [slice(None)] * 3
            lo[axis] = 0
            hi[axis] = mask.shape[axis] - 1
            wrap = mask[tuple(lo)] & mask[tuple(hi)]
            ia = flat_index[tuple(lo)][wrap]
            ib = flat_index[tuple(hi)][wrap]
            for x, y in zip(ia.tolist(), ib.tolist()):
                dsu.union(x, y)

    for axis in range(3):
        merge_axis(axis)

    roots = dsu.roots().reshape(mask.shape)
    fg_roots = roots[mask]
    unique_roots = np.unique(fg_roots)
    lut = np.zeros(n, dtype=np.int64)
    lut[unique_roots] = np.arange(1, len(unique_roots) + 1)
    labels = np.zeros(mask.shape, dtype=np.int64)
    labels[mask] = lut[fg_roots]
    return labels, int(len(unique_roots))
