"""The Nyx application-under-test: write a plotfile, find halos.

The run writes the baryon-density snapshot through mini-HDF5 (that write
traffic is the fault surface); the post-analysis reads it back and runs
the halo finder.  Outcome classification follows Sec. IV-C.1 verbatim:

* halo-finder output bit-wise identical to golden → **BENIGN**
* output differs and *no halo found* → **DETECTED**
* output differs otherwise → **SDC**
* unhandled exception (e.g. :class:`FormatError` from the reader) →
  **CRASH** (recorded by the campaign runner)

The optional average-value detector (``use_average_detector=True``)
upgrades mean-shifting SDCs to DETECTED, reproducing the paper's Fig. 7
note that "all SDC cases with Nyx will be changed to detected cases
after using the average-value-based method".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.apps.base import GoldenRecord, HpcApplication, RunStep
from repro.apps.nyx.field import FieldConfig, generate_baryon_density
from repro.apps.nyx.halo_finder import (
    DEFAULT_MIN_CELLS,
    DEFAULT_THRESHOLD_FACTOR,
    HaloCatalog,
    average_value_check,
    find_halos,
)
from repro.core.outcomes import Outcome
from repro.fusefs.mount import MountPoint
from repro.mhdf5.reader import Hdf5Reader
from repro.mhdf5.writer import DatasetSpec, begin_write, finish_write

PLOTFILE = "/nyx/plt00000.h5"
DATASET = "baryon_density"


class NyxApplication(HpcApplication):
    """Nyx cosmological snapshot + halo-finder post-analysis."""

    name = "nyx"

    def __init__(self, seed: int = 2021,
                 field_config: FieldConfig = FieldConfig(),
                 threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
                 min_cells: int = DEFAULT_MIN_CELLS,
                 use_average_detector: bool = False,
                 average_rel_tol: float = 1e-3,
                 chunks=None, compression=None) -> None:
        super().__init__()
        self.seed = seed
        self.field_config = field_config
        self.threshold_factor = threshold_factor
        self.min_cells = min_cells
        self.use_average_detector = use_average_detector
        self.average_rel_tol = average_rel_tol
        # Storage layout of the snapshot: contiguous by default; pass
        # chunks/compression for the Sec. V-A compressed-data scenario.
        self.chunks = tuple(chunks) if chunks else None
        self.compression = compression
        # The simulation product is deterministic; generate once.
        self._rho = generate_baryon_density(field_config, seed)

    @property
    def rho(self) -> np.ndarray:
        """The fault-free density field (for experiments and tests)."""
        return self._rho

    # -- lifecycle ---------------------------------------------------------------

    def prepare(self, mp: MountPoint, carry) -> None:
        mp.makedirs("/nyx")

    def steps(self):
        # The checkpoint is split at the mini-HDF5 data/metadata seam:
        # both steps share the "checkpoint" phase (one recorded span,
        # one phase-end notification -- byte-identical to the old
        # monolithic step), but the boundary between them gives the
        # prefix-replay engine a snapshot with all raw data landed.  A
        # metadata-targeted run restores it and re-executes only the
        # blob + unlock writes instead of the whole field dump.
        return (RunStep("checkpoint_data", "checkpoint",
                        self._step_checkpoint_data),
                RunStep("checkpoint_meta", "checkpoint",
                        self._step_checkpoint_meta))

    def _step_checkpoint_data(self, mp: MountPoint, carry) -> None:
        carry["checkpoint"] = begin_write(mp, PLOTFILE, [DatasetSpec(
            name=DATASET, array=self._rho,
            chunks=self.chunks, compression=self.compression)])

    def _step_checkpoint_meta(self, mp: MountPoint, carry) -> None:
        self.last_write_result = finish_write(mp, carry["checkpoint"])

    def output_paths(self) -> List[str]:
        return [PLOTFILE]

    # -- post-analysis ---------------------------------------------------------------

    def read_density(self, mp: MountPoint) -> np.ndarray:
        return Hdf5Reader(mp, PLOTFILE).read(DATASET)

    def find_halos(self, rho: np.ndarray) -> HaloCatalog:
        return find_halos(rho, threshold_factor=self.threshold_factor,
                          min_cells=self.min_cells)

    def analyze(self, mp: MountPoint) -> Dict[str, object]:
        rho = self.read_density(mp)
        catalog = self.find_halos(rho)
        return {
            "catalog_text": catalog.to_text(),
            "n_halos": len(catalog),
            "average_value": catalog.average_value,
        }

    # -- classification ---------------------------------------------------------------

    def classify(self, golden: GoldenRecord, mp: MountPoint) -> Tuple[Outcome, str]:
        rho = self.read_density(mp)          # FormatError here → CRASH upstream
        catalog = self.find_halos(rho)
        text = catalog.to_text()
        if text == golden.analysis["catalog_text"]:
            return Outcome.BENIGN, "halo catalog bit-wise identical"
        if self.use_average_detector and not average_value_check(
                rho, expected_mean=1.0, rel_tol=self.average_rel_tol):
            return Outcome.DETECTED, (
                f"average-value detector fired (mean={catalog.average_value:.6f})")
        if len(catalog) == 0:
            return Outcome.DETECTED, "no halo found"
        return Outcome.SDC, (
            f"catalog differs: {len(catalog)} halos vs "
            f"{golden.analysis['n_halos']} golden")
