"""Grid halo finder: the Nyx post-analysis whose output defines outcomes.

Implements the two-criterion procedure the paper describes (Sec. V-B):

1. a cell becomes a *halo cell candidate* when its mass exceeds
   ``threshold_factor`` (default 81.66) times the average mass of the
   whole dataset, and
2. at least ``min_cells`` connected candidates must cluster to form a
   halo.

The catalog renders to text with fixed precision; campaigns compare that
text bit-wise against the golden run, exactly as the paper compares halo
finder outputs.  Because criterion 1 is *relative to the dataset
average*, global shifts of the field (dropped writes, exponent-bias
metadata faults) move the threshold with the data -- the mechanism behind
several of the paper's observations.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.apps.nyx.labeling import label_components

DEFAULT_THRESHOLD_FACTOR = 81.66
DEFAULT_MIN_CELLS = 8


@dataclass
class Halo:
    """One identified halo: centre of mass, cell count, total mass."""

    position: np.ndarray        # (z, y, x) centre of mass
    n_cells: int
    mass: float


@dataclass
class HaloCatalog:
    """The halo finder's output product."""

    halos: List[Halo] = field(default_factory=list)
    average_value: float = 0.0
    threshold: float = 0.0
    n_candidates: int = 0

    def __len__(self) -> int:
        return len(self.halos)

    @property
    def masses(self) -> np.ndarray:
        return np.array([h.mass for h in self.halos], dtype=np.float64)

    @property
    def positions(self) -> np.ndarray:
        if not self.halos:
            return np.zeros((0, 3), dtype=np.float64)
        return np.stack([h.position for h in self.halos])

    def to_text(self) -> str:
        """Fixed-precision rendering (the bit-comparable analysis output).

        Mirrors the paper's halo-finder output (the ``NVB_integral``
        product): the integral statistic of the field -- its average,
        whose golden value is exactly 1 by mass conservation -- followed
        by position, number of cells, and mass for each halo found.

        Output precision is the sensitivity boundary the paper's
        fault-model asymmetry rests on: the golden average sits at the
        centre of its rounding interval, so a dropped write's ~0.4 %
        average shift always prints differently (100 % SDC), while a
        shorn tail of in-distribution stale data shifts the average by
        ~1e-5 and rounds away (benign) unless it overwrote halo cells.
        """
        out = io.StringIO()
        out.write(f"# mean: {self.average_value:.3f}\n")
        out.write(f"# halos: {len(self.halos)}\n")
        for h in self.halos:
            out.write(
                f"{h.position[0]:.4f} {h.position[1]:.4f} {h.position[2]:.4f} "
                f"{h.n_cells:d} {h.mass:.4g}\n")
        return out.getvalue()


def find_halos(rho: np.ndarray,
               threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
               min_cells: int = DEFAULT_MIN_CELLS,
               periodic: bool = False) -> HaloCatalog:
    """Run the halo finder on a density field.

    Non-finite cells are treated as non-candidates but still poison the
    dataset average the way they would in the real post-analysis (NaN
    average → empty candidate set → no halos, a *detected* outcome).
    """
    if rho.ndim != 3:
        raise ValueError(f"expected a 3-D density field, got {rho.ndim}-D")
    values = np.asarray(rho, dtype=np.float64)
    average = float(values.mean())
    threshold = threshold_factor * average

    if not np.isfinite(average):
        return HaloCatalog(halos=[], average_value=average,
                           threshold=threshold, n_candidates=0)

    with np.errstate(invalid="ignore"):
        candidates = values > threshold
    candidates &= np.isfinite(values)
    n_candidates = int(candidates.sum())
    if n_candidates == 0:
        return HaloCatalog(halos=[], average_value=average,
                           threshold=threshold, n_candidates=0)
    if threshold <= 0 or n_candidates > values.size // 10:
        # Degenerate input (negative/garbage average turning most of the
        # box into "candidates"): the finder bails out with no halos, the
        # visible failure the detected class captures.
        return HaloCatalog(halos=[], average_value=average,
                           threshold=threshold, n_candidates=n_candidates)

    labels, n_components = label_components(candidates, periodic=periodic)
    halos: List[Halo] = []
    if n_components:
        flat_labels = labels.ravel()
        flat_values = values.ravel()
        counts = np.bincount(flat_labels, minlength=n_components + 1)
        masses = np.bincount(flat_labels, weights=flat_values,
                             minlength=n_components + 1)
        coords = np.unravel_index(np.arange(values.size), values.shape)
        centers = np.empty((n_components + 1, 3), dtype=np.float64)
        for axis in range(3):
            weighted = np.bincount(flat_labels,
                                   weights=flat_values * coords[axis],
                                   minlength=n_components + 1)
            with np.errstate(invalid="ignore", divide="ignore"):
                centers[:, axis] = weighted / masses
        for label in range(1, n_components + 1):
            if counts[label] >= min_cells:
                halos.append(Halo(position=centers[label],
                                  n_cells=int(counts[label]),
                                  mass=float(masses[label])))
    # Deterministic ordering: by first (z, y, x) centre coordinate.
    halos.sort(key=lambda h: (h.position[0], h.position[1], h.position[2]))
    return HaloCatalog(halos=halos, average_value=average,
                       threshold=threshold, n_candidates=n_candidates)


def candidate_count(rho: np.ndarray,
                    threshold_factor: float = DEFAULT_THRESHOLD_FACTOR) -> int:
    """Number of halo-cell candidates (Fig. 6's comparison metric)."""
    values = np.asarray(rho, dtype=np.float64)
    average = float(values.mean())
    if not np.isfinite(average):
        return 0
    with np.errstate(invalid="ignore"):
        mask = values > threshold_factor * average
    return int((mask & np.isfinite(values)).sum())


def average_value_check(rho: np.ndarray, expected_mean: float = 1.0,
                        rel_tol: float = 1e-3) -> bool:
    """The paper's average-value-based detector (mass conservation).

    Returns ``True`` when the dataset average matches the physical
    invariant within *rel_tol* (default 0.1 %, the deviation the paper
    reports every dropped-write SDC exceeds).
    """
    mean = float(np.asarray(rho, dtype=np.float64).mean())
    if not np.isfinite(mean):
        return False
    return abs(mean / expected_mean - 1.0) <= rel_tol
