"""Diffusion Monte Carlo with importance sampling and weight carrying.

Standard projector Monte Carlo: drift-diffusion moves with the quantum
force, Metropolis rejection against the Green's-function ratio, and
continuous branching weights ``exp(-tau * ((E_L + E_L') / 2 - E_T))``.
Instead of noisy integer birth/death, walkers carry weights that are
periodically flattened by *systematic reconfiguration* (resampling N
walkers with probability proportional to weight using a single uniform
comb) -- the low-variance population control used by production codes.

The mixed estimator converges to the He ground state (-2.90372 Ha) up to
timestep bias and statistics.  Local energies are clamped so corrupted
restart walkers (e.g. zeroed coordinates from a dropped write) produce
*visible* energy excursions instead of numerical explosions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.qmcpack.scalars import ScalarRow
from repro.apps.qmcpack.wavefunction import HeliumWavefunction

ENERGY_CLAMP = 100.0    # |E_L| clamp guarding corrupted-restart pathologies
WEIGHT_CLIP = (0.1, 10.0)


@dataclass(frozen=True)
class DmcParams:
    target_walkers: int = 256
    n_blocks: int = 100
    steps_per_block: int = 10
    tau: float = 0.02                # imaginary timestep
    feedback: float = 0.1            # trial-energy population feedback gain
    reconfigure_every: int = 5       # steps between reconfigurations
    min_total_weight: float = 1.0    # below this the run aborts


class PopulationCollapse(RuntimeError):
    """The walker population's weight died out (corrupted restarts)."""


def _limited_force(wf: HeliumWavefunction, walkers: np.ndarray,
                   tau: float) -> np.ndarray:
    """Quantum force with the standard norm limiter for finite tau."""
    force = wf.quantum_force(walkers)
    n = len(walkers)
    fmag = np.linalg.norm(force.reshape(n, -1), axis=1)[:, None, None]
    return force / np.maximum(1.0, 0.5 * tau * fmag)


def _systematic_resample(weights: np.ndarray, n_out: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Systematic (comb) resampling: indices drawn with one uniform."""
    total = weights.sum()
    positions = (rng.random() + np.arange(n_out)) / n_out * total
    cumulative = np.cumsum(weights)
    return np.searchsorted(cumulative, positions, side="right").clip(0, len(weights) - 1)


def run_dmc(wf: HeliumWavefunction, walkers: np.ndarray, params: DmcParams,
            rng: np.random.Generator) -> Tuple[np.ndarray, List[ScalarRow]]:
    """Run DMC from an initial population; returns (walkers, scalar rows)."""
    walkers = np.array(walkers, dtype=np.float64, copy=True)
    if walkers.ndim != 3 or walkers.shape[1:] != (2, 3):
        raise ValueError(f"walkers must have shape (N, 2, 3), got {walkers.shape}")
    if not np.all(np.isfinite(walkers)):
        # A corrupted restart can carry inf/NaN coordinates; the real code
        # faults in its distance tables.  Pin them at the origin region and
        # let the energy clamp make the damage visible downstream.
        walkers = np.nan_to_num(walkers, nan=0.0, posinf=0.0, neginf=0.0)

    n = len(walkers)
    tau = params.tau
    sqrt_tau = np.sqrt(tau)
    weights = np.ones(n, dtype=np.float64)
    e_local = np.clip(wf.local_energy(walkers), -ENERGY_CLAMP, ENERGY_CLAMP)
    e_trial = float(np.average(e_local, weights=weights))
    log_psi = wf.log_psi(walkers)
    force = _limited_force(wf, walkers, tau)

    rows: List[ScalarRow] = []
    step_count = 0
    for block in range(params.n_blocks):
        block_energy = 0.0
        block_energy_sq = 0.0
        block_weight = 0.0
        for _ in range(params.steps_per_block):
            step_count += 1
            proposal = (walkers + 0.5 * tau * force
                        + sqrt_tau * rng.standard_normal(walkers.shape))
            log_psi_new = wf.log_psi(proposal)
            force_new = _limited_force(wf, proposal, tau)

            def log_green(to: np.ndarray, frm: np.ndarray,
                          drift: np.ndarray) -> np.ndarray:
                diff = to - frm - 0.5 * tau * drift
                return -(diff * diff).sum(axis=(1, 2)) / (2.0 * tau)

            log_ratio = (2.0 * (log_psi_new - log_psi)
                         + log_green(walkers, proposal, force_new)
                         - log_green(proposal, walkers, force))
            accept = np.log(rng.random(n)) < log_ratio
            walkers[accept] = proposal[accept]
            log_psi[accept] = log_psi_new[accept]
            force[accept] = force_new[accept]

            e_new = np.clip(wf.local_energy(walkers), -ENERGY_CLAMP, ENERGY_CLAMP)
            weights *= np.exp(-tau * (0.5 * (e_local + e_new) - e_trial))
            np.clip(weights, *WEIGHT_CLIP, out=weights)
            e_local = e_new

            total_weight = float(weights.sum())
            if total_weight < params.min_total_weight:
                raise PopulationCollapse(
                    f"population weight collapsed to {total_weight:.3g}")

            block_energy += float((weights * e_local).sum())
            block_energy_sq += float((weights * e_local ** 2).sum())
            block_weight += total_weight

            # Trial-energy feedback keeps total weight near the target.
            e_trial = (float(np.average(e_local, weights=weights))
                       - params.feedback / tau * np.log(total_weight / n))

            if step_count % params.reconfigure_every == 0:
                idx = _systematic_resample(weights, n, rng)
                walkers = walkers[idx]
                e_local = e_local[idx]
                log_psi = log_psi[idx]
                force = force[idx]
                weights = np.full(n, 1.0)

        mean = block_energy / block_weight
        var = block_energy_sq / block_weight - mean * mean
        rows.append(ScalarRow(index=block, local_energy=mean,
                              variance=max(var, 0.0), weight=block_weight))
    return walkers, rows
