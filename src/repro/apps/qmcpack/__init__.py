"""Mini-QMCPACK: He-atom VMC+DMC with restart-file fault propagation."""

from repro.apps.qmcpack.app import (
    CONFIG_FILE,
    HE_EXACT_ENERGY,
    LOG_FILE,
    S000_SCALARS,
    S001_SCALARS,
    SDC_WINDOW,
    QmcpackApplication,
)
from repro.apps.qmcpack.dmc import DmcParams, PopulationCollapse, run_dmc
from repro.apps.qmcpack.qmca import (
    AnalysisError,
    EnergyEstimate,
    analyze_file,
    analyze_rows,
    blocking_error,
)
from repro.apps.qmcpack.scalars import (
    ScalarRow,
    parse_scalars,
    render_scalars,
    rows_from_blocks,
    write_scalars,
)
from repro.apps.qmcpack.vmc import VmcParams, run_vmc
from repro.apps.qmcpack.wavefunction import R_EPS, HeliumWavefunction

__all__ = [
    "HeliumWavefunction",
    "R_EPS",
    "VmcParams",
    "run_vmc",
    "DmcParams",
    "PopulationCollapse",
    "run_dmc",
    "ScalarRow",
    "parse_scalars",
    "render_scalars",
    "rows_from_blocks",
    "write_scalars",
    "AnalysisError",
    "EnergyEstimate",
    "analyze_file",
    "analyze_rows",
    "blocking_error",
    "CONFIG_FILE",
    "HE_EXACT_ENERGY",
    "LOG_FILE",
    "S000_SCALARS",
    "S001_SCALARS",
    "SDC_WINDOW",
    "QmcpackApplication",
]
