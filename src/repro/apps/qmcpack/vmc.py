"""Variational Monte Carlo: Metropolis sampling of |psi|^2.

The VMC series plays two roles in the paper's workload: it produces the
``s000`` scalar file (whose corruption is invisible to the ``s001``-based
outcome classification → the benign fraction) and, crucially, it
generates the walker population that DMC restarts from.  That walker file
is the propagation channel through which storage faults reach the DMC
energies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.qmcpack.scalars import ScalarRow
from repro.apps.qmcpack.wavefunction import HeliumWavefunction


@dataclass(frozen=True)
class VmcParams:
    n_walkers: int = 256
    n_blocks: int = 60
    steps_per_block: int = 10
    step_size: float = 0.45          # Metropolis gaussian proposal sigma
    warmup_blocks: int = 10


def run_vmc(wf: HeliumWavefunction, params: VmcParams,
            rng: np.random.Generator) -> Tuple[np.ndarray, List[ScalarRow]]:
    """Run VMC; returns (final walker population, per-block scalar rows).

    Walkers start from a gaussian cloud around the nucleus and are warmed
    up for ``warmup_blocks`` before statistics are recorded.
    """
    n = params.n_walkers
    walkers = rng.normal(scale=0.7, size=(n, 2, 3))
    log_psi = wf.log_psi(walkers)

    rows: List[ScalarRow] = []
    for block in range(params.warmup_blocks + params.n_blocks):
        block_energies = np.empty((params.steps_per_block, n))
        for step in range(params.steps_per_block):
            proposal = walkers + rng.normal(scale=params.step_size,
                                            size=walkers.shape)
            log_psi_new = wf.log_psi(proposal)
            accept = (np.log(rng.random(n)) <
                      2.0 * (log_psi_new - log_psi))
            walkers[accept] = proposal[accept]
            log_psi[accept] = log_psi_new[accept]
            block_energies[step] = wf.local_energy(walkers)
        if block >= params.warmup_blocks:
            energies = block_energies.ravel()
            rows.append(ScalarRow(
                index=block - params.warmup_blocks,
                local_energy=float(energies.mean()),
                variance=float(energies.var()),
                weight=float(n),
            ))
    return walkers, rows
