"""The ``.scalar.dat`` text format QMCPACK emits per Monte Carlo series.

One whitespace-separated row per block with a ``#`` header line, e.g.::

    #   index     LocalEnergy     Variance        Weight
        0         -2.887123       0.421003        256.000000

Writers chunk the rendered text into block-sized ``ffis_write``s so the
fault models see the same per-write surface real buffered stdio gives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.fusefs.mount import MountPoint

COLUMNS = ("index", "LocalEnergy", "Variance", "Weight")


@dataclass
class ScalarRow:
    index: int
    local_energy: float
    variance: float
    weight: float


def render_scalars(rows: List[ScalarRow]) -> str:
    lines = ["#   index     LocalEnergy     Variance        Weight"]
    for row in rows:
        lines.append(
            f"    {row.index:<6d}    {row.local_energy:< 14.8f}  "
            f"{row.variance:< 14.8f}  {row.weight:< 14.6f}")
    return "\n".join(lines) + "\n"


def write_scalars(mp: MountPoint, path: str, rows: List[ScalarRow],
                  block_size: int = 4096) -> None:
    data = render_scalars(rows).encode("ascii")
    mp.write_file(path, data, block_size=block_size)


def parse_scalars(text: str) -> List[ScalarRow]:
    """Tolerant parser: malformed rows are skipped, like qmca's behaviour
    on partially corrupted files.  Callers decide how many valid rows are
    enough (see :mod:`repro.apps.qmcpack.qmca`)."""
    rows: List[ScalarRow] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 4:
            continue
        try:
            index = int(parts[0])
            values = [float(p) for p in parts[1:]]
        except ValueError:
            continue
        rows.append(ScalarRow(index, values[0], values[1], values[2]))
    return rows


def rows_from_blocks(energies: np.ndarray, variances: np.ndarray,
                     weights: np.ndarray) -> List[ScalarRow]:
    return [ScalarRow(i, float(e), float(v), float(w))
            for i, (e, v, w) in enumerate(zip(energies, variances, weights))]
