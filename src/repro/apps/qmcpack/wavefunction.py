"""Trial wavefunction and local energy for the helium atom.

The paper's QMCPACK workload is the single-He-atom example whose DMC
ground-state energy is exactly -2.90372 Hartree.  We use the standard
Slater-Jastrow trial function

    psi(r1, r2) = exp(-Z r1) exp(-Z r2) exp(b r12 / (1 + a r12))

with Z = 2 (electron-nucleus cusp) and b = 1/2 (electron-electron cusp);
``a`` is the variational parameter.  The local energy has the closed form
assembled from ln psi derivatives:

    E_L = -1/2 sum_i (lap_i ln psi + |grad_i ln psi|^2) - 2/r1 - 2/r2 + 1/r12

All evaluations are vectorized over walker populations: a walker set is a
``(N, 2, 3)`` array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Hard floor on interparticle distances to keep 1/r terms finite when a
#: corrupted walker file puts electrons exactly on the nucleus.  Real QMC
#: codes never sample r = 0 (the wavefunction kills the density there),
#: but corrupted restarts can.
R_EPS = 1e-12


@dataclass(frozen=True)
class HeliumWavefunction:
    """Slater-Jastrow trial function parameters for He."""

    zeta: float = 2.0       # orbital exponent (nuclear cusp => Z)
    jastrow_b: float = 0.5  # e-e cusp condition for unlike spins
    jastrow_a: float = 0.3  # variational Pade parameter (VMC-variance optimal)

    # -- geometry helpers -------------------------------------------------------

    @staticmethod
    def _distances(walkers: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(r1, r2, r12) magnitudes for a (N, 2, 3) walker array."""
        r1 = np.maximum(np.linalg.norm(walkers[:, 0, :], axis=1), R_EPS)
        r2 = np.maximum(np.linalg.norm(walkers[:, 1, :], axis=1), R_EPS)
        r12 = np.maximum(np.linalg.norm(walkers[:, 0, :] - walkers[:, 1, :], axis=1),
                         R_EPS)
        return r1, r2, r12

    # -- wavefunction ------------------------------------------------------------

    def log_psi(self, walkers: np.ndarray) -> np.ndarray:
        r1, r2, r12 = self._distances(walkers)
        u = self.jastrow_b * r12 / (1.0 + self.jastrow_a * r12)
        return -self.zeta * (r1 + r2) + u

    def grad_log_psi(self, walkers: np.ndarray) -> np.ndarray:
        """Gradient of ln psi wrt both electrons: shape (N, 2, 3)."""
        r1, r2, r12 = self._distances(walkers)
        e1 = walkers[:, 0, :] / r1[:, None]
        e2 = walkers[:, 1, :] / r2[:, None]
        e12 = (walkers[:, 0, :] - walkers[:, 1, :]) / r12[:, None]
        du = self.jastrow_b / (1.0 + self.jastrow_a * r12) ** 2
        grad = np.empty_like(walkers)
        grad[:, 0, :] = -self.zeta * e1 + du[:, None] * e12
        grad[:, 1, :] = -self.zeta * e2 - du[:, None] * e12
        return grad

    def local_energy(self, walkers: np.ndarray) -> np.ndarray:
        """E_L = (H psi)/psi, vectorized over walkers.

        Overflow in the Jastrow denominators (corrupted walkers flung to
        astronomical radii) saturates to zero derivatives, which is the
        correct r -> infinity limit.
        """
        r1, r2, r12 = self._distances(walkers)
        a, b, z = self.jastrow_a, self.jastrow_b, self.zeta

        with np.errstate(over="ignore"):
            one_plus = 1.0 + a * r12
            du = b / one_plus ** 2                    # u'(r12)
            d2u = -2.0 * a * b / one_plus ** 3        # u''(r12)
        du = np.nan_to_num(du, posinf=0.0, neginf=0.0)
        d2u = np.nan_to_num(d2u, posinf=0.0, neginf=0.0)

        # Laplacians of ln psi per electron:
        #   lap_i(-Z r_i) = -2Z / r_i
        #   lap_i(u(r12)) = u'' + 2 u'/r12
        lap = (-2.0 * z / r1) + (-2.0 * z / r2) + 2.0 * (d2u + 2.0 * du / r12)

        # |grad_i ln psi|^2 summed over electrons.
        e1 = walkers[:, 0, :] / r1[:, None]
        e2 = walkers[:, 1, :] / r2[:, None]
        e12 = (walkers[:, 0, :] - walkers[:, 1, :]) / r12[:, None]
        g1 = -z * e1 + du[:, None] * e12
        g2 = -z * e2 - du[:, None] * e12
        grad_sq = (g1 * g1).sum(axis=1) + (g2 * g2).sum(axis=1)

        kinetic = -0.5 * (lap + grad_sq)
        potential = -2.0 / r1 - 2.0 / r2 + 1.0 / r12
        return kinetic + potential

    def quantum_force(self, walkers: np.ndarray) -> np.ndarray:
        """Drift velocity F = 2 grad ln psi used by DMC."""
        return 2.0 * self.grad_log_psi(walkers)
