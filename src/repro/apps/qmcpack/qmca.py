"""QMCA-style reanalysis: total energy with error bar from scalar files.

Mirrors the ``qmca`` tool's role in the paper: read a ``.scalar.dat``,
drop the equilibration blocks, and estimate the total energy and its
statistical error (via blocking).  The parser is tolerant of corrupted
rows (they are skipped), but too few surviving rows -- or a missing
file -- is an analysis failure, which campaigns classify as CRASH, the
way the paper's crash class covers "the target file cannot be created".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.qmcpack.scalars import ScalarRow, parse_scalars
from repro.errors import ApplicationCrash
from repro.fusefs.mount import MountPoint


class AnalysisError(ApplicationCrash):
    """qmca could not produce an energy estimate."""


@dataclass(frozen=True)
class EnergyEstimate:
    mean: float
    error: float
    n_blocks: int

    def __str__(self) -> str:
        return f"{self.mean:.5f} +/- {self.error:.5f} ({self.n_blocks} blocks)"


def blocking_error(values: np.ndarray, block: int = 4) -> float:
    """One level of reblocking to tame serial correlation."""
    n = (len(values) // block) * block
    if n < 2 * block:
        return float(values.std(ddof=1) / np.sqrt(max(len(values), 2)))
    blocked = values[:n].reshape(-1, block).mean(axis=1)
    return float(blocked.std(ddof=1) / np.sqrt(len(blocked)))


def analyze_rows(rows: List[ScalarRow], equilibration: int = 20,
                 min_rows: int = 10) -> EnergyEstimate:
    """Energy estimate from parsed scalar rows.

    ``equilibration`` rows are discarded from the front (qmca's ``-e``);
    fewer than ``min_rows`` usable rows raises :class:`AnalysisError`.
    """
    usable = [r for r in rows if r.index >= equilibration]
    if len(usable) < min_rows:
        raise AnalysisError(
            f"only {len(usable)} usable blocks after equilibration cut "
            f"(need {min_rows})")
    energies = np.array([r.local_energy for r in usable], dtype=np.float64)
    weights = np.array([r.weight for r in usable], dtype=np.float64)
    if not np.all(np.isfinite(energies)) or not np.all(np.isfinite(weights)):
        # Non-finite scalars are a visible analysis failure, not silence.
        raise AnalysisError("non-finite block energies in scalar file")
    if weights.sum() <= 0:
        raise AnalysisError("non-positive total weight in scalar file")
    mean = float(np.average(energies, weights=weights))
    error = blocking_error(energies)
    return EnergyEstimate(mean=mean, error=error, n_blocks=len(usable))


def analyze_file(mp: MountPoint, path: str, equilibration: int = 20,
                 min_rows: int = 10) -> EnergyEstimate:
    """Run the full qmca flow on a scalar file on the FFIS mount."""
    try:
        text = mp.read_file(path).decode("ascii", errors="replace")
    except Exception as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    rows = parse_scalars(text)
    return analyze_rows(rows, equilibration=equilibration, min_rows=min_rows)
