"""The QMCPACK application-under-test: He-atom VMC → DMC with restart I/O.

Workload structure (mirrors the paper's description in Sec. IV-C.2):

1. **VMC series (s000)** equilibrates a walker population, writes
   ``He.s000.scalar.dat`` and -- crucially -- the walker configuration
   file ``He.s000.config.h5`` (mini-HDF5).
2. **DMC series (s001)** *reads the walker file back from the file
   system* and projects toward the ground state, writing
   ``He.s001.scalar.dat``.

The restart read is the fault-propagation channel: corrupted walker bytes
silently perturb the DMC trajectory, which is why QMCPACK shows the
highest SDC rates in the paper's Fig. 7.

Outcome classification follows the paper: compare ``He.s001.scalar.dat``
bit-wise (benign); otherwise run the qmca reanalysis and call the run SDC
if the energy still lands in the plausible window [-2.91, -2.90] Ha,
detected otherwise; analysis failures and library errors are crashes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


from repro.apps.base import GoldenRecord, HpcApplication, RunStep
from repro.apps.qmcpack.dmc import DmcParams, run_dmc
from repro.apps.qmcpack.qmca import EnergyEstimate, analyze_file
from repro.apps.qmcpack.scalars import write_scalars
from repro.apps.qmcpack.vmc import VmcParams, run_vmc
from repro.apps.qmcpack.wavefunction import HeliumWavefunction
from repro.core.outcomes import Outcome
from repro.fusefs.mount import MountPoint
from repro.mhdf5.api import File
from repro.mhdf5.reader import Hdf5Reader
from repro.util.rngstream import RngStream

RUN_DIR = "/qmc"
S000_SCALARS = f"{RUN_DIR}/He.s000.scalar.dat"
CONFIG_FILE = f"{RUN_DIR}/He.s000.config.h5"
LOG_FILE = f"{RUN_DIR}/He.out"
S001_SCALARS = f"{RUN_DIR}/He.s001.scalar.dat"
WALKER_DATASET = "walkers"

#: The exact non-relativistic He ground-state energy the paper quotes.
HE_EXACT_ENERGY = -2.90372

#: The paper's SDC window: an energy inside it is physically plausible,
#: so a differing file whose reanalysis stays inside is *silent*.
SDC_WINDOW = (-2.91, -2.90)

#: Text files are flushed in stdio-sized chunks.
TEXT_BLOCK = 2048


class QmcpackApplication(HpcApplication):
    """He-atom VMC+DMC with restart-file fault propagation."""

    name = "qmcpack"

    def __init__(self, seed: int = 2021,
                 wavefunction: HeliumWavefunction = HeliumWavefunction(),
                 vmc_params: VmcParams = VmcParams(),
                 dmc_params: DmcParams = DmcParams(),
                 equilibration: int = 20) -> None:
        super().__init__()
        self.seed = seed
        self.wf = wavefunction
        self.vmc_params = vmc_params
        self.dmc_params = dmc_params
        self.equilibration = equilibration

        # VMC has no file inputs, so its products are deterministic and
        # computed once (the per-run cost is DMC only).
        vmc_rng = RngStream(seed, "qmcpack", "vmc").generator()
        self._vmc_walkers, self._vmc_rows = run_vmc(self.wf, vmc_params, vmc_rng)

    # -- lifecycle ---------------------------------------------------------------

    def prepare(self, mp: MountPoint, carry) -> None:
        mp.makedirs(RUN_DIR)

    def steps(self):
        """vmc, then dmc split at its compute/write seam.

        The split changes no phase window (``dmc_compute`` performs no
        writes) but gives the replay engine a snapshot boundary between
        the expensive DMC projection and the cheap scalar writes it
        feeds: a fault targeting an ``s001`` write restores the
        post-compute boundary and re-executes only the writes, and a
        fault that never touched the walker file fast-forwards past the
        projection entirely.
        """
        return (RunStep("vmc", "vmc", self._step_vmc),
                RunStep("dmc_compute", "dmc", self._step_dmc_compute),
                RunStep("dmc_write", "dmc", self._step_dmc_write))

    def _step_vmc(self, mp: MountPoint, carry) -> None:
        write_scalars(mp, S000_SCALARS, self._vmc_rows, block_size=TEXT_BLOCK)
        with File(mp, CONFIG_FILE, "w") as f:
            f.create_dataset(WALKER_DATASET, self._vmc_walkers)
        log = self._render_log()
        mp.write_file(LOG_FILE, log.encode("ascii"), block_size=TEXT_BLOCK)

    def _step_dmc_compute(self, mp: MountPoint, carry) -> None:
        walkers = Hdf5Reader(mp, CONFIG_FILE).read(WALKER_DATASET)
        dmc_rng = RngStream(self.seed, "qmcpack", "dmc").generator()
        _, rows = run_dmc(self.wf, walkers, self.dmc_params, dmc_rng)
        carry["dmc_rows"] = rows

    def _step_dmc_write(self, mp: MountPoint, carry) -> None:
        write_scalars(mp, S001_SCALARS, carry["dmc_rows"],
                      block_size=TEXT_BLOCK)

    def _render_log(self) -> str:
        lines = [
            "  Entering He run",
            f"  seed            = {self.seed}",
            f"  trial function  = Slater-Jastrow (a={self.wf.jastrow_a}, "
            f"b={self.wf.jastrow_b}, zeta={self.wf.zeta})",
            f"  VMC walkers     = {self.vmc_params.n_walkers}",
            f"  VMC blocks      = {self.vmc_params.n_blocks}",
            f"  DMC target pop  = {self.dmc_params.target_walkers}",
            f"  DMC blocks      = {self.dmc_params.n_blocks}",
            f"  DMC tau         = {self.dmc_params.tau}",
            "  ========================================",
        ]
        # Pad the log so it presents a realistic write surface.
        lines += [f"  status block {i:03d}: ok" for i in range(40)]
        return "\n".join(lines) + "\n"

    def output_paths(self) -> List[str]:
        return [S000_SCALARS, CONFIG_FILE, LOG_FILE, S001_SCALARS]

    # -- post-analysis ---------------------------------------------------------------

    def analyze(self, mp: MountPoint) -> Dict[str, object]:
        estimate = analyze_file(mp, S001_SCALARS, equilibration=self.equilibration)
        return {
            "energy": estimate.mean,
            "error": estimate.error,
            "s001_text": mp.read_file(S001_SCALARS),
        }

    def energy(self, mp: MountPoint) -> EnergyEstimate:
        return analyze_file(mp, S001_SCALARS, equilibration=self.equilibration)

    # -- classification ---------------------------------------------------------------

    def classify(self, golden: GoldenRecord, mp: MountPoint) -> Tuple[Outcome, str]:
        if not mp.exists(S001_SCALARS):
            return Outcome.CRASH, "He.s001.scalar.dat was not created"
        faulty = mp.read_file(S001_SCALARS)
        if faulty == golden.analysis["s001_text"]:
            return Outcome.BENIGN, "He.s001.scalar.dat bit-wise identical"
        estimate = self.energy(mp)           # AnalysisError → CRASH upstream
        lo, hi = SDC_WINDOW
        if lo <= estimate.mean <= hi:
            return Outcome.SDC, f"energy {estimate.mean:.5f} inside plausible window"
        return Outcome.DETECTED, f"energy {estimate.mean:.5f} outside [{lo}, {hi}]"
