"""The application-under-test protocol shared by Nyx, QMCPACK, Montage.

An :class:`HpcApplication` is a deterministic callable world: given the
same construction parameters and seed, :meth:`run` performs the same I/O
through the mount it is handed (the only nondeterminism a campaign sees
is the injected fault).  ``run`` is split into named **phases** so
stage-targeted campaigns (Montage MT1..MT4) can restrict the injector to
the dynamic write-instance window of one phase -- the application itself
stays oblivious to fault injection (paper requirement R1).

Phases are further decomposed into ordered **steps** (:meth:`steps`):
each step is a named callable over ``(mount point, carry dict)``, and
consecutive steps sharing a phase name form that phase (one recorded
:class:`PhaseSpan`, one phase-end notification -- byte-identical to the
old monolithic ``run``).  The step protocol is what the prefix-replay
engine schedules against: golden capture snapshots the file system at
every step boundary (:class:`ReplayImage`), and a faulty run restores
the last boundary before its first injection point instead of
re-executing the whole prefix.  Step contract:

* a step communicates with later steps only through the file system and
  the ``carry`` dict (assign new values; never mutate a carried value in
  place -- carries are shared with golden snapshots);
* any randomness inside a step is derived by name from construction
  parameters (:class:`repro.util.rngstream.RngStream`), never threaded
  across steps, so a replayed suffix draws identical randoms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.outcomes import Outcome
from repro.fusefs.mount import MountPoint
from repro.fusefs.vfs import FsImage


@dataclass(frozen=True)
class PhaseSpan:
    """Dynamic ``ffis_write`` sequence-number window [start, end) of a phase."""

    name: str
    start: int
    end: int

    @property
    def count(self) -> int:
        return self.end - self.start


#: One step of the decomposed run: ``fn(mount point, carry)``.
StepFn = Callable[[MountPoint, Dict[str, object]], None]


@dataclass(frozen=True)
class RunStep:
    """A named stage of :meth:`HpcApplication.run`.

    ``phase`` is the public phase the step belongs to; consecutive steps
    with the same phase form one :class:`PhaseSpan`.  Splitting a phase
    into several steps adds snapshot boundaries (e.g. an expensive
    compute step separated from the writes it feeds) without changing
    the recorded phases or the write windows campaigns sample from.
    """

    name: str
    phase: str
    fn: StepFn


@dataclass(frozen=True)
class StepTrace:
    """What one golden step observed and changed (by inode number).

    ``observed`` is every inode whose *content* the step read
    (``ffis_read`` targets); ``written`` every inode whose extent or
    inode image changed during the step (files written or created,
    directories whose entries changed); ``removed`` inodes that
    disappeared.  The replay engine uses these to decide whether a
    pending step can be fast-forwarded from the golden image instead of
    re-executed.
    """

    name: str
    phase: str
    ends_phase: bool
    observed: Tuple[int, ...]
    written: Tuple[int, ...]
    removed: Tuple[int, ...]


@dataclass(frozen=True)
class ReplayImage:
    """Golden step-boundary snapshots for the prefix-replay engine.

    ``boundaries[k]`` is the file-system image *before* step ``k`` (so
    ``boundaries[0]`` is the post-:meth:`~HpcApplication.prepare` state
    and ``boundaries[len(steps)]`` the final state); ``carries[k]`` the
    carry dict at the same point.  All images share extent bytes
    copy-on-write, so the whole set costs roughly one file-system image
    plus per-step deltas.
    """

    boundaries: Tuple[FsImage, ...]
    carries: Tuple[Mapping[str, object], ...]
    steps: Tuple[StepTrace, ...]

    def __len__(self) -> int:
        return len(self.steps)


@dataclass
class GoldenRecord:
    """Fault-free reference captured once per campaign.

    ``outputs`` maps output paths to their exact bytes; ``analysis`` holds
    the application's post-analysis product in a bit-comparable form
    (e.g. the rendered halo catalog); ``phases`` records the write windows
    of each run phase.  ``replay`` carries the step-boundary snapshot set
    when the application speaks the step protocol and the file system can
    fork (``None`` otherwise -- the engine then always runs cold).

    ``primitive_counts`` and ``bytes_written`` are the fault-free I/O
    profile of the run -- the dynamic execution count of *every*
    primitive and the total bytes pushed through ``ffis_write`` --
    snapshotted before the capture's own output reads so they match a
    plain profiled execution exactly.  They let a campaign derive its
    :class:`~repro.core.profiler.ProfileResult` from the golden capture
    instead of paying a second fault-free run.
    """

    outputs: Dict[str, bytes] = field(default_factory=dict)
    analysis: Dict[str, object] = field(default_factory=dict)
    phases: List[PhaseSpan] = field(default_factory=list)
    total_writes: int = 0
    primitive_counts: Dict[str, int] = field(default_factory=dict)
    bytes_written: int = 0
    replay: Optional[ReplayImage] = None

    def phase(self, name: str) -> PhaseSpan:
        for span in self.phases:
            if span.name == name:
                return span
        raise KeyError(f"no phase named {name!r}")

    def phase_names(self) -> List[str]:
        return [span.name for span in self.phases]


class HpcApplication(ABC):
    """Base class for applications characterized by FFIS campaigns."""

    #: Short identifier used in reports ("nyx", "qmcpack", "montage").
    name: str = "app"

    def __init__(self) -> None:
        self._phase_log: List[PhaseSpan] = []
        self._active_mp: Optional[MountPoint] = None

    # -- phases ---------------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Mark a named phase of :meth:`run` (for stage-targeted injection)."""
        if self._active_mp is None:
            raise RuntimeError("phase() may only be used inside run()")
        interposer = self._active_mp.fs.interposer
        start = interposer.count("ffis_write")
        try:
            yield
        finally:
            end = interposer.count("ffis_write")
            self._phase_log.append(PhaseSpan(name, start, end))
            # Between-stage seam: at-rest fault scenarios decay persisted
            # bytes here, after this stage's writes and before the next
            # stage reads them.
            interposer.notify_phase_end(name)

    @property
    def recorded_phases(self) -> List[PhaseSpan]:
        return list(self._phase_log)

    # -- the step protocol ----------------------------------------------------

    def steps(self) -> Optional[Sequence[RunStep]]:
        """The run decomposed into ordered named steps, or ``None``.

        Applications that return a step list get :meth:`run` for free
        and become eligible for prefix replay; applications that
        override :meth:`run` directly simply always execute cold.
        """
        return None

    def prepare(self, mp: MountPoint, carry: Dict[str, object]) -> None:
        """Pre-phase setup (directories); runs before the first step."""

    def run_steps(self, mp: MountPoint, carry: Dict[str, object],
                  start: int = 0,
                  next_step: Optional[Callable[[int], int]] = None) -> None:
        """Drive the step protocol from *start*.

        Phase bookkeeping matches the :meth:`phase` context manager
        byte for byte: one span and one phase-end notification per
        group of same-phase steps, emitted even when a step raises
        (crash parity).  ``next_step(i)`` is consulted after step *i*
        completes and returns the index to continue at -- the replay
        engine uses it to skip steps it fast-forwarded from the golden
        image.
        """
        steps = self.steps()
        if steps is None:
            raise NotImplementedError(
                f"{type(self).__name__} does not define steps()")
        interposer = mp.fs.interposer
        n = len(steps)
        i = start
        span_start: Optional[int] = None
        span_phase = ""
        while i < n:
            step = steps[i]
            if span_start is None:
                span_start = interposer.count("ffis_write")
                span_phase = step.phase
            ends = (i + 1 >= n) or (steps[i + 1].phase != step.phase)
            try:
                step.fn(mp, carry)
            except BaseException:
                self._phase_log.append(PhaseSpan(
                    span_phase, span_start, interposer.count("ffis_write")))
                interposer.notify_phase_end(span_phase)
                raise
            if ends:
                self._phase_log.append(PhaseSpan(
                    span_phase, span_start, interposer.count("ffis_write")))
                interposer.notify_phase_end(span_phase)
                span_start = None
            nxt = next_step(i) if next_step is not None else i + 1
            if nxt != i + 1:
                # Fast-forwarded steps may have crossed phase ends (the
                # engine fires those notifications itself); start a
                # fresh span at the next live step.
                span_start = None
            i = nxt

    def execute_from(self, mp: MountPoint, carry: Dict[str, object],
                     start: int = 0,
                     next_step: Optional[Callable[[int], int]] = None) -> None:
        """Replay entry point: execute steps ``start..`` against *mp*.

        With ``start == 0`` this is a cold execution through the step
        driver; otherwise the caller must have restored the file system
        and *carry* to the boundary before step *start*.
        """
        self._phase_log = []
        self._active_mp = mp
        try:
            if start == 0:
                self.prepare(mp, carry)
            self.run_steps(mp, carry, start=start, next_step=next_step)
        finally:
            self._active_mp = None

    # -- the application lifecycle ----------------------------------------------

    def execute(self, mp: MountPoint) -> None:
        """Run the application, recording phase windows."""
        self._phase_log = []
        self._active_mp = mp
        try:
            self.run(mp)
        finally:
            self._active_mp = None

    def run(self, mp: MountPoint) -> None:
        """Perform the workload's I/O through *mp* (deterministically).

        The default drives :meth:`steps`; applications without a step
        decomposition override this directly.
        """
        if self.steps() is None:
            raise NotImplementedError(
                f"{type(self).__name__} must implement run() or steps()")
        carry: Dict[str, object] = {}
        self.prepare(mp, carry)
        self.run_steps(mp, carry)

    @abstractmethod
    def output_paths(self) -> List[str]:
        """Paths of the outputs that define bit-wise 'benign'."""

    @abstractmethod
    def analyze(self, mp: MountPoint) -> Dict[str, object]:
        """Run the post-analysis, returning bit-comparable products.

        May raise (e.g. :class:`repro.errors.FormatError`); the campaign
        classifies an unhandled exception as CRASH.
        """

    @abstractmethod
    def classify(self, golden: GoldenRecord, mp: MountPoint) -> Tuple[Outcome, str]:
        """Classify a completed faulty run against the golden record.

        Returns the outcome and a human-readable detail string.  Must not
        raise for corrupted-but-readable outputs; exceptions escaping here
        are classified as CRASH by the campaign (covering the library-
        level aborts the paper counts as crashes).
        """

    # -- golden capture -------------------------------------------------------------

    def capture_golden(self, mp: MountPoint) -> GoldenRecord:
        """Run fault-free and capture outputs + analysis + phase windows.

        When the application speaks the step protocol and the mounted
        file system supports copy-on-write snapshots, the capture also
        records a :class:`ReplayImage` -- one snapshot per step boundary
        plus each step's observed/written inode sets -- which is what
        lets the campaign engine replay only the suffix of each faulty
        run.  The extra capture changes nothing observable: the I/O
        sequence, phase windows, outputs, and analysis are identical to
        a plain execution.
        """
        interposer = mp.fs.interposer
        written = {"bytes": 0}

        def byte_counter(call):
            if call.primitive == "ffis_write":
                size = call.args.get("size")
                if isinstance(size, int):
                    written["bytes"] += size
            return None

        replay = None
        interposer.add_global_hook(byte_counter)
        try:
            if self.steps() is not None and mp.fs.supports_snapshots:
                replay = self._execute_capturing_replay(mp)
            else:
                self.execute(mp)
        finally:
            interposer.remove_global_hook(byte_counter)
        golden = GoldenRecord()
        golden.phases = self.recorded_phases
        golden.total_writes = interposer.count("ffis_write")
        # Snapshot the profile before our own output reads below pollute
        # the read counters: these must equal a plain profiled run.
        golden.primitive_counts = dict(interposer.counters_snapshot())
        golden.bytes_written = written["bytes"]
        for path in self.output_paths():
            golden.outputs[path] = mp.read_file(path)
        golden.analysis = self.analyze(mp)
        golden.replay = replay
        return golden

    def _execute_capturing_replay(self, mp: MountPoint) -> ReplayImage:
        """Execute the step protocol, snapshotting every boundary."""
        fs = mp.fs
        steps = list(self.steps())
        observed: List[set] = [set() for _ in steps]
        cursor = {"step": 0}

        def read_tracker(call):
            if call.primitive == "ffis_read" and cursor["step"] < len(steps):
                handle = fs.open_handle(call.args["fd"])
                if handle is not None:
                    observed[cursor["step"]].add(handle.ino)
            return None

        boundaries: List[FsImage] = []
        carries: List[Dict[str, object]] = []
        carry: Dict[str, object] = {}

        def boundary(i: int) -> int:
            boundaries.append(fs.snapshot())
            carries.append(dict(carry))
            cursor["step"] = i + 1
            return i + 1

        self._phase_log = []
        self._active_mp = mp
        fs.interposer.add_global_hook(read_tracker)
        try:
            self.prepare(mp, carry)
            boundaries.append(fs.snapshot())
            carries.append(dict(carry))
            self.run_steps(mp, carry, next_step=boundary)
        finally:
            fs.interposer.remove_global_hook(read_tracker)
            self._active_mp = None

        traces = []
        for i, step in enumerate(steps):
            written, removed = _boundary_delta(boundaries[i], boundaries[i + 1])
            ends = (i + 1 >= len(steps)) or (steps[i + 1].phase != step.phase)
            traces.append(StepTrace(name=step.name, phase=step.phase,
                                    ends_phase=ends,
                                    observed=tuple(sorted(observed[i])),
                                    written=written, removed=removed))
        return ReplayImage(boundaries=tuple(boundaries),
                           carries=tuple(carries), steps=tuple(traces))

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def outputs_identical(golden: GoldenRecord, mp: MountPoint,
                          paths: Optional[List[str]] = None) -> bool:
        """Bit-wise comparison of faulty outputs against the golden ones."""
        for path, expected in golden.outputs.items():
            if paths is not None and path not in paths:
                continue
            if not mp.exists(path):
                return False
            if mp.read_file(path) != expected:
                return False
        return True


def _boundary_delta(prev: FsImage, cur: FsImage
                    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """``(written, removed)`` inode sets between two golden boundaries.

    Extent comparison is by object identity: snapshots freeze extents in
    place, so an extent object shared by both boundaries was provably
    untouched in between -- the copy-on-write fork makes this diff O(1)
    per unchanged file.
    """
    written = set()
    for ino, ext in cur.extents.items():
        if prev.extents.get(ino) is not ext:
            written.add(ino)
    for ino, image in cur.inodes.items():
        if prev.inodes.get(ino) != image:
            written.add(ino)
    removed = {ino for ino in prev.inodes if ino not in cur.inodes}
    removed |= {ino for ino in prev.extents if ino not in cur.extents}
    return tuple(sorted(written - removed)), tuple(sorted(removed))
