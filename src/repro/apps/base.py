"""The application-under-test protocol shared by Nyx, QMCPACK, Montage.

An :class:`HpcApplication` is a deterministic callable world: given the
same construction parameters and seed, :meth:`run` performs the same I/O
through the mount it is handed (the only nondeterminism a campaign sees
is the injected fault).  ``run`` is split into named **phases** so
stage-targeted campaigns (Montage MT1..MT4) can restrict the injector to
the dynamic write-instance window of one phase -- the application itself
stays oblivious to fault injection (paper requirement R1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.outcomes import Outcome
from repro.fusefs.mount import MountPoint


@dataclass(frozen=True)
class PhaseSpan:
    """Dynamic ``ffis_write`` sequence-number window [start, end) of a phase."""

    name: str
    start: int
    end: int

    @property
    def count(self) -> int:
        return self.end - self.start


@dataclass
class GoldenRecord:
    """Fault-free reference captured once per campaign.

    ``outputs`` maps output paths to their exact bytes; ``analysis`` holds
    the application's post-analysis product in a bit-comparable form
    (e.g. the rendered halo catalog); ``phases`` records the write windows
    of each run phase.
    """

    outputs: Dict[str, bytes] = field(default_factory=dict)
    analysis: Dict[str, object] = field(default_factory=dict)
    phases: List[PhaseSpan] = field(default_factory=list)
    total_writes: int = 0

    def phase(self, name: str) -> PhaseSpan:
        for span in self.phases:
            if span.name == name:
                return span
        raise KeyError(f"no phase named {name!r}")

    def phase_names(self) -> List[str]:
        return [span.name for span in self.phases]


class HpcApplication(ABC):
    """Base class for applications characterized by FFIS campaigns."""

    #: Short identifier used in reports ("nyx", "qmcpack", "montage").
    name: str = "app"

    def __init__(self) -> None:
        self._phase_log: List[PhaseSpan] = []
        self._active_mp: Optional[MountPoint] = None

    # -- phases ---------------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Mark a named phase of :meth:`run` (for stage-targeted injection)."""
        if self._active_mp is None:
            raise RuntimeError("phase() may only be used inside run()")
        interposer = self._active_mp.fs.interposer
        start = interposer.count("ffis_write")
        try:
            yield
        finally:
            end = interposer.count("ffis_write")
            self._phase_log.append(PhaseSpan(name, start, end))
            # Between-stage seam: at-rest fault scenarios decay persisted
            # bytes here, after this stage's writes and before the next
            # stage reads them.
            interposer.notify_phase_end(name)

    @property
    def recorded_phases(self) -> List[PhaseSpan]:
        return list(self._phase_log)

    # -- the application lifecycle ----------------------------------------------

    def execute(self, mp: MountPoint) -> None:
        """Run the application, recording phase windows."""
        self._phase_log = []
        self._active_mp = mp
        try:
            self.run(mp)
        finally:
            self._active_mp = None

    @abstractmethod
    def run(self, mp: MountPoint) -> None:
        """Perform the workload's I/O through *mp* (deterministically)."""

    @abstractmethod
    def output_paths(self) -> List[str]:
        """Paths of the outputs that define bit-wise 'benign'."""

    @abstractmethod
    def analyze(self, mp: MountPoint) -> Dict[str, object]:
        """Run the post-analysis, returning bit-comparable products.

        May raise (e.g. :class:`repro.errors.FormatError`); the campaign
        classifies an unhandled exception as CRASH.
        """

    @abstractmethod
    def classify(self, golden: GoldenRecord, mp: MountPoint) -> Tuple[Outcome, str]:
        """Classify a completed faulty run against the golden record.

        Returns the outcome and a human-readable detail string.  Must not
        raise for corrupted-but-readable outputs; exceptions escaping here
        are classified as CRASH by the campaign (covering the library-
        level aborts the paper counts as crashes).
        """

    # -- golden capture -------------------------------------------------------------

    def capture_golden(self, mp: MountPoint) -> GoldenRecord:
        """Run fault-free and capture outputs + analysis + phase windows."""
        self.execute(mp)
        golden = GoldenRecord()
        golden.phases = self.recorded_phases
        golden.total_writes = mp.fs.interposer.count("ffis_write")
        for path in self.output_paths():
            golden.outputs[path] = mp.read_file(path)
        golden.analysis = self.analyze(mp)
        return golden

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def outputs_identical(golden: GoldenRecord, mp: MountPoint,
                          paths: Optional[List[str]] = None) -> bool:
        """Bit-wise comparison of faulty outputs against the golden ones."""
        for path, expected in golden.outputs.items():
            if paths is not None and path not in paths:
                continue
            if not mp.exists(path):
                return False
            if mp.read_file(path) != expected:
                return False
        return True
