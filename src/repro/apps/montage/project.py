"""Stage 1 -- ``mProjExec``: reproject raw tiles onto the mosaic grid.

Each raw tile was sampled at a subpixel dither ``(dy, dx)``; reprojection
resamples it back onto the integer mosaic grid by bilinear interpolation
and emits, per input image, a projected image and the corresponding
*area* (coverage weight) image Montage uses when co-adding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import FormatError
from repro.fusefs.mount import MountPoint
from repro.mfits.hdu import ImageHDU
from repro.mfits.io import read_fits, write_fits


@dataclass(frozen=True)
class ProjectedPaths:
    image: str
    area: str


def shift_bilinear(pixels: np.ndarray, dy: float, dx: float) -> Tuple[np.ndarray, np.ndarray]:
    """Resample *pixels* at integer grid points offset by (+dy, +dx).

    Returns ``(resampled, weights)`` one row/column smaller than the
    input when the dither is fractional (edge pixels lack support).
    """
    h, w = pixels.shape
    out_h = h - 1 if dy > 0 else h
    out_w = w - 1 if dx > 0 else w
    ys = np.arange(out_h)[:, None] + dy
    xs = np.arange(out_w)[None, :] + dx
    y_lo = np.floor(ys).astype(int)
    x_lo = np.floor(xs).astype(int)
    fy = ys - y_lo
    fx = xs - x_lo
    y_hi = np.minimum(y_lo + 1, h - 1)
    x_hi = np.minimum(x_lo + 1, w - 1)
    res = ((1 - fy) * (1 - fx) * pixels[y_lo, x_lo]
           + (1 - fy) * fx * pixels[y_lo, x_hi]
           + fy * (1 - fx) * pixels[y_hi, x_lo]
           + fy * fx * pixels[y_hi, x_hi])
    weights = np.ones_like(res)
    return res, weights


def project_tile(hdu: ImageHDU) -> Tuple[ImageHDU, ImageHDU, int, int]:
    """Reproject one raw tile; returns (projected, area, y0, x0).

    The placement and dither come from the tile's own WCS-ish header
    cards, so a corrupted header changes the projection (or crashes it)
    exactly as corrupted WCS does in Montage.
    """
    header = hdu.header
    try:
        x0 = int(float(header["CRPIX1"]))
        y0 = int(float(header["CRPIX2"]))
        dx = float(header["CDELT1"])
        dy = float(header["CDELT2"])
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"tile lacks usable WCS cards: {exc}") from None
    if not (0.0 <= dx < 1.0) or not (0.0 <= dy < 1.0):
        raise FormatError(f"unphysical dither ({dy}, {dx}) in tile header")

    # Undo the dither.  Tile pixel i samples the sky at ``y0 + i + dy``;
    # the mosaic wants integer coordinates ``oy + k`` with ``oy = y0 + 1``
    # (for a fractional dither), i.e. tile position ``k + (1 - dy)``.
    res, weights = shift_bilinear(hdu.data.astype(np.float64),
                                  (1.0 - dy) % 1.0, (1.0 - dx) % 1.0)
    oy = y0 + (1 if dy > 0 else 0)
    ox = x0 + (1 if dx > 0 else 0)
    meta = {"TILE": header.get("TILE", -1), "CRPIX1": float(ox), "CRPIX2": float(oy)}
    proj = ImageHDU(res.astype(np.float32), header=dict(meta))
    area = ImageHDU(weights.astype(np.float32), header=dict(meta))
    return proj, area, oy, ox


def run_mproj(mp: MountPoint, raw_paths: List[str], out_dir: str) -> List[ProjectedPaths]:
    """Run the projection stage over every raw image.

    Like the real ``mProjExec`` executor, a failure on one input image is
    recorded and the run continues with the remaining images; only a run
    with *no* usable input aborts.
    """
    mp.makedirs(out_dir)
    outputs: List[ProjectedPaths] = []
    failures = 0
    for raw_path in raw_paths:
        try:
            hdu = read_fits(mp, raw_path)
            proj, area, _, _ = project_tile(hdu)
        except FormatError:
            failures += 1
            continue
        tile = proj.header["TILE"]
        image_path = f"{out_dir}/p_{tile}.fits"
        area_path = f"{out_dir}/p_{tile}_area.fits"
        write_fits(mp, image_path, proj)
        write_fits(mp, area_path, area)
        outputs.append(ProjectedPaths(image=image_path, area=area_path))
    if not outputs:
        raise FormatError(f"mProjExec: all {failures} input images unusable")
    return outputs
