"""Stage 3 -- ``mBgExec`` (with the plane fitting of ``mFitExec``).

Fits a plane ``c0 + cy*y + cx*x`` to every difference image, solves the
global least-squares problem for per-image correction planes whose
pairwise differences best explain the fitted planes (gauge-fixed so the
corrections sum to zero), then subtracts each image's plane and writes
the background-matched images.

A corrupted difference image perturbs only three fitted coefficients per
pair -- the paper's explanation for why ``mDiffExec`` faults are largely
absorbed ("potentially be mitigated in the process of extracting
coefficients").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.montage.diff import DiffRecord
from repro.errors import FormatError
from repro.fusefs.mount import MountPoint
from repro.mfits.hdu import ImageHDU
from repro.mfits.io import read_fits, write_fits


@dataclass(frozen=True)
class PlaneFit:
    """Fitted plane of one difference image (mosaic-coordinate basis)."""

    tile_a: int
    tile_b: int
    c0: float
    cy: float
    cx: float


CLIP_SIGMA = 2.5
CLIP_ITERATIONS = 3


def fit_plane(hdu: ImageHDU) -> PlaneFit:
    """Sigma-clipped least-squares plane through a difference image.

    Like Montage's ``mFitplane``, the fit iteratively rejects outlier
    pixels (> ``CLIP_SIGMA`` residual sigmas) before refitting.  The
    clipping is the mechanism behind the paper's observation that faults
    in ``mDiffExec`` outputs are largely absorbed: corrupted pixels look
    like stars/artifacts and get rejected from the background solution.
    Non-finite pixels are excluded up front; an all-bad difference image
    is a format-level failure.
    """
    y0 = float(hdu.header["CRPIX2"])
    x0 = float(hdu.header["CRPIX1"])
    data = hdu.data.astype(np.float64)
    h, w = data.shape
    yy, xx = np.mgrid[0:h, 0:w]
    yy = yy + y0
    xx = xx + x0
    good = np.isfinite(data)
    if good.sum() < 8:
        raise FormatError("difference image has too few usable pixels to fit")

    values = data[good]
    A = np.column_stack([np.ones(values.size), yy[good], xx[good]])
    keep = np.ones(values.size, dtype=bool)
    coeffs = np.zeros(3)
    for _ in range(CLIP_ITERATIONS):
        if keep.sum() < 8:
            break
        coeffs, *_ = np.linalg.lstsq(A[keep], values[keep], rcond=None)
        residuals = values - A @ coeffs
        sigma = residuals[keep].std()
        if sigma == 0:
            break
        new_keep = np.abs(residuals) <= CLIP_SIGMA * sigma
        if new_keep.sum() == keep.sum():
            break
        keep = new_keep
    return PlaneFit(tile_a=int(hdu.header["TILEA"]),
                    tile_b=int(hdu.header["TILEB"]),
                    c0=float(coeffs[0]), cy=float(coeffs[1]), cx=float(coeffs[2]))


def solve_corrections(fits: List[PlaneFit], tiles: List[int]) -> Dict[int, Tuple[float, float, float]]:
    """Global gauge-fixed least squares: per-tile correction planes.

    Unknowns are three coefficients per tile; each fitted pair plane
    contributes equations ``corr_a - corr_b = fit_ab`` and one extra row
    per coefficient pins the sum of corrections to zero (the mosaic's
    overall level is not observable from differences alone).
    """
    index = {tile: i for i, tile in enumerate(tiles)}
    n = len(tiles)
    rows = []
    rhs = []
    for pf in fits:
        if pf.tile_a not in index or pf.tile_b not in index:
            # A pair whose image failed upstream contributes no constraint.
            continue
        for k, value in enumerate((pf.c0, pf.cy, pf.cx)):
            row = np.zeros(3 * n)
            row[3 * index[pf.tile_a] + k] = 1.0
            row[3 * index[pf.tile_b] + k] = -1.0
            rows.append(row)
            rhs.append(value)
    for k in range(3):
        gauge = np.zeros(3 * n)
        gauge[k::3] = 1.0
        rows.append(gauge)
        rhs.append(0.0)
    A = np.array(rows)
    b = np.array(rhs)
    solution, *_ = np.linalg.lstsq(A, b, rcond=None)
    return {tile: (float(solution[3 * i]), float(solution[3 * i + 1]),
                   float(solution[3 * i + 2])) for tile, i in index.items()}


def render_fits_table(fits: List[PlaneFit]) -> str:
    """Render plane fits as the ``fits.tbl`` text table ``mFitExec`` emits.

    The fixed output precision matters experimentally: coefficient
    perturbations below the printed resolution vanish here, which is how
    small corruptions of difference images end up *bit-identical* in the
    final mosaic (the paper's stage-decoupling observation).
    """
    lines = ["| plus | minus |    a     |     b     |     c     |"]
    for pf in fits:
        lines.append(f"  {pf.tile_a:4d}   {pf.tile_b:4d}   {pf.c0: .2f}  "
                     f"{pf.cy: .3f}  {pf.cx: .3f}")
    return "\n".join(lines) + "\n"


def parse_fits_table(text: str) -> List[PlaneFit]:
    """Parse a ``fits.tbl``; malformed rows are skipped (executor style)."""
    fits: List[PlaneFit] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("|"):
            continue
        parts = stripped.split()
        if len(parts) != 5:
            continue
        try:
            fits.append(PlaneFit(tile_a=int(parts[0]), tile_b=int(parts[1]),
                                 c0=float(parts[2]), cy=float(parts[3]),
                                 cx=float(parts[4])))
        except ValueError:
            continue
    return fits


@dataclass(frozen=True)
class BackgroundModel:
    """The solved background state between fitting and application.

    Everything :func:`mbg_apply` needs to write the corrected images:
    the loaded projected HDUs (treated as read-only) and the per-tile
    correction planes.  This is the carry value at the prefix-replay
    boundary splitting ``mBgExec``'s expensive fits from its writes.
    """

    hdus: Dict[int, ImageHDU]
    corrections: Dict[int, Tuple[float, float, float]]


def mbg_fit(mp: MountPoint, image_paths: List[str], diffs: List[DiffRecord],
            out_dir: str) -> BackgroundModel:
    """The fitting half of ``mBgExec``: fit planes, write/read the fits
    table, load the projected images, solve the global corrections."""
    mp.makedirs(out_dir)
    plane_fits = []
    for rec in diffs:
        # Executor semantics: an unreadable or unusable difference image
        # just loses its constraint.
        try:
            plane_fits.append(fit_plane(read_fits(mp, rec.path)))
        except (FormatError, KeyError, TypeError, ValueError):
            continue
    table_path = f"{out_dir}/fits.tbl"
    mp.write_file(table_path, render_fits_table(plane_fits).encode("ascii"))
    plane_fits = parse_fits_table(
        mp.read_file(table_path).decode("ascii", errors="replace"))

    hdus: Dict[int, ImageHDU] = {}
    for path in image_paths:
        try:
            hdu = read_fits(mp, path)
            tile = int(hdu.header["TILE"])
        except (FormatError, KeyError, TypeError, ValueError):
            continue
        hdus[tile] = hdu
    if not hdus:
        raise FormatError("mBgExec: no usable projected images")
    corrections = solve_corrections(plane_fits, sorted(hdus))
    return BackgroundModel(hdus=hdus, corrections=corrections)


def mbg_apply(mp: MountPoint, model: BackgroundModel,
              out_dir: str) -> List[str]:
    """The writing half of ``mBgExec``: subtract each tile's correction
    plane and write the background-matched images."""
    out_paths: List[str] = []
    for tile in sorted(model.hdus):
        hdu = model.hdus[tile]
        c0, cy, cx = model.corrections[tile]
        y0 = float(hdu.header["CRPIX2"])
        x0 = float(hdu.header["CRPIX1"])
        h, w = hdu.data.shape
        yy, xx = np.mgrid[0:h, 0:w]
        plane = c0 + cy * (yy + y0) + cx * (xx + x0)
        with np.errstate(invalid="ignore", over="ignore"):
            corrected = (hdu.data.astype(np.float64) - plane).astype(np.float32)
        out_path = f"{out_dir}/c_{tile}.fits"
        write_fits(mp, out_path, ImageHDU(corrected, header=dict(hdu.header)))
        out_paths.append(out_path)
    return out_paths


def run_mbg(mp: MountPoint, image_paths: List[str], diffs: List[DiffRecord],
            out_dir: str) -> List[str]:
    """Fit diff planes, solve corrections, write background-matched images.

    Mirrors the real pipeline's process structure: ``mFitExec`` writes
    the plane fits to ``fits.tbl`` and the background solver reads that
    table back from disk, so coefficients are exchanged at the table's
    finite text precision (and the table itself is injectable I/O).
    Composition of :func:`mbg_fit` and :func:`mbg_apply` -- the stage's
    I/O sequence is identical to the historical monolithic version.
    """
    return mbg_apply(mp, mbg_fit(mp, image_paths, diffs, out_dir), out_dir)
