"""Mini-Montage: synthetic m101 mosaic pipeline (mProj/mDiff/mBg/mAdd)."""

from repro.apps.montage.add import JPEG_STRETCH, MosaicStats, mosaic_stats, quantize_mosaic, run_madd, run_mjpeg
from repro.apps.montage.app import (
    MIN_TOLERANCE,
    MOSAIC_PATH,
    STAGES,
    MontageApplication,
)
from repro.apps.montage.background import (
    PlaneFit,
    fit_plane,
    parse_fits_table,
    render_fits_table,
    run_mbg,
    solve_corrections,
)
from repro.apps.montage.diff import (
    DiffRecord,
    Placement,
    overlap_box,
    placement_of,
    run_mdiff,
)
from repro.apps.montage.image import RawTile, SkyConfig, generate_sky, make_raw_tiles
from repro.apps.montage.project import ProjectedPaths, project_tile, run_mproj, shift_bilinear

__all__ = [
    "RawTile",
    "SkyConfig",
    "generate_sky",
    "make_raw_tiles",
    "ProjectedPaths",
    "project_tile",
    "run_mproj",
    "shift_bilinear",
    "DiffRecord",
    "Placement",
    "overlap_box",
    "placement_of",
    "run_mdiff",
    "PlaneFit",
    "fit_plane",
    "parse_fits_table",
    "render_fits_table",
    "run_mbg",
    "solve_corrections",
    "MosaicStats",
    "mosaic_stats",
    "run_madd",
    "run_mjpeg",
    "quantize_mosaic",
    "JPEG_STRETCH",
    "MIN_TOLERANCE",
    "MOSAIC_PATH",
    "STAGES",
    "MontageApplication",
]
