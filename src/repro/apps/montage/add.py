"""Stage 4 -- ``mAdd``: co-add corrected images into the final mosaic.

Area-weighted average over every covered mosaic pixel, producing the
mosaic, its area image, the statistics summary whose **min** value is the
paper's outcome-classification metric (Sec. IV-C.3), and the quantized
8-bit rendering (``mJPEG``'s role).  The paper compares
``m101_mosaic.jpg`` bit-wise to define benign: 8-bit quantization over a
fixed stretch absorbs sub-step pixel perturbations, which is where the
large benign fractions of BIT_FLIP and SHORN_WRITE come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.montage.diff import placement_of
from repro.errors import FormatError
from repro.fusefs.mount import MountPoint
from repro.mfits.hdu import ImageHDU
from repro.mfits.io import read_fits, write_fits


#: Fixed linear stretch of the 8-bit rendering (like mJPEG's explicit
#: ``-stretch`` bounds).  One grey level spans ~0.5 DN: perturbations
#: below half a level quantize away.
JPEG_STRETCH = (82.0, 212.0)


def quantize_mosaic(mosaic: np.ndarray, stretch: Tuple[float, float] = JPEG_STRETCH) -> bytes:
    """Render the mosaic to an 8-bit binary PGM (the mJPEG substitute).

    Non-finite pixels clamp to black, as image encoders do.
    """
    lo, hi = stretch
    with np.errstate(invalid="ignore"):
        scaled = (np.nan_to_num(mosaic, nan=lo, posinf=hi, neginf=lo) - lo) / (hi - lo)
    levels = np.clip(np.rint(scaled * 255.0), 0, 255).astype(np.uint8)
    ny, nx = levels.shape
    header = f"P5\n{nx} {ny}\n255\n".encode("ascii")
    return header + levels.tobytes()


#: Interior margin cropped off the mosaic so every retained pixel is
#: covered by at least one tile (projection trims one row/column per
#: fractional dither, so the outermost ring can be coverage holes even in
#: a fault-free run).
COVERAGE_MARGIN = 4


@dataclass(frozen=True)
class MosaicStats:
    """Statistics of the mosaic image (what mJPEG reports while rendering).

    Computed from the mosaic FITS alone -- zeros from dropped-write holes
    *count*, which is exactly how the paper's "min" check catches them.
    """

    min: float
    max: float
    mean: float
    covered_pixels: int

    def render(self) -> str:
        return ("[struct stat=\"OK\", "
                f"min={self.min:.6f}, max={self.max:.6f}, "
                f"mean={self.mean:.6f}, count={self.covered_pixels}]\n")


def mosaic_stats(mosaic: np.ndarray) -> MosaicStats:
    values = mosaic.astype(np.float64).ravel()
    finite = np.isfinite(values)
    if not finite.any():
        raise FormatError("mosaic has no finite pixels")
    values = values[finite]
    return MosaicStats(min=float(values.min()), max=float(values.max()),
                       mean=float(values.mean()), covered_pixels=int(values.size))


def run_madd(mp: MountPoint, image_paths: List[str], area_paths: List[str],
             mosaic_shape: Tuple[int, int], out_dir: str) -> Tuple[str, str, str]:
    """Co-add; returns (mosaic path, area path, stats path)."""
    if len(image_paths) != len(area_paths):
        raise ValueError("need one area image per input image")
    mp.makedirs(out_dir)
    acc = np.zeros(mosaic_shape, dtype=np.float64)
    weight = np.zeros(mosaic_shape, dtype=np.float64)
    n_added = 0
    for image_path, area_path in zip(image_paths, area_paths):
        # Executor semantics: skip image/area pairs that fail to load or
        # validate; a mosaic can still be formed from the remainder.
        try:
            img = read_fits(mp, image_path)
            area = read_fits(mp, area_path)
            if img.data.shape != area.data.shape:
                raise FormatError(
                    f"{image_path}: image/area shape mismatch "
                    f"{img.data.shape} vs {area.data.shape}")
            pl = placement_of(img)
            if (pl.y1 > mosaic_shape[0] or pl.x1 > mosaic_shape[1]
                    or pl.y0 < 0 or pl.x0 < 0):
                raise FormatError(f"{image_path}: placement {pl} outside mosaic")
        except (FormatError, KeyError, TypeError, ValueError):
            continue
        w = np.clip(area.data.astype(np.float64), 0.0, None)
        contrib = img.data.astype(np.float64) * w
        ok = np.isfinite(contrib)
        view_acc = acc[pl.y0 : pl.y1, pl.x0 : pl.x1]
        view_wgt = weight[pl.y0 : pl.y1, pl.x0 : pl.x1]
        view_acc[ok] += contrib[ok]
        view_wgt[ok] += w[ok]
        n_added += 1
    if n_added == 0:
        raise FormatError("mAdd: no usable image/area pairs")

    with np.errstate(invalid="ignore", divide="ignore"):
        mosaic = np.where(weight > 0, acc / weight, 0.0)
    m = COVERAGE_MARGIN
    mosaic = mosaic[m:-m, m:-m]
    weight = weight[m:-m, m:-m]
    stats = mosaic_stats(mosaic)

    mosaic_path = f"{out_dir}/m101_mosaic.fits"
    area_path = f"{out_dir}/m101_mosaic_area.fits"
    stats_path = f"{out_dir}/m101_stats.txt"
    write_fits(mp, mosaic_path, ImageHDU(mosaic.astype(np.float32),
                                         header={"CRPIX1": 0.0, "CRPIX2": 0.0}))
    write_fits(mp, area_path, ImageHDU(weight.astype(np.float32),
                                       header={"CRPIX1": 0.0, "CRPIX2": 0.0}))
    mp.write_file(stats_path, stats.render().encode("ascii"))
    return mosaic_path, area_path, stats_path


def run_mjpeg(mp: MountPoint, mosaic_path: str, jpeg_path: str,
              stretch: Tuple[float, float] = JPEG_STRETCH) -> str:
    """The mJPEG step: read the mosaic FITS back *from disk* and render.

    Reading from disk (not memory) is what lets faults on the mosaic's
    own writes propagate into the comparison image, as in the paper's
    pipeline where mJPEG is a separate process.
    """
    hdu = read_fits(mp, mosaic_path)
    mp.write_file(jpeg_path, quantize_mosaic(hdu.data.astype(np.float64), stretch),
                  block_size=4096)
    return jpeg_path
