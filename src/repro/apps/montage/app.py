"""The Montage application-under-test: 4-stage mosaic of synthetic m101.

Stages (the paper's four most I/O-intensive, injected as MT1..MT4):

1. ``mProjExec`` -- reproject each raw image (+ area images),
2. ``mDiffExec`` -- difference every overlapping pair,
3. ``mBgExec``   -- plane-fit differences, solve and apply background
   corrections,
4. ``mAdd``      -- co-add into the mosaic + statistics summary.

Raw-image staging happens in a separate ``stage_raw`` phase so campaigns
can exclude it (the paper injects into the pipeline stages, not into the
2MASS inputs).

Outcome classification (Sec. IV-C.3): mosaic bit-wise identical →
benign; else the "min" statistic within 10^-2 of golden → SDC, outside →
detected; missing/unreadable mosaic → crash.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.base import GoldenRecord, HpcApplication, RunStep
from repro.apps.montage.add import MosaicStats, mosaic_stats, run_madd, run_mjpeg
from repro.apps.montage.background import mbg_apply, mbg_fit
from repro.apps.montage.diff import (
    MIN_OVERLAP_PIXELS,
    DiffRecord,
    overlap_box,
    placement_of,
)
from repro.apps.montage.image import RawTile, SkyConfig, make_raw_tiles
from repro.apps.montage.project import ProjectedPaths, project_tile
from repro.core.outcomes import Outcome
from repro.errors import FormatError
from repro.fusefs.mount import MountPoint
from repro.mfits.hdu import ImageHDU
from repro.mfits.io import read_fits, write_fits

RAW_DIR = "/montage/raw"
PROJ_DIR = "/montage/projdir"
DIFF_DIR = "/montage/diffdir"
CORR_DIR = "/montage/corrdir"
OUT_DIR = "/montage/out"
MOSAIC_PATH = f"{OUT_DIR}/m101_mosaic.fits"
STATS_PATH = f"{OUT_DIR}/m101_stats.txt"
JPEG_PATH = f"{OUT_DIR}/m101_mosaic.jpg"

#: The paper accepts a 10^-2 window on the final "min" statistic.
MIN_TOLERANCE = 1e-2

#: Stage names in paper order (MT1..MT4).
STAGES = ("mProjExec", "mDiffExec", "mBgExec", "mAdd")


class MontageApplication(HpcApplication):
    """Synthetic m101 mosaic pipeline."""

    name = "montage"

    def __init__(self, seed: int = 2021,
                 sky_config: SkyConfig = SkyConfig()) -> None:
        super().__init__()
        self.seed = seed
        self.sky_config = sky_config
        self._tiles: List[RawTile] = make_raw_tiles(sky_config, seed)

    @property
    def tiles(self) -> List[RawTile]:
        return self._tiles

    # -- lifecycle ---------------------------------------------------------------

    def prepare(self, mp: MountPoint, carry) -> None:
        mp.makedirs("/montage")

    def steps(self):
        """The four pipeline stages, at per-tile replay granularity.

        ``mProjExec`` becomes one step per raw tile and ``mDiffExec``
        becomes a scan step plus one step per *potential* tile pair, so
        the prefix-replay engine can restore to the write that precedes
        the fault instead of re-executing a whole stage.  Every step of
        a stage shares the stage's phase name: consecutive same-phase
        steps are recorded as a single phase span with one phase-end
        notification, so the write windows stage-targeted campaigns
        sample from -- and the emitted records -- are unchanged.

        The step list must be static across golden and faulty runs (a
        replay image is aligned step-for-step), so the mDiff pair steps
        are *slots*: slot ``k`` executes the ``k``-th entry of the
        runtime worklist the scan step computed, or no-ops when a fault
        shrank the worklist below ``C(n_tiles, 2)``.

        ``mBgExec`` keeps its fit/apply seam: a boundary between the
        sigma-clipped plane fitting (the stage's dominant cost) and the
        corrected-image writes it feeds.
        """
        n = len(self._tiles)
        steps = [RunStep("stage_raw", "stage_raw", self._step_stage_raw)]
        for i in range(n):
            steps.append(RunStep(f"mProj_{i}", "mProjExec",
                                 partial(self._step_mproj_tile, index=i)))
        steps.append(RunStep("mDiff_scan", "mDiffExec", self._step_mdiff_scan))
        for k in range(n * (n - 1) // 2):
            steps.append(RunStep(f"mDiff_{k}", "mDiffExec",
                                 partial(self._step_mdiff_pair, slot=k)))
        steps.extend((RunStep("mBg_fit", "mBgExec", self._step_mbg_fit),
                      RunStep("mBg_apply", "mBgExec", self._step_mbg_apply),
                      RunStep("mAdd", "mAdd", self._step_madd)))
        return tuple(steps)

    def _step_stage_raw(self, mp: MountPoint, carry) -> None:
        mp.makedirs(RAW_DIR)
        raw_paths = []
        for tile in self._tiles:
            path = f"{RAW_DIR}/2mass_{tile.name}.fits"
            write_fits(mp, path, tile.hdu)
            raw_paths.append(path)
        carry["raw_paths"] = tuple(raw_paths)

    def _step_mproj_tile(self, mp: MountPoint, carry, index: int) -> None:
        """Reproject one raw tile (``run_mproj`` semantics, per input).

        A tile whose header or pixels are unusable is counted and
        skipped -- the real ``mProjExec`` executor keeps going -- and
        only a run that projects *nothing* aborts, detected by the last
        tile's step.
        """
        if index == 0:
            mp.makedirs(PROJ_DIR)
            carry["projected"] = ()
            carry["mproj_failures"] = 0
        try:
            hdu = read_fits(mp, carry["raw_paths"][index])
            proj, area, _, _ = project_tile(hdu)
        except FormatError:
            carry["mproj_failures"] = carry["mproj_failures"] + 1
        else:
            tile = proj.header["TILE"]
            image_path = f"{PROJ_DIR}/p_{tile}.fits"
            area_path = f"{PROJ_DIR}/p_{tile}_area.fits"
            write_fits(mp, image_path, proj)
            write_fits(mp, area_path, area)
            carry["projected"] = carry["projected"] + (
                ProjectedPaths(image=image_path, area=area_path),)
        if index == len(self._tiles) - 1 and not carry["projected"]:
            raise FormatError(
                f"mProjExec: all {carry['mproj_failures']} "
                "input images unusable")

    def _step_mdiff_scan(self, mp: MountPoint, carry) -> None:
        """Read every projected image and build the pair worklist
        (``run_mdiff`` semantics: skip unreadable inputs, keep pairs
        whose overlap clears ``MIN_OVERLAP_PIXELS``)."""
        mp.makedirs(DIFF_DIR)
        hdus = {}
        placements = {}
        for p in carry["projected"]:
            try:
                hdu = read_fits(mp, p.image)
                tile = int(hdu.header["TILE"])
                placement = placement_of(hdu)
            except (FormatError, KeyError, TypeError, ValueError):
                continue
            hdus[tile] = hdu
            placements[tile] = placement
        work = []
        tiles = sorted(hdus)
        for i, ta in enumerate(tiles):
            for tb in tiles[i + 1:]:
                y0, y1, x0, x1 = overlap_box(placements[ta], placements[tb])
                if y1 - y0 <= 0 or x1 - x0 <= 0:
                    continue
                if (y1 - y0) * (x1 - x0) < MIN_OVERLAP_PIXELS:
                    continue
                work.append((ta, tb))
        carry["diff_images"] = hdus
        carry["diff_placements"] = placements
        carry["diff_work"] = tuple(work)
        carry["diffs"] = ()

    def _step_mdiff_pair(self, mp: MountPoint, carry, slot: int) -> None:
        """Difference and write the ``slot``-th worklist pair."""
        work = carry["diff_work"]
        if slot >= len(work):
            return
        ta, tb = work[slot]
        pa = carry["diff_placements"][ta]
        pb = carry["diff_placements"][tb]
        y0, y1, x0, x1 = overlap_box(pa, pb)
        da = carry["diff_images"][ta].data[
            y0 - pa.y0:y1 - pa.y0, x0 - pa.x0:x1 - pa.x0]
        db = carry["diff_images"][tb].data[
            y0 - pb.y0:y1 - pb.y0, x0 - pb.x0:x1 - pb.x0]
        diff = (da.astype(np.float64) - db.astype(np.float64)).astype(np.float32)
        path = f"{DIFF_DIR}/diff_{ta}_{tb}.fits"
        write_fits(mp, path, ImageHDU(diff, header={
            "TILEA": ta, "TILEB": tb,
            "CRPIX1": float(x0), "CRPIX2": float(y0),
        }))
        carry["diffs"] = carry["diffs"] + (
            DiffRecord(tile_a=ta, tile_b=tb, path=path),)

    def _step_mbg_fit(self, mp: MountPoint, carry) -> None:
        projected = carry["projected"]
        carry["background"] = mbg_fit(mp, [p.image for p in projected],
                                      carry["diffs"], CORR_DIR)

    def _step_mbg_apply(self, mp: MountPoint, carry) -> None:
        carry["corrected"] = mbg_apply(mp, carry["background"], CORR_DIR)

    def _step_madd(self, mp: MountPoint, carry) -> None:
        projected = carry["projected"]
        mosaic_path, _, _ = run_madd(mp, carry["corrected"],
                                     [p.area for p in projected],
                                     self.sky_config.canvas_shape, OUT_DIR)
        run_mjpeg(mp, mosaic_path, JPEG_PATH)

    def output_paths(self) -> List[str]:
        return [MOSAIC_PATH, STATS_PATH, JPEG_PATH]

    # -- post-analysis ---------------------------------------------------------------

    def mosaic_statistics(self, mp: MountPoint) -> MosaicStats:
        mosaic = read_fits(mp, MOSAIC_PATH)
        return mosaic_stats(mosaic.data)

    def analyze(self, mp: MountPoint) -> Dict[str, object]:
        stats = self.mosaic_statistics(mp)
        return {
            "min": stats.min,
            "max": stats.max,
            "mean": stats.mean,
            "jpeg_bytes": mp.read_file(JPEG_PATH),
        }

    # -- classification ---------------------------------------------------------------

    def classify(self, golden: GoldenRecord, mp: MountPoint) -> Tuple[Outcome, str]:
        """The paper's rule: compare ``m101_mosaic.jpg`` bit-wise; if it
        differs, the "min" statistic of the last step decides SDC vs
        detected; a missing output is a crash."""
        if not mp.exists(JPEG_PATH) or not mp.exists(MOSAIC_PATH):
            return Outcome.CRASH, "mosaic output was not created"
        faulty = mp.read_file(JPEG_PATH)
        if faulty == golden.analysis["jpeg_bytes"]:
            return Outcome.BENIGN, "m101_mosaic.jpg bit-wise identical"
        stats = self.mosaic_statistics(mp)
        golden_min = golden.analysis["min"]
        if np.isfinite(stats.min) and abs(stats.min - golden_min) <= MIN_TOLERANCE:
            return Outcome.SDC, (
                f"image differs but min {stats.min:.4f} within "
                f"{MIN_TOLERANCE} of golden {golden_min:.4f}")
        return Outcome.DETECTED, (
            f"min {stats.min:.4f} deviates from golden {golden_min:.4f}")
