"""The Montage application-under-test: 4-stage mosaic of synthetic m101.

Stages (the paper's four most I/O-intensive, injected as MT1..MT4):

1. ``mProjExec`` -- reproject each raw image (+ area images),
2. ``mDiffExec`` -- difference every overlapping pair,
3. ``mBgExec``   -- plane-fit differences, solve and apply background
   corrections,
4. ``mAdd``      -- co-add into the mosaic + statistics summary.

Raw-image staging happens in a separate ``stage_raw`` phase so campaigns
can exclude it (the paper injects into the pipeline stages, not into the
2MASS inputs).

Outcome classification (Sec. IV-C.3): mosaic bit-wise identical →
benign; else the "min" statistic within 10^-2 of golden → SDC, outside →
detected; missing/unreadable mosaic → crash.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.apps.base import GoldenRecord, HpcApplication, RunStep
from repro.apps.montage.add import MosaicStats, mosaic_stats, run_madd, run_mjpeg
from repro.apps.montage.background import mbg_apply, mbg_fit
from repro.apps.montage.diff import run_mdiff
from repro.apps.montage.image import RawTile, SkyConfig, make_raw_tiles
from repro.apps.montage.project import run_mproj
from repro.core.outcomes import Outcome
from repro.fusefs.mount import MountPoint
from repro.mfits.io import read_fits, write_fits

RAW_DIR = "/montage/raw"
PROJ_DIR = "/montage/projdir"
DIFF_DIR = "/montage/diffdir"
CORR_DIR = "/montage/corrdir"
OUT_DIR = "/montage/out"
MOSAIC_PATH = f"{OUT_DIR}/m101_mosaic.fits"
STATS_PATH = f"{OUT_DIR}/m101_stats.txt"
JPEG_PATH = f"{OUT_DIR}/m101_mosaic.jpg"

#: The paper accepts a 10^-2 window on the final "min" statistic.
MIN_TOLERANCE = 1e-2

#: Stage names in paper order (MT1..MT4).
STAGES = ("mProjExec", "mDiffExec", "mBgExec", "mAdd")


class MontageApplication(HpcApplication):
    """Synthetic m101 mosaic pipeline."""

    name = "montage"

    def __init__(self, seed: int = 2021,
                 sky_config: SkyConfig = SkyConfig()) -> None:
        super().__init__()
        self.seed = seed
        self.sky_config = sky_config
        self._tiles: List[RawTile] = make_raw_tiles(sky_config, seed)

    @property
    def tiles(self) -> List[RawTile]:
        return self._tiles

    # -- lifecycle ---------------------------------------------------------------

    def prepare(self, mp: MountPoint, carry) -> None:
        mp.makedirs("/montage")

    def steps(self):
        """The four pipeline stages, with ``mBgExec`` split at its
        fit/apply seam.

        The split adds a replay boundary between the sigma-clipped plane
        fitting (the stage's dominant cost) and the corrected-image
        writes it feeds, without changing the ``mBgExec`` write window
        stage-targeted campaigns sample from.
        """
        return (RunStep("stage_raw", "stage_raw", self._step_stage_raw),
                RunStep("mProjExec", "mProjExec", self._step_mproj),
                RunStep("mDiffExec", "mDiffExec", self._step_mdiff),
                RunStep("mBg_fit", "mBgExec", self._step_mbg_fit),
                RunStep("mBg_apply", "mBgExec", self._step_mbg_apply),
                RunStep("mAdd", "mAdd", self._step_madd))

    def _step_stage_raw(self, mp: MountPoint, carry) -> None:
        mp.makedirs(RAW_DIR)
        raw_paths = []
        for tile in self._tiles:
            path = f"{RAW_DIR}/2mass_{tile.name}.fits"
            write_fits(mp, path, tile.hdu)
            raw_paths.append(path)
        carry["raw_paths"] = raw_paths

    def _step_mproj(self, mp: MountPoint, carry) -> None:
        carry["projected"] = run_mproj(mp, carry["raw_paths"], PROJ_DIR)

    def _step_mdiff(self, mp: MountPoint, carry) -> None:
        projected = carry["projected"]
        carry["diffs"] = run_mdiff(mp, [p.image for p in projected], DIFF_DIR)

    def _step_mbg_fit(self, mp: MountPoint, carry) -> None:
        projected = carry["projected"]
        carry["background"] = mbg_fit(mp, [p.image for p in projected],
                                      carry["diffs"], CORR_DIR)

    def _step_mbg_apply(self, mp: MountPoint, carry) -> None:
        carry["corrected"] = mbg_apply(mp, carry["background"], CORR_DIR)

    def _step_madd(self, mp: MountPoint, carry) -> None:
        projected = carry["projected"]
        mosaic_path, _, _ = run_madd(mp, carry["corrected"],
                                     [p.area for p in projected],
                                     self.sky_config.canvas_shape, OUT_DIR)
        run_mjpeg(mp, mosaic_path, JPEG_PATH)

    def output_paths(self) -> List[str]:
        return [MOSAIC_PATH, STATS_PATH, JPEG_PATH]

    # -- post-analysis ---------------------------------------------------------------

    def mosaic_statistics(self, mp: MountPoint) -> MosaicStats:
        mosaic = read_fits(mp, MOSAIC_PATH)
        return mosaic_stats(mosaic.data)

    def analyze(self, mp: MountPoint) -> Dict[str, object]:
        stats = self.mosaic_statistics(mp)
        return {
            "min": stats.min,
            "max": stats.max,
            "mean": stats.mean,
            "jpeg_bytes": mp.read_file(JPEG_PATH),
        }

    # -- classification ---------------------------------------------------------------

    def classify(self, golden: GoldenRecord, mp: MountPoint) -> Tuple[Outcome, str]:
        """The paper's rule: compare ``m101_mosaic.jpg`` bit-wise; if it
        differs, the "min" statistic of the last step decides SDC vs
        detected; a missing output is a crash."""
        if not mp.exists(JPEG_PATH) or not mp.exists(MOSAIC_PATH):
            return Outcome.CRASH, "mosaic output was not created"
        faulty = mp.read_file(JPEG_PATH)
        if faulty == golden.analysis["jpeg_bytes"]:
            return Outcome.BENIGN, "m101_mosaic.jpg bit-wise identical"
        stats = self.mosaic_statistics(mp)
        golden_min = golden.analysis["min"]
        if np.isfinite(stats.min) and abs(stats.min - golden_min) <= MIN_TOLERANCE:
            return Outcome.SDC, (
                f"image differs but min {stats.min:.4f} within "
                f"{MIN_TOLERANCE} of golden {golden_min:.4f}")
        return Outcome.DETECTED, (
            f"min {stats.min:.4f} deviates from golden {golden_min:.4f}")
