"""Synthetic 2MASS-like sky and raw dithered tiles for the Montage workload.

The paper mosaics ten 2MASS Atlas images of a 0.2-degree field around
m101 in the J band.  We synthesize the decision-relevant equivalent: a
global "truth" canvas containing a bright extended galaxy and a star
field on a sky background near the paper's reported mosaic minimum
(~82.8 DN), then cut ten overlapping, dithered tiles, each with its own
additive background plane (what ``mBgExec`` exists to remove) and pixel
noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.mfits.hdu import ImageHDU
from repro.util.rngstream import RngStream

#: Sky level chosen so the mosaic minimum lands near the paper's 82.82 DN.
SKY_LEVEL = 82.9


@dataclass(frozen=True)
class SkyConfig:
    canvas_shape: Tuple[int, int] = (112, 112)
    tile_shape: Tuple[int, int] = (64, 64)
    n_tiles: int = 10
    n_stars: int = 200
    star_flux: Tuple[float, float] = (5.0, 250.0)   # power-law-ish range
    psf_sigma: float = 1.8
    galaxy_flux: float = 8000.0
    galaxy_radius: float = 10.0
    noise_sigma: float = 0.02
    background_plane_scale: float = 0.8   # per-tile additive plane magnitude


def generate_sky(config: SkyConfig, seed: int) -> np.ndarray:
    """The noiseless truth canvas (float64): sky + stars + galaxy."""
    stream = RngStream(seed, "montage", "sky")
    rng = stream.generator()
    ny, nx = config.canvas_shape
    yy, xx = np.mgrid[0:ny, 0:nx]
    canvas = np.full((ny, nx), SKY_LEVEL, dtype=np.float64)
    # Gentle large-scale sky gradient.
    canvas += 0.05 * (xx / nx) - 0.08 * (yy / ny)

    sig2 = config.psf_sigma ** 2
    for _ in range(config.n_stars):
        cy, cx = rng.uniform(0, ny), rng.uniform(0, nx)
        # Heavy-tailed flux distribution like a real luminosity function.
        flux = config.star_flux[0] * (config.star_flux[1]
                                      / config.star_flux[0]) ** rng.random()
        r2 = (yy - cy) ** 2 + (xx - cx) ** 2
        canvas += flux / (2 * np.pi * sig2) * np.exp(-0.5 * r2 / sig2)

    # The m101-like extended source at the field centre: exponential disk
    # with a mild spiral modulation.
    cy, cx = ny / 2.0, nx / 2.0
    r = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    theta = np.arctan2(yy - cy, xx - cx)
    disk = np.exp(-r / config.galaxy_radius)
    spiral = 1.0 + 0.3 * np.cos(2 * theta - 0.8 * r)
    galaxy = disk * spiral
    canvas += config.galaxy_flux * galaxy / galaxy.sum()
    return canvas


@dataclass
class RawTile:
    """One dithered raw image plus its WCS placement on the canvas."""

    hdu: ImageHDU
    y0: int
    x0: int
    dy: float           # subpixel dither in [0, 1)
    dx: float
    background: Tuple[float, float, float]   # (c0, cy, cx) additive plane

    @property
    def name(self) -> str:
        return str(self.hdu.header.get("TILE", "?"))


def _bilinear_crop(canvas: np.ndarray, y0: int, x0: int, dy: float, dx: float,
                   shape: Tuple[int, int]) -> np.ndarray:
    """Sample ``canvas[y0+i+dy, x0+j+dx]`` bilinearly for a tile crop."""
    h, w = shape
    ys = y0 + np.arange(h)[:, None] + dy
    xs = x0 + np.arange(w)[None, :] + dx
    y_lo = np.floor(ys).astype(int)
    x_lo = np.floor(xs).astype(int)
    fy = ys - y_lo
    fx = xs - x_lo
    y_lo = np.clip(y_lo, 0, canvas.shape[0] - 2)
    x_lo = np.clip(x_lo, 0, canvas.shape[1] - 2)
    c00 = canvas[y_lo, x_lo]
    c01 = canvas[y_lo, x_lo + 1]
    c10 = canvas[y_lo + 1, x_lo]
    c11 = canvas[y_lo + 1, x_lo + 1]
    return ((1 - fy) * (1 - fx) * c00 + (1 - fy) * fx * c01
            + fy * (1 - fx) * c10 + fy * fx * c11)


def make_raw_tiles(config: SkyConfig, seed: int) -> List[RawTile]:
    """Cut dithered raw tiles with per-tile background planes and noise.

    Tile placement covers the canvas in an overlapping grid with random
    jitter so every adjacent pair shares a usable overlap region (what
    ``mDiffExec`` differences).
    """
    canvas = generate_sky(config, seed)
    stream = RngStream(seed, "montage", "tiles")
    rng = stream.generator()
    ny, nx = config.canvas_shape
    th, tw = config.tile_shape

    # Grid positions: 2 rows x ceil(n/2) columns with ~40 % overlap.  The
    # first/last grid lines pin to the canvas edges (with only inward
    # jitter) so the mosaic's coverage-cropped interior is fully covered
    # in every fault-free run regardless of the seed.
    n = config.n_tiles
    cols = (n + 1) // 2
    n_rows = (n + cols - 1) // cols
    y_span = max(ny - th - 2, 0)
    x_span = max(nx - tw - 2, 0)
    row_bases = np.linspace(0, y_span, max(n_rows, 1)).round().astype(int)
    col_bases = np.linspace(0, x_span, max(cols, 1)).round().astype(int)
    tiles: List[RawTile] = []
    yy, xx = np.mgrid[0:th, 0:tw]
    for k in range(n):
        row, col = divmod(k, cols)
        y0 = int(row_bases[row] + rng.integers(0, 3))
        x0 = int(col_bases[col] + rng.integers(0, 3))
        y0 = min(y0, max(ny - th, 0))
        x0 = min(x0, max(nx - tw, 0))
        dy, dx = rng.random(), rng.random()

        pixels = _bilinear_crop(canvas, y0, x0, dy, dx, (th, tw))
        c0 = rng.uniform(-1.0, 1.0) * config.background_plane_scale
        cy = rng.uniform(-1.0, 1.0) * config.background_plane_scale / th
        cx = rng.uniform(-1.0, 1.0) * config.background_plane_scale / tw
        pixels = pixels + c0 + cy * yy + cx * xx
        pixels = pixels + rng.normal(scale=config.noise_sigma, size=pixels.shape)

        hdu = ImageHDU(pixels.astype(np.float32), header={
            "TILE": k,
            "CRPIX1": float(x0),
            "CRPIX2": float(y0),
            "CDELT1": float(dx),
            "CDELT2": float(dy),
        })
        tiles.append(RawTile(hdu=hdu, y0=y0, x0=x0, dy=dy, dx=dx,
                             background=(c0, cy, cx)))
    return tiles
