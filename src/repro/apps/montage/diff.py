"""Stage 2 -- ``mDiffExec``: difference images for overlapping pairs.

For every pair of projected images with a usable overlap, subtract them
over the overlap region and write the difference image.  As the paper
notes, these differences feed *only* the plane-fitting step -- their
pixels never reach the mosaic directly, which is why this stage shows
the lowest SDC rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FormatError
from repro.fusefs.mount import MountPoint
from repro.mfits.hdu import ImageHDU
from repro.mfits.io import read_fits, write_fits

MIN_OVERLAP_PIXELS = 64


@dataclass(frozen=True)
class Placement:
    """A projected image's bounding box on the mosaic grid."""

    y0: int
    x0: int
    shape: Tuple[int, int]

    @property
    def y1(self) -> int:
        return self.y0 + self.shape[0]

    @property
    def x1(self) -> int:
        return self.x0 + self.shape[1]


def placement_of(hdu: ImageHDU) -> Placement:
    return Placement(y0=int(float(hdu.header["CRPIX2"])),
                     x0=int(float(hdu.header["CRPIX1"])),
                     shape=hdu.data.shape)


def overlap_box(a: Placement, b: Placement) -> Tuple[int, int, int, int]:
    """Intersection (y0, y1, x0, x1) in mosaic coordinates (may be empty)."""
    return (max(a.y0, b.y0), min(a.y1, b.y1),
            max(a.x0, b.x0), min(a.x1, b.x1))


@dataclass(frozen=True)
class DiffRecord:
    tile_a: int
    tile_b: int
    path: str


def run_mdiff(mp: MountPoint, image_paths: List[str], out_dir: str) -> List[DiffRecord]:
    """Difference every overlapping pair of projected images."""
    mp.makedirs(out_dir)
    hdus: Dict[int, ImageHDU] = {}
    placements: Dict[int, Placement] = {}
    for path in image_paths:
        # Executor semantics: skip unreadable projected images.
        try:
            hdu = read_fits(mp, path)
            tile = int(hdu.header["TILE"])
            placement = placement_of(hdu)
        except (FormatError, KeyError, TypeError, ValueError):
            continue
        hdus[tile] = hdu
        placements[tile] = placement

    records: List[DiffRecord] = []
    tiles = sorted(hdus)
    for i, ta in enumerate(tiles):
        for tb in tiles[i + 1:]:
            pa, pb = placements[ta], placements[tb]
            y0, y1, x0, x1 = overlap_box(pa, pb)
            if y1 - y0 <= 0 or x1 - x0 <= 0:
                continue
            if (y1 - y0) * (x1 - x0) < MIN_OVERLAP_PIXELS:
                continue
            da = hdus[ta].data[y0 - pa.y0 : y1 - pa.y0, x0 - pa.x0 : x1 - pa.x0]
            db = hdus[tb].data[y0 - pb.y0 : y1 - pb.y0, x0 - pb.x0 : x1 - pb.x0]
            diff = (da.astype(np.float64) - db.astype(np.float64)).astype(np.float32)
            path = f"{out_dir}/diff_{ta}_{tb}.fits"
            write_fits(mp, path, ImageHDU(diff, header={
                "TILEA": ta, "TILEB": tb,
                "CRPIX1": float(x0), "CRPIX2": float(y0),
            }))
            records.append(DiffRecord(tile_a=ta, tile_b=tb, path=path))
    return records
