"""Chunked storage: the v1 B-tree (node type 1) indexing raw-data chunks.

Implements the subset of HDF5's chunked layout the paper's discussion
needs: fixed-shape chunks, optionally passed through the deflate filter,
indexed by a single leaf B-tree node whose entries carry the stored
(compressed) size, the filter mask, the chunk's logical offset, and the
chunk's file address.

This exists to quantify the paper's Sec. V-A insight: compressing the
science data shrinks the raw-data region, so metadata becomes a much
larger *fraction* of the file -- and metadata faults a correspondingly
larger share of the fault surface -- while faults inside a compressed
chunk tend to break the decompressor (detectable) instead of silently
changing values.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import FormatError
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass

CHUNK_BTREE_NODE_TYPE = 1

#: Filter-mask bit marking a deflate-compressed chunk.
FILTER_DEFLATE = 0x1

#: Entries one chunk-index node can hold (fixed-capacity, like the group
#: B-tree; typical mini workloads use a fraction of it -> benign bytes).
CHUNK_BTREE_CAPACITY = 64


@dataclass(frozen=True)
class ChunkRecord:
    """One indexed chunk."""

    logical_offset: Tuple[int, ...]   # element coordinates of chunk origin
    address: int                      # file offset of the stored bytes
    stored_size: int                  # bytes on disk (post-filter)
    filter_mask: int = 0

    @property
    def compressed(self) -> bool:
        return bool(self.filter_mask & FILTER_DEFLATE)


def chunk_btree_size(rank: int, capacity: int = CHUNK_BTREE_CAPACITY) -> int:
    """Encoded size of one chunk-index node for *rank*-dimensional data."""
    header = 24
    entry = 4 + 4 + 8 * rank + 8   # stored size, filter mask, offsets, address
    return header + capacity * entry


def encode_chunk_btree(writer: FieldWriter, records: Sequence[ChunkRecord],
                       rank: int, capacity: int = CHUNK_BTREE_CAPACITY) -> None:
    if len(records) > capacity:
        raise ValueError(
            f"chunk B-tree overflow: {len(records)} chunks, capacity {capacity}")
    writer.put_bytes(C.BTREE_SIGNATURE, "Chunk B-tree signature",
                     FieldClass.STRUCTURAL)
    writer.put_uint(CHUNK_BTREE_NODE_TYPE, 1, "Chunk B-tree Node Type",
                    FieldClass.STRUCTURAL)
    writer.put_uint(0, 1, "Chunk B-tree Node Level", FieldClass.STRUCTURAL)
    writer.put_uint(len(records), 2, "Chunk B-tree Entries Used",
                    FieldClass.STRUCTURAL)
    writer.put_uint(C.UNDEFINED_ADDRESS, 8, "Chunk B-tree Left Sibling",
                    FieldClass.RESERVED)
    writer.put_uint(C.UNDEFINED_ADDRESS, 8, "Chunk B-tree Right Sibling",
                    FieldClass.RESERVED)
    for i, record in enumerate(records):
        writer.put_uint(record.stored_size, 4, f"Chunk {i} Stored Size",
                        FieldClass.STRUCTURAL)
        writer.put_uint(record.filter_mask, 4, f"Chunk {i} Filter Mask",
                        FieldClass.NUMERIC)
        for axis, offset in enumerate(record.logical_offset):
            writer.put_uint(offset, 8, f"Chunk {i} Offset[{axis}]",
                            FieldClass.NUMERIC)
        writer.put_uint(record.address, 8, f"Chunk {i} Address",
                        FieldClass.NUMERIC)
    unused = (capacity - len(records)) * (4 + 4 + 8 * rank + 8)
    if unused:
        writer.put_bytes(b"\x00" * unused, "chunk B-tree unused capacity",
                         FieldClass.RESERVED)


def decode_chunk_btree(buf: bytes, address: int, rank: int,
                       capacity: int = CHUNK_BTREE_CAPACITY) -> List[ChunkRecord]:
    reader = FieldReader(buf, address)
    reader.expect(C.BTREE_SIGNATURE, "chunk B-tree signature")
    reader.expect_uint(CHUNK_BTREE_NODE_TYPE, 1, "chunk B-tree node type")
    level = reader.take_uint(1, "chunk B-tree node level")
    if level != 0:
        raise FormatError(f"unsupported chunk B-tree level {level}")
    used = reader.take_uint(2, "chunk B-tree entries used")
    if used > capacity:
        raise FormatError(
            f"chunk B-tree entries used {used} exceeds capacity {capacity}")
    reader.skip(8, "left sibling")
    reader.skip(8, "right sibling")
    records: List[ChunkRecord] = []
    for _ in range(used):
        stored_size = reader.take_uint(4, "chunk stored size")
        filter_mask = reader.take_uint(4, "chunk filter mask")
        offsets = tuple(reader.take_uint(8, "chunk offset") for _ in range(rank))
        address_field = reader.take_uint(8, "chunk address")
        records.append(ChunkRecord(logical_offset=offsets, address=address_field,
                                   stored_size=stored_size,
                                   filter_mask=filter_mask))
    return records


def split_into_chunks(array: np.ndarray,
                      chunk_shape: Tuple[int, ...]) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
    """Yield (logical offset, chunk view) tiles covering *array*."""
    if len(chunk_shape) != array.ndim:
        raise ValueError("chunk rank must match array rank")
    if any(c < 1 for c in chunk_shape):
        raise ValueError("chunk dimensions must be positive")
    grids = [range(0, dim, chunk) for dim, chunk in zip(array.shape, chunk_shape)]

    def recurse(axis: int, origin: Tuple[int, ...]):
        if axis == array.ndim:
            slices = tuple(slice(o, min(o + c, d))
                           for o, c, d in zip(origin, chunk_shape, array.shape))
            yield origin, array[slices]
            return
        for start in grids[axis]:
            yield from recurse(axis + 1, origin + (start,))

    return list(recurse(0, ()))


def compress_chunk(raw: bytes) -> bytes:
    return zlib.compress(raw, level=6)


def decompress_chunk(stored: bytes, expected_size: int) -> bytes:
    """Inflate a chunk; corruption raises :class:`FormatError` (the
    deflate filter's error path is a *detectable* failure)."""
    try:
        raw = zlib.decompress(stored)
    except zlib.error as exc:
        raise FormatError(f"chunk decompression failed: {exc}") from None
    if len(raw) != expected_size:
        raise FormatError(
            f"chunk inflated to {len(raw)} bytes, expected {expected_size}")
    return raw
