"""v1 B-tree group nodes (``TREE``) and symbol-table nodes (``SNOD``).

The paper measures that B-tree nodes account for ~72 % of the Nyx
metadata and are only ~10 % full, making their unused capacity the single
largest source of benign metadata bytes.  We encode a full-capacity node
(2K children, 2K+1 keys with K = :data:`repro.mhdf5.constants.BTREE_K`)
with only the leading entries used, reproducing that proportion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import FormatError
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass

BTREE_HEADER_SIZE = 24
SNOD_HEADER_SIZE = 8
SNOD_ENTRY_SIZE = 40


def btree_node_size(k: int = C.BTREE_K) -> int:
    """Encoded size of one group node: header + 2K children + (2K+1) keys."""
    return BTREE_HEADER_SIZE + 8 * (2 * k) + 8 * (2 * k + 1)


def snod_size(k: int = C.SNOD_K) -> int:
    """Encoded size of one symbol-table node: header + 2K entries."""
    return SNOD_HEADER_SIZE + SNOD_ENTRY_SIZE * (2 * k)


@dataclass(frozen=True)
class BtreeEntry:
    """One used entry of a leaf group node: separator key + child pointer."""

    key_heap_offset: int     # heap offset of the smallest name under the child
    child_address: int       # address of the SNOD holding the links


def encode_btree_node(writer: FieldWriter, entries: List[BtreeEntry],
                      k: int = C.BTREE_K) -> None:
    if len(entries) > 2 * k:
        raise ValueError(f"B-tree node overflow: {len(entries)} entries, capacity {2*k}")
    writer.put_bytes(C.BTREE_SIGNATURE, "B-tree signature", FieldClass.STRUCTURAL)
    writer.put_uint(C.BTREE_GROUP_NODE_TYPE, 1, "B-tree Node Type", FieldClass.STRUCTURAL)
    writer.put_uint(0, 1, "B-tree Node Level", FieldClass.STRUCTURAL)
    writer.put_uint(len(entries), 2, "B-tree Entries Used", FieldClass.STRUCTURAL)
    writer.put_uint(C.UNDEFINED_ADDRESS, 8, "B-tree Left Sibling Address",
                    FieldClass.RESERVED)
    writer.put_uint(C.UNDEFINED_ADDRESS, 8, "B-tree Right Sibling Address",
                    FieldClass.RESERVED)
    # key[0], child[0], key[1], child[1], ..., key[n]
    for i, entry in enumerate(entries):
        writer.put_uint(entry.key_heap_offset, 8, f"B-tree Key {i}", FieldClass.STRUCTURAL)
        writer.put_uint(entry.child_address, 8, f"B-tree Child {i} Address",
                        FieldClass.STRUCTURAL)
    writer.put_uint(0, 8, f"B-tree Key {len(entries)}", FieldClass.TOLERANT)
    unused = 8 * (2 * k - len(entries)) + 8 * (2 * k - len(entries))
    if unused:
        writer.put_bytes(b"\x00" * unused, "B-tree unused capacity", FieldClass.RESERVED)


@dataclass(frozen=True)
class BtreeNode:
    level: int
    entries: Tuple[BtreeEntry, ...]


def decode_btree_node(buf: bytes, address: int, k: int = C.BTREE_K) -> BtreeNode:
    reader = FieldReader(buf, address)
    reader.expect(C.BTREE_SIGNATURE, "B-tree signature")
    reader.expect_uint(C.BTREE_GROUP_NODE_TYPE, 1, "B-tree node type")
    level = reader.take_uint(1, "B-tree node level")
    if level != 0:
        raise FormatError(f"unsupported B-tree node level {level}")
    used = reader.take_uint(2, "B-tree entries used")
    if used > 2 * k:
        raise FormatError(f"B-tree entries used {used} exceeds capacity {2*k}")
    reader.skip(8, "left sibling")
    reader.skip(8, "right sibling")
    entries = []
    for _ in range(used):
        key = reader.take_uint(8, "B-tree key")
        child = reader.take_uint(8, "B-tree child address")
        entries.append(BtreeEntry(key_heap_offset=key, child_address=child))
    return BtreeNode(level=level, entries=tuple(entries))


@dataclass(frozen=True)
class SymbolEntry:
    """One used symbol-table entry linking a name to an object header."""

    name_heap_offset: int
    header_address: int


def encode_snod(writer: FieldWriter, entries: List[SymbolEntry],
                k: int = C.SNOD_K) -> None:
    if len(entries) > 2 * k:
        raise ValueError(f"SNOD overflow: {len(entries)} entries, capacity {2*k}")
    writer.put_bytes(C.SNOD_SIGNATURE, "Symbol Table Node signature",
                     FieldClass.STRUCTURAL)
    writer.put_uint(C.SNOD_VERSION, 1, "Version # of Symbol Table Node",
                    FieldClass.STRUCTURAL)
    writer.put_reserved(1, "SNOD reserved")
    writer.put_uint(len(entries), 2, "Number of Symbols", FieldClass.STRUCTURAL)
    for i, entry in enumerate(entries):
        writer.put_uint(entry.name_heap_offset, 8, f"Symbol {i} Link Name Offset",
                        FieldClass.STRUCTURAL)
        writer.put_uint(entry.header_address, 8, f"Symbol {i} Object Header Address",
                        FieldClass.STRUCTURAL)
        writer.put_uint(0, 4, f"Symbol {i} Cache Type", FieldClass.TOLERANT)
        writer.put_reserved(4, f"symbol {i} reserved")
        writer.put_bytes(b"\x00" * 16, f"Symbol {i} Scratch Pad", FieldClass.RESERVED)
    unused = SNOD_ENTRY_SIZE * (2 * k - len(entries))
    if unused:
        writer.put_bytes(b"\x00" * unused, "SNOD unused capacity", FieldClass.RESERVED)


@dataclass(frozen=True)
class SymbolTableNode:
    entries: Tuple[SymbolEntry, ...]


def decode_snod(buf: bytes, address: int, k: int = C.SNOD_K) -> SymbolTableNode:
    reader = FieldReader(buf, address)
    reader.expect(C.SNOD_SIGNATURE, "symbol table node signature")
    reader.expect_uint(C.SNOD_VERSION, 1, "symbol table node version")
    reader.skip(1, "SNOD reserved")
    nsymbols = reader.take_uint(2, "number of symbols")
    if nsymbols > 2 * k:
        raise FormatError(f"symbol count {nsymbols} exceeds node capacity {2*k}")
    entries = []
    for _ in range(nsymbols):
        name_off = reader.take_uint(8, "link name offset")
        header_addr = reader.take_uint(8, "object header address")
        reader.skip(4, "cache type")
        reader.skip(4, "symbol reserved")
        reader.skip(16, "scratch pad")
        entries.append(SymbolEntry(name_heap_offset=name_off, header_address=header_addr))
    return SymbolTableNode(entries=tuple(entries))
