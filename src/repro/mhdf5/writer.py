"""mini-HDF5 file writer.

Layout and write ordering reproduce the library behaviour the paper's
metadata injector relies on (Sec. IV-D):

* The packed metadata region occupies the head of the file; raw data
  follows immediately, so the first dataset's Address of Raw Data equals
  the metadata size (the invariant behind the paper's ARD correction).
* The *temporal* write order is raw data first (block-sized ``pwrite``s at
  their final addresses), then one packed **metadata blob write** -- the
  penultimate write of the sequence -- then a small superblock
  consistency-flag update as the final write (the "unlock").

The writer also emits a complete :class:`repro.mhdf5.fieldmap.FieldMap`
annotating every metadata byte with its specification field, used by the
metadata campaign to report per-field outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.fusefs.mount import MountPoint
from repro.mhdf5 import constants as C
from repro.mhdf5.btree import (
    BtreeEntry,
    SymbolEntry,
    btree_node_size,
    encode_btree_node,
    encode_snod,
    snod_size,
)
from repro.mhdf5.chunks import (
    FILTER_DEFLATE,
    ChunkRecord,
    chunk_btree_size,
    compress_chunk,
    encode_chunk_btree,
    split_into_chunks,
)
from repro.mhdf5.codec import FieldWriter
from repro.mhdf5.dataspace import DataspaceMessage
from repro.mhdf5.datatype import DatatypeMessage, ieee_f32le, ieee_f64le
from repro.mhdf5.fieldmap import FieldClass, FieldMap, FieldSpan
from repro.mhdf5.heap import HEAP_HEADER_SIZE, LocalHeap
from repro.mhdf5.layout import ChunkedLayoutMessage, ContiguousLayoutMessage
from repro.mhdf5.objheader import MESSAGE_HEADER_SIZE, OBJECT_HEADER_PREFIX_SIZE, encode_object_header
from repro.mhdf5.superblock import (
    CONSISTENCY_FLAGS_OFFSET,
    CONSISTENCY_FLAGS_SIZE,
    FLAG_CLEAN,
    SUPERBLOCK_SIZE,
    Superblock,
)

#: Deterministic modification timestamp (files are bit-reproducible).
FIXED_MTIME = 1_600_000_000


def _align8(x: int) -> int:
    return (x + 7) & ~7


def _dtype_for(array: np.ndarray) -> DatatypeMessage:
    if array.dtype == np.float32:
        return ieee_f32le()
    if array.dtype == np.float64:
        return ieee_f64le()
    raise TypeError(f"unsupported dtype {array.dtype}; use float32 or float64")


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset to write, with optional chunking/compression.

    ``chunks`` selects the chunked layout (tile shape, rank must match
    the array); ``compression='deflate'`` additionally runs every chunk
    through the deflate filter -- the paper's Sec. V-A scenario where
    compressed science data inflates the metadata's share of the file.
    """

    name: str
    array: np.ndarray
    chunks: Optional[Tuple[int, ...]] = None
    compression: Optional[str] = None

    def __post_init__(self) -> None:
        if self.compression not in (None, "deflate"):
            raise ValueError(f"unsupported compression {self.compression!r}")
        if self.compression and self.chunks is None:
            raise ValueError("compression requires a chunked layout")
        if self.chunks is not None and len(self.chunks) != np.ndim(self.array):
            raise ValueError("chunk rank must match array rank")


def _normalize_specs(datasets) -> List[DatasetSpec]:
    specs: List[DatasetSpec] = []
    for entry in datasets:
        if isinstance(entry, DatasetSpec):
            specs.append(entry)
        else:
            name, array = entry
            specs.append(DatasetSpec(name=name, array=np.asarray(array)))
    return specs


@dataclass
class DatasetPlan:
    """Placement of one dataset: header inside metadata, data after it."""

    name: str
    shape: Tuple[int, ...]
    dt: DatatypeMessage
    header_address: int = 0
    header_size: int = 0
    data_address: int = 0
    data_size: int = 0
    # Chunked-layout placement (empty for contiguous datasets).
    chunk_shape: Optional[Tuple[int, ...]] = None
    compression: Optional[str] = None
    chunk_btree_address: int = 0
    chunk_records: List[ChunkRecord] = field(default_factory=list)
    chunk_payloads: List[bytes] = field(default_factory=list)

    @property
    def is_chunked(self) -> bool:
        return self.chunk_shape is not None


@dataclass
class LayoutPlan:
    """Absolute addresses of every structure in the file."""

    superblock_address: int = 0
    root_header_address: int = 0
    heap_address: int = 0
    heap_data_address: int = 0
    btree_address: int = 0
    snod_address: int = 0
    datasets: List[DatasetPlan] = field(default_factory=list)
    metadata_size: int = 0
    file_size: int = 0


@dataclass
class WriteResult:
    """Everything a campaign needs to know about a written file."""

    plan: LayoutPlan
    fieldmap: FieldMap
    metadata_blob: bytes
    #: Dynamic ``ffis_write`` count used to create the file.  The metadata
    #: blob is write number ``n_writes - 2`` (penultimate).
    n_writes: int


def _layout_body_size(spec: DatasetSpec) -> int:
    if spec.chunks is None:
        return ContiguousLayoutMessage.ENCODED_SIZE
    return ChunkedLayoutMessage(0, tuple(spec.chunks), 0).encoded_size()


def _dataset_header_size(rank: int, layout_body: int) -> int:
    """Size of a dataset object header with our fixed message set."""
    dataspace_body = 8 + 8 * rank
    bodies = (
        dataspace_body,
        DatatypeMessage.ENCODED_SIZE,
        8,                          # fill value
        layout_body,
        8,                          # mtime
        C.DATASET_HEADER_NIL_PAD,   # NIL reserved space
    )
    return OBJECT_HEADER_PREFIX_SIZE + sum(MESSAGE_HEADER_SIZE + b for b in bodies)


ROOT_HEADER_SIZE = OBJECT_HEADER_PREFIX_SIZE + MESSAGE_HEADER_SIZE + 16


class Hdf5Writer:
    """Builds the metadata blob + field map for a set of datasets."""

    def __init__(self, btree_k: int = C.BTREE_K, snod_k: int = C.SNOD_K,
                 heap_data_size: int = C.HEAP_DATA_SIZE) -> None:
        self.btree_k = btree_k
        self.snod_k = snod_k
        self.heap_data_size = heap_data_size

    # -- planning -------------------------------------------------------------

    def plan(self, datasets) -> LayoutPlan:
        specs = _normalize_specs(datasets)
        if not specs:
            raise ValueError("at least one dataset is required")
        if len(specs) > 2 * self.snod_k:
            raise ValueError(
                f"too many datasets for one symbol node (max {2*self.snod_k})")
        plan = LayoutPlan()
        plan.superblock_address = 0
        plan.root_header_address = _align8(SUPERBLOCK_SIZE)
        plan.heap_address = _align8(plan.root_header_address + ROOT_HEADER_SIZE)
        plan.heap_data_address = plan.heap_address + HEAP_HEADER_SIZE
        plan.btree_address = _align8(plan.heap_data_address + self.heap_data_size)
        plan.snod_address = _align8(plan.btree_address + btree_node_size(self.btree_k))
        cursor = _align8(plan.snod_address + snod_size(self.snod_k))
        for spec in specs:
            array = np.asarray(spec.array)
            dt = _dtype_for(array)
            dp = DatasetPlan(name=spec.name, shape=tuple(array.shape), dt=dt,
                             chunk_shape=tuple(spec.chunks) if spec.chunks else None,
                             compression=spec.compression)
            dp.header_address = cursor
            dp.header_size = _dataset_header_size(array.ndim,
                                                  _layout_body_size(spec))
            cursor = _align8(cursor + dp.header_size)
            if dp.is_chunked:
                # The chunk index lives in the metadata region too.
                dp.chunk_btree_address = cursor
                cursor = _align8(cursor + chunk_btree_size(array.ndim))
            plan.datasets.append(dp)
        plan.metadata_size = cursor

        data_cursor = plan.metadata_size
        for dp, spec in zip(plan.datasets, specs):
            array = np.ascontiguousarray(spec.array)
            if not dp.is_chunked:
                dp.data_address = data_cursor
                dp.data_size = array.size * dp.dt.size
                data_cursor = _align8(data_cursor + dp.data_size)
                continue
            # Chunked: materialize (and optionally compress) every tile
            # now so addresses and stored sizes are part of the plan.
            for offset, tile in split_into_chunks(array, dp.chunk_shape):
                raw = np.ascontiguousarray(tile).tobytes()
                if spec.compression == "deflate":
                    stored = compress_chunk(raw)
                    mask = FILTER_DEFLATE
                else:
                    stored = raw
                    mask = 0
                dp.chunk_records.append(ChunkRecord(
                    logical_offset=offset, address=data_cursor,
                    stored_size=len(stored), filter_mask=mask))
                dp.chunk_payloads.append(stored)
                data_cursor = _align8(data_cursor + len(stored))
            dp.data_size = sum(r.stored_size for r in dp.chunk_records)
        plan.file_size = data_cursor
        return plan

    # -- encoding ---------------------------------------------------------------

    def encode_metadata(self, plan: LayoutPlan) -> Tuple[bytes, FieldMap]:
        """Encode the full metadata blob for *plan* with its field map."""
        heap = LocalHeap(self.heap_data_size)
        name_offsets = {dp.name: heap.add_name(dp.name) for dp in plan.datasets}

        blob = bytearray(plan.metadata_size)
        spans: List[FieldSpan] = []

        def emit(writer: FieldWriter) -> None:
            data = writer.getvalue()
            blob[writer.base_offset : writer.base_offset + len(data)] = data
            spans.extend(writer.spans)

        # Superblock.
        w = FieldWriter(plan.superblock_address, "superblock")
        Superblock(end_of_file_address=plan.file_size,
                   root_header_address=plan.root_header_address,
                   consistency_flags=0).encode(w)
        emit(w)

        # Root group object header: a single symbol-table message.
        w = FieldWriter(plan.root_header_address, "rootGroup.objHeader")

        def symtab_body(bw: FieldWriter) -> None:
            bw.put_uint(plan.btree_address, 8, "Symbol Table B-tree Address",
                        FieldClass.STRUCTURAL)
            bw.put_uint(plan.heap_address, 8, "Symbol Table Heap Address",
                        FieldClass.STRUCTURAL)

        encode_object_header(w, [(C.MSG_SYMBOL_TABLE, "symbolTable", symtab_body)])
        emit(w)

        # Local heap (header + data segment).
        w = FieldWriter(plan.heap_address, "localHeap")
        heap.encode(w, data_segment_address=plan.heap_data_address)
        emit(w)

        # B-tree: one leaf entry pointing at the SNOD.
        w = FieldWriter(plan.btree_address, "bTree")
        last_name = plan.datasets[-1].name
        encode_btree_node(
            w,
            [BtreeEntry(key_heap_offset=name_offsets[last_name],
                        child_address=plan.snod_address)],
            k=self.btree_k,
        )
        emit(w)

        # Symbol table node: one entry per dataset, name-sorted as in HDF5.
        w = FieldWriter(plan.snod_address, "symbolTableNode")
        ordered = sorted(plan.datasets, key=lambda dp: dp.name)
        encode_snod(
            w,
            [SymbolEntry(name_heap_offset=name_offsets[dp.name],
                         header_address=dp.header_address) for dp in ordered],
            k=self.snod_k,
        )
        emit(w)

        # Dataset object headers (+ chunk index nodes for chunked layouts).
        for dp in plan.datasets:
            w = FieldWriter(dp.header_address, f"dataset[{dp.name}].objHeader")
            dataspace = DataspaceMessage(dims=dp.shape)
            if dp.is_chunked:
                layout = ChunkedLayoutMessage(
                    btree_address=dp.chunk_btree_address,
                    chunk_shape=dp.chunk_shape,
                    element_size=dp.dt.size)
            else:
                layout = ContiguousLayoutMessage(data_address=dp.data_address,
                                                 size=dp.data_size)

            def fill_body(bw: FieldWriter) -> None:
                bw.put_uint(1, 1, "Fill Value Version", FieldClass.STRUCTURAL)
                bw.put_uint(1, 1, "Space Allocation Time", FieldClass.TOLERANT)
                bw.put_uint(0, 1, "Fill Value Write Time", FieldClass.TOLERANT)
                bw.put_uint(0, 1, "Fill Value Defined", FieldClass.TOLERANT)
                bw.put_uint(0, 4, "Fill Value Size", FieldClass.TOLERANT)

            def mtime_body(bw: FieldWriter) -> None:
                bw.put_uint(1, 1, "Mtime Version", FieldClass.STRUCTURAL)
                bw.put_reserved(3, "mtime reserved")
                bw.put_uint(FIXED_MTIME, 4, "Modification Time", FieldClass.TOLERANT)

            def nil_body(bw: FieldWriter) -> None:
                bw.put_bytes(b"\x00" * C.DATASET_HEADER_NIL_PAD,
                             "NIL reserved space", FieldClass.RESERVED)

            encode_object_header(w, [
                (C.MSG_DATASPACE, "dataSpace", dataspace.encode),
                (C.MSG_DATATYPE, "dataType", lambda bw, dt=dp.dt: dt.encode(bw)),
                (C.MSG_FILL_VALUE, "fillValue", fill_body),
                (C.MSG_LAYOUT, "layout", layout.encode),
                (C.MSG_MTIME, "modificationTime", mtime_body),
                (C.MSG_NIL, "nil", nil_body),
            ])
            emit(w)

            if dp.is_chunked:
                w = FieldWriter(dp.chunk_btree_address,
                                f"dataset[{dp.name}].chunkBTree")
                encode_chunk_btree(w, dp.chunk_records, rank=len(dp.shape))
                emit(w)

        # Annotate inter-section alignment gaps so every byte is mapped.
        covered = sorted((s.start, s.end) for s in spans)
        gaps: List[FieldSpan] = []
        cursor = 0
        for start, end in covered:
            if start > cursor:
                gaps.append(FieldSpan(cursor, start, "alignment space between fields",
                                      FieldClass.RESERVED, "padding"))
            cursor = max(cursor, end)
        if cursor < plan.metadata_size:
            gaps.append(FieldSpan(cursor, plan.metadata_size,
                                  "alignment space between fields",
                                  FieldClass.RESERVED, "padding"))
        return bytes(blob), FieldMap(spans + gaps)


@dataclass(frozen=True)
class PendingWrite:
    """A mini-HDF5 file with its raw data landed but metadata pending.

    The seam between :func:`begin_write` and :func:`finish_write`:
    everything the metadata half needs, as plain picklable data (the
    open handle travels as its ``fd`` number and is re-resolved against
    the live file system, so the seam survives file-system snapshot/
    restore -- it is a prefix-replay step boundary for applications
    that split their checkpoint step here).
    """

    path: str
    fd: int
    plan: LayoutPlan
    fieldmap: FieldMap
    metadata_blob: bytes
    n_data_writes: int


def begin_write(mp: MountPoint, path: str, datasets,
                block_size: int = C.DATA_BLOCK_SIZE,
                writer: Optional[Hdf5Writer] = None) -> PendingWrite:
    """The data half of :func:`write_file`: plan, encode, open, and land
    every raw-data write, leaving the file open and the metadata
    unwritten (the on-disk state a crash between the halves exposes)."""
    specs = _normalize_specs(datasets)
    hw = writer if writer is not None else Hdf5Writer()
    plan = hw.plan(specs)
    blob, fieldmap = hw.encode_metadata(plan)

    n_writes = 0
    f = mp.open(path, "w")
    try:
        for dp, spec in zip(plan.datasets, specs):
            if dp.is_chunked:
                for record, payload in zip(dp.chunk_records, dp.chunk_payloads):
                    f.pwrite(payload, record.address)
                    n_writes += 1
                continue
            raw = np.ascontiguousarray(spec.array).tobytes()
            for start in range(0, len(raw), block_size):
                chunk = raw[start : start + block_size]
                f.pwrite(chunk, dp.data_address + start)
                n_writes += 1
    except BaseException:
        f.close()
        raise
    return PendingWrite(path=path, fd=f.fd, plan=plan, fieldmap=fieldmap,
                        metadata_blob=blob, n_data_writes=n_writes)


def finish_write(mp: MountPoint, pending: PendingWrite) -> WriteResult:
    """The metadata half of :func:`write_file`: the packed metadata blob
    (penultimate write), the consistency-flag unlock (final write), and
    the release, against the handle :func:`begin_write` left open."""
    f = mp.fs.open_handle(pending.fd)
    if f is None:
        raise ValueError(
            f"no open handle fd={pending.fd} for {pending.path!r}; "
            "finish_write must run against the file system state "
            "begin_write produced")
    try:
        f.pwrite(pending.metadata_blob, 0)
        flags = FLAG_CLEAN.to_bytes(4, "little") + \
            b"\x00" * (CONSISTENCY_FLAGS_SIZE - 4)
        f.pwrite(flags, CONSISTENCY_FLAGS_OFFSET)
    finally:
        f.close()
    return WriteResult(plan=pending.plan, fieldmap=pending.fieldmap,
                       metadata_blob=pending.metadata_blob,
                       n_writes=pending.n_data_writes + 2)


def write_file(mp: MountPoint, path: str, datasets,
               block_size: int = C.DATA_BLOCK_SIZE,
               writer: Optional[Hdf5Writer] = None) -> WriteResult:
    """Create a mini-HDF5 file at *path* on the mounted file system.

    *datasets* is a sequence of ``(name, array)`` pairs or
    :class:`DatasetSpec` objects (for chunked/compressed layouts).  Raw
    data lands first (contiguous data in *block_size* ``ffis_write``s,
    each stored chunk in one write), then the packed metadata blob
    (penultimate write), then the superblock consistency flags (final
    write).  Implemented as :func:`begin_write` + :func:`finish_write`;
    the primitive sequence is identical to the historical monolith.
    """
    return finish_write(mp, begin_write(mp, path, datasets,
                                        block_size=block_size, writer=writer))
