"""Local heap: the byte arena holding link names of a group."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import FormatError
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass

HEAP_HEADER_SIZE = 32


@dataclass
class LocalHeap:
    """A local heap with a fixed-capacity data segment.

    Names are stored NUL-terminated at 8-byte-aligned offsets; symbol
    table entries reference them by offset.
    """

    data_size: int = C.HEAP_DATA_SIZE

    def __init__(self, data_size: int = C.HEAP_DATA_SIZE) -> None:
        self.data_size = data_size
        self._data = bytearray()
        self._offsets: Dict[str, int] = {}

    def add_name(self, name: str) -> int:
        """Intern *name*, returning its heap offset."""
        if name in self._offsets:
            return self._offsets[name]
        if "\x00" in name:
            raise ValueError("link names cannot contain NUL")
        # Align to 8 bytes like the library's heap allocator.
        while len(self._data) % 8:
            self._data.append(0)
        offset = len(self._data)
        encoded = name.encode("utf-8") + b"\x00"
        if offset + len(encoded) > self.data_size:
            raise ValueError(
                f"heap data segment ({self.data_size} bytes) cannot hold {name!r}")
        self._data.extend(encoded)
        self._offsets[name] = offset
        return offset

    @property
    def names(self) -> List[str]:
        return list(self._offsets)

    def encode(self, writer: FieldWriter, data_segment_address: int) -> None:
        """Encode header + data segment; the segment directly follows."""
        writer.put_bytes(C.HEAP_SIGNATURE, "Local Heap Signature", FieldClass.STRUCTURAL)
        writer.put_uint(C.HEAP_VERSION, 1, "Version # of Local Heap", FieldClass.STRUCTURAL)
        writer.put_reserved(3, "heap reserved")
        writer.put_uint(self.data_size, 8, "Heap Data Segment Size", FieldClass.TOLERANT)
        writer.put_uint(C.UNDEFINED_ADDRESS, 8, "Heap Free List Head Offset",
                        FieldClass.RESERVED)
        writer.put_uint(data_segment_address, 8, "Heap Data Segment Address",
                        FieldClass.STRUCTURAL)
        segment = bytes(self._data) + b"\x00" * (self.data_size - len(self._data))
        used = len(self._data)
        if used:
            writer.put_bytes(segment[:used], "heap data (link names)", FieldClass.NUMERIC)
        if used < self.data_size:
            writer.put_bytes(segment[used:], "heap unused capacity", FieldClass.RESERVED)


@dataclass(frozen=True)
class HeapInfo:
    """Decoded heap header plus the raw data segment."""

    data_size: int
    data_segment_address: int
    data: bytes

    def name_at(self, offset: int) -> str:
        """Read the NUL-terminated name at *offset* of the data segment."""
        if offset < 0 or offset >= len(self.data):
            raise FormatError(f"heap name offset {offset} outside data segment")
        end = self.data.find(b"\x00", offset)
        if end < 0:
            raise FormatError("unterminated name in heap data segment")
        try:
            return self.data[offset:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FormatError(f"undecodable name in heap: {exc}") from None


def decode_heap(buf: bytes, address: int) -> HeapInfo:
    reader = FieldReader(buf, address)
    reader.expect(C.HEAP_SIGNATURE, "local heap signature")
    reader.expect_uint(C.HEAP_VERSION, 1, "local heap version")
    reader.skip(3, "heap reserved")
    data_size = reader.take_uint(8, "heap data segment size")
    if data_size > 1 << 20:
        raise FormatError(f"unreasonable heap data segment size {data_size}")
    reader.skip(8, "heap free list head")
    seg_addr = reader.take_uint(8, "heap data segment address")
    if seg_addr + data_size > len(buf):
        raise FormatError("heap data segment runs past end of file")
    return HeapInfo(data_size=data_size, data_segment_address=seg_addr,
                    data=buf[seg_addr : seg_addr + data_size])
