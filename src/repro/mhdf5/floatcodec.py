"""Generic floating-point decode/encode driven by the datatype message.

The real HDF5 library does not hard-code IEEE 754: its datatype-conversion
path assembles each value from the exponent/mantissa geometry recorded in
the datatype message.  That genericity is exactly what turns corrupted
datatype fields into silently wrong data (the paper's Table IV), so we
reproduce it faithfully:

``value = (-1)^sign * significand * 2^(exponent - bias)``

with ``significand = implied + mantissa / 2^mantissa_size`` where
``implied`` is 1 for ``IMPLIED`` normalization and 0 otherwise, plus the
IEEE special cases when the geometry allows them (all-zero exponent →
subnormal, all-ones exponent → inf/NaN, only for ``IMPLIED``).

Everything is numpy-vectorized: an n-element dataset decodes with a
handful of array ops, no Python-level per-element loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.mhdf5.datatype import ByteOrder, DatatypeMessage, MantissaNorm


def _validate_geometry(dt: DatatypeMessage) -> None:
    """Reject geometry the library could not even address.

    Fields that run past the element's bits make bit extraction
    meaningless; the library fails its datatype sanity checks there (a
    detected error / crash), while in-range but *wrong* geometry decodes
    silently (SDC).  This boundary gives the paper's split where some
    corruptions of Exponent Location are SDCs and others crash.
    """
    nbits = 8 * dt.size
    if dt.size < 1 or dt.size > 8:
        raise FormatError(f"unsupported element size {dt.size}")
    if dt.exponent_location + dt.exponent_size > nbits:
        raise FormatError(
            f"exponent field [{dt.exponent_location}, "
            f"+{dt.exponent_size}) exceeds {nbits}-bit element")
    if dt.mantissa_location + dt.mantissa_size > nbits:
        raise FormatError(
            f"mantissa field [{dt.mantissa_location}, "
            f"+{dt.mantissa_size}) exceeds {nbits}-bit element")
    if dt.sign_location >= nbits:
        raise FormatError(f"sign location {dt.sign_location} exceeds {nbits}-bit element")
    if dt.mantissa_size >= 64 or dt.exponent_size >= 64:
        raise FormatError("mantissa/exponent size out of range")


def _elements_as_uint64(raw: bytes, dt: DatatypeMessage, count: int) -> np.ndarray:
    """Assemble *count* elements of *raw* into uint64 words.

    Short input is zero-extended: reading past the end of the allocation
    (e.g. after an ARD shift) observes holes, not an error -- matching
    how a read of a sparse region behaves.
    """
    need = count * dt.size
    if len(raw) < need:
        raw = raw + b"\x00" * (need - len(raw))
    a = np.frombuffer(raw[:need], dtype=np.uint8).reshape(count, dt.size)
    if dt.byte_order is ByteOrder.BIG:
        a = a[:, ::-1]
    shifts = (np.arange(dt.size, dtype=np.uint64) * np.uint64(8))
    return (a.astype(np.uint64) << shifts).sum(axis=1, dtype=np.uint64)


def decode_floats(raw: bytes, dt: DatatypeMessage, count: int) -> np.ndarray:
    """Decode *count* elements from *raw* according to *dt*.

    Returns a float64 array.  Raises :class:`FormatError` for geometry the
    library would reject; silently produces wrong values for geometry that
    is in-range but not what the data was written with.
    """
    _validate_geometry(dt)
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return np.zeros(0, dtype=np.float64)

    u = _elements_as_uint64(raw, dt, count)

    def field(location: int, size: int) -> np.ndarray:
        if size == 0:
            return np.zeros_like(u)
        mask = np.uint64((1 << size) - 1)
        return (u >> np.uint64(location)) & mask

    mantissa = field(dt.mantissa_location, dt.mantissa_size)
    exponent = field(dt.exponent_location, dt.exponent_size)
    sign = field(dt.sign_location, 1).astype(np.float64)

    frac = mantissa.astype(np.float64) / float(1 << dt.mantissa_size) \
        if dt.mantissa_size > 0 else np.zeros(count, dtype=np.float64)

    norm = dt.mantissa_norm
    exp_f = exponent.astype(np.float64) - float(dt.exponent_bias)

    with np.errstate(over="ignore", invalid="ignore"):
        if norm is MantissaNorm.IMPLIED and dt.exponent_size > 0:
            exp_max = (1 << dt.exponent_size) - 1
            is_sub = exponent == 0
            is_special = exponent == exp_max
            significand = np.where(is_sub, frac, 1.0 + frac)
            exp_eff = np.where(is_sub, 1.0 - float(dt.exponent_bias), exp_f)
            values = significand * np.exp2(exp_eff)
            # inf for zero mantissa, NaN otherwise -- IEEE semantics.
            special = np.where(mantissa == 0, np.inf, np.nan)
            values = np.where(is_special, special, values)
        else:
            significand = frac + (1.0 if norm is MantissaNorm.IMPLIED else 0.0)
            values = significand * np.exp2(exp_f)

    return np.where(sign > 0, -values, values)


def encode_floats(values: np.ndarray, dt: DatatypeMessage) -> bytes:
    """Encode float64 *values* into raw bytes according to *dt*.

    Supports ``IMPLIED`` normalization with a non-empty exponent field
    (the IEEE-style geometries the writer emits); used by the writer's
    generic path and by round-trip property tests.  Values that need a
    larger exponent than the geometry can hold raise ``ValueError`` --
    the writer never silently saturates.
    """
    _validate_geometry(dt)
    if dt.mantissa_norm is not MantissaNorm.IMPLIED or dt.exponent_size == 0:
        raise ValueError("encode_floats supports IMPLIED-normalization geometries only")
    values = np.asarray(values, dtype=np.float64).ravel()
    if not np.all(np.isfinite(values)):
        raise ValueError("cannot encode non-finite values")

    mant, exp = np.frexp(values)           # values = mant * 2**exp, mant in [0.5, 1)
    nonzero = values != 0
    # Convert to IEEE form: 1.f * 2**(exp-1).
    biased = np.where(nonzero, exp - 1 + dt.exponent_bias, 0).astype(np.int64)
    exp_max = (1 << dt.exponent_size) - 1
    if np.any((biased >= exp_max) & nonzero):
        raise ValueError("value exponent exceeds datatype exponent range")
    subnormal = (biased <= 0) & nonzero
    if np.any(subnormal):
        # Shift the significand right until the exponent reaches 1 - bias.
        shift = (1 - biased[subnormal]).astype(np.float64)
        sig_sub = np.abs(mant[subnormal]) * 2.0 * np.exp2(-shift)
        mantissa_sub = np.rint(sig_sub * (1 << dt.mantissa_size)).astype(np.uint64)
    sig = np.abs(mant) * 2.0                # in [1, 2)
    frac = sig - 1.0
    mantissa = np.rint(frac * (1 << dt.mantissa_size)).astype(np.uint64)
    # Rounding can carry the fraction to 1.0: bump the exponent.
    carry = mantissa >= (1 << dt.mantissa_size)
    mantissa = np.where(carry, 0, mantissa)
    biased = biased + carry.astype(np.int64)
    if np.any((biased >= exp_max) & nonzero):
        raise ValueError("value exponent exceeds datatype exponent range after rounding")

    biased_u = np.where(nonzero, np.maximum(biased, 0), 0).astype(np.uint64)
    if np.any(subnormal):
        mantissa = mantissa.copy()
        mantissa[subnormal] = mantissa_sub
        biased_u = biased_u.copy()
        biased_u[subnormal] = 0

    word = np.zeros(values.shape, dtype=np.uint64)
    word |= mantissa << np.uint64(dt.mantissa_location)
    word |= biased_u << np.uint64(dt.exponent_location)
    word |= (np.signbit(values)).astype(np.uint64) << np.uint64(dt.sign_location)

    out = np.zeros((values.size, dt.size), dtype=np.uint8)
    for i in range(dt.size):
        out[:, i] = (word >> np.uint64(8 * i)).astype(np.uint8)
    if dt.byte_order is ByteOrder.BIG:
        out = out[:, ::-1]
    return out.tobytes()
