"""The contiguous data-layout message: Address of Raw Data (ARD) + size.

Table IV's most dangerous SDC field lives here: a corrupted ARD silently
shifts every element the reader decodes, while the dataset average stays
~1 (so the paper's average-value detector cannot see it).  The paper's
countermeasure -- ``ARD == metadata size`` because raw data immediately
follows the packed metadata -- is implemented in :mod:`repro.mhdf5.repair`.

The ``size`` field reproduces the paper's asymmetric observation: the
reader only *verifies that the allocation covers the dataspace extent*,
so corrupting size to a larger value is harmless while a smaller value
crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.errors import FormatError
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass

LAYOUT_CLASS_CHUNKED = 2


@dataclass(frozen=True)
class ContiguousLayoutMessage:
    """Version-3 data layout message, contiguous storage class."""

    data_address: int   # ARD: absolute file offset of the raw data
    size: int           # allocated bytes for the raw data

    ENCODED_SIZE = 18

    def encode(self, writer: FieldWriter) -> None:
        writer.put_uint(C.LAYOUT_VERSION, 1, "Layout Version", FieldClass.STRUCTURAL)
        writer.put_uint(C.LAYOUT_CLASS_CONTIGUOUS, 1, "Layout Class", FieldClass.STRUCTURAL)
        writer.put_uint(self.data_address, 8, "Address of Raw Data (ARD)", FieldClass.NUMERIC)
        writer.put_uint(self.size, 8, "Size", FieldClass.TOLERANT)

    @classmethod
    def decode(cls, reader: FieldReader) -> "ContiguousLayoutMessage":
        message = decode_layout(reader)
        if not isinstance(message, ContiguousLayoutMessage):
            raise FormatError("expected a contiguous layout message")
        return message


@dataclass(frozen=True)
class ChunkedLayoutMessage:
    """Version-3 data layout message, chunked storage class.

    Raw data lives in fixed-shape chunks indexed by a node-type-1 B-tree
    at ``btree_address``; chunks may be deflate-filtered.  This is the
    layout the compression experiment uses.
    """

    btree_address: int
    chunk_shape: Tuple[int, ...]
    element_size: int

    def encoded_size(self) -> int:
        return 3 + 8 + 4 * len(self.chunk_shape) + 4

    def encode(self, writer: FieldWriter) -> None:
        writer.put_uint(C.LAYOUT_VERSION, 1, "Layout Version", FieldClass.STRUCTURAL)
        writer.put_uint(LAYOUT_CLASS_CHUNKED, 1, "Layout Class", FieldClass.STRUCTURAL)
        writer.put_uint(len(self.chunk_shape), 1, "Chunk Dimensionality",
                        FieldClass.STRUCTURAL)
        writer.put_uint(self.btree_address, 8, "Chunk B-tree Address",
                        FieldClass.STRUCTURAL)
        for axis, dim in enumerate(self.chunk_shape):
            writer.put_uint(dim, 4, f"Chunk Dimension {axis} Size",
                            FieldClass.NUMERIC)
        writer.put_uint(self.element_size, 4, "Chunk Element Size",
                        FieldClass.STRUCTURAL)

    @classmethod
    def decode(cls, reader: FieldReader) -> "ChunkedLayoutMessage":
        message = decode_layout(reader)
        if not isinstance(message, ChunkedLayoutMessage):
            raise FormatError("expected a chunked layout message")
        return message


LayoutMessage = Union[ContiguousLayoutMessage, ChunkedLayoutMessage]


def decode_layout(reader: FieldReader) -> LayoutMessage:
    """Decode either layout class; unknown classes raise (crash)."""
    version = reader.take_uint(1, "layout version")
    if version != C.LAYOUT_VERSION:
        raise FormatError(f"unsupported layout version {version}")
    layout_class = reader.take_uint(1, "layout class")
    if layout_class == C.LAYOUT_CLASS_CONTIGUOUS:
        data_address = reader.take_uint(8, "address of raw data")
        size = reader.take_uint(8, "layout size")
        return ContiguousLayoutMessage(data_address=data_address, size=size)
    if layout_class == LAYOUT_CLASS_CHUNKED:
        rank = reader.take_uint(1, "chunk dimensionality")
        if rank < 1 or rank > 32:
            raise FormatError(f"unsupported chunk rank {rank}")
        btree_address = reader.take_uint(8, "chunk B-tree address")
        chunk_shape = tuple(reader.take_uint(4, "chunk dimension")
                            for _ in range(rank))
        if any(d == 0 for d in chunk_shape):
            raise FormatError("zero-sized chunk dimension")
        element_size = reader.take_uint(4, "chunk element size")
        return ChunkedLayoutMessage(btree_address=btree_address,
                                    chunk_shape=chunk_shape,
                                    element_size=element_size)
    raise FormatError(f"unsupported layout class {layout_class}")
