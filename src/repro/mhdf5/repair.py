"""Detection and auto-correction of corrupted metadata fields (Sec. V-A).

The paper proposes exploiting two kinds of redundancy to detect and repair
the SDC-capable metadata fields:

1. **A physical invariant of the data**: Nyx's baryon density averages to
   exactly 1 (mass conservation).  A mean that is a power of two points at
   the Exponent Bias; a mean between 1 and 2 points at the float-geometry
   fields (exponent/mantissa location/size, normalization).
2. **Internal redundancy of the format**: for an IEEE-style type,
   ``exponent location == mantissa size``,
   ``mantissa size + exponent size == bit precision - 1`` (one sign bit),
   ``mantissa location == bit offset``; and because raw data directly
   follows the packed metadata, ``ARD == metadata size``.

:func:`diagnose_dataset` implements the detection decision procedure;
:func:`repair_file` applies the corrections in place (rewriting the
datatype / layout message bodies through the FFIS mount, so even the
repair traffic is observable/injectable).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import FormatError
from repro.fusefs.mount import MountPoint
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldWriter
from repro.mhdf5.datatype import DatatypeMessage, MantissaNorm
from repro.mhdf5.layout import ContiguousLayoutMessage
from repro.mhdf5.reader import Hdf5Reader


class DiagnosisKind(enum.Enum):
    OK = "ok"
    EXPONENT_BIAS = "exponent-bias"
    FLOAT_GEOMETRY = "float-geometry"
    ARD_MISMATCH = "ard-mismatch"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Diagnosis:
    kind: DiagnosisKind
    observed_mean: float
    expected_mean: float
    detail: str = ""


@dataclass(frozen=True)
class RepairAction:
    field_name: str
    old_value: int
    new_value: int


@dataclass
class RepairReport:
    diagnosis: Diagnosis
    actions: List[RepairAction] = field(default_factory=list)
    mean_after: Optional[float] = None
    success: bool = False


def _geometry_violations(dt: DatatypeMessage) -> List[str]:
    """Which of the paper's float-geometry constraints are violated."""
    violations = []
    if dt.mantissa_norm is not MantissaNorm.IMPLIED:
        violations.append("mantissa normalization is not IMPLIED")
    if dt.exponent_location != dt.mantissa_size:
        violations.append("exponent location != mantissa size")
    if dt.mantissa_size + dt.exponent_size != dt.bit_precision - 1:
        violations.append("mantissa size + exponent size != bit precision - 1")
    if dt.mantissa_location != dt.bit_offset:
        violations.append("mantissa location != bit offset")
    return violations


def _expected_ard(reader: Hdf5Reader, name: str) -> Optional[int]:
    """Predicted raw-data address of a contiguous dataset, or ``None``
    when the prediction is unavailable (chunked layouts involved)."""
    ordered = sorted(reader.dataset_names(),
                     key=lambda n: reader.info(n).header_address)
    cursor = reader.metadata_extent()
    for other in ordered:
        oinfo = reader.info(other)
        if oinfo.is_chunked:
            return None
        if other == name:
            return cursor
        cursor = (cursor + oinfo.layout.size + 7) & ~7
    return None


def diagnose_dataset(mp: MountPoint, path: str, name: str,
                     expected_mean: float = 1.0,
                     rel_tol: float = 1e-3) -> Diagnosis:
    """Run the paper's average-value decision procedure on one dataset.

    Returns :attr:`DiagnosisKind.OK` when the mean matches the invariant
    and the structural ARD check passes.  Structural checks run first
    because a corrupted ARD leaves the mean unchanged (the paper's
    motivating "severe" case).
    """
    reader = Hdf5Reader(mp, path)
    info = reader.info(name)

    # The structural ARD check applies to contiguous layouts laid out
    # right after the metadata (our writer's invariant); chunked datasets
    # have no single raw-data address.
    expected_ard = _expected_ard(reader, name)
    if expected_ard is not None and info.layout.data_address != expected_ard:
        return Diagnosis(DiagnosisKind.ARD_MISMATCH, float("nan"), expected_mean,
                         detail=f"ARD {info.layout.data_address} != metadata size "
                                f"{expected_ard}")

    values = reader.read(name)
    mean = float(np.mean(values))
    if not math.isfinite(mean):
        return Diagnosis(DiagnosisKind.FLOAT_GEOMETRY, mean, expected_mean,
                         detail="non-finite mean")
    if expected_mean != 0 and abs(mean / expected_mean - 1.0) <= rel_tol:
        return Diagnosis(DiagnosisKind.OK, mean, expected_mean)

    ratio = mean / expected_mean if expected_mean else float("inf")
    if ratio > 0:
        log2r = math.log2(ratio)
        if abs(log2r - round(log2r)) < 0.02 and round(log2r) != 0:
            return Diagnosis(DiagnosisKind.EXPONENT_BIAS, mean, expected_mean,
                             detail=f"mean scaled by 2**{round(log2r)}")
    violations = _geometry_violations(info.datatype)
    if violations:
        return Diagnosis(DiagnosisKind.FLOAT_GEOMETRY, mean, expected_mean,
                         detail="; ".join(violations))
    return Diagnosis(DiagnosisKind.UNKNOWN, mean, expected_mean,
                     detail="mean deviates but no metadata constraint is violated "
                            "(likely data corruption, not metadata)")


def _repaired_datatype(dt: DatatypeMessage, diagnosis: Diagnosis,
                       actions: List[RepairAction]) -> DatatypeMessage:
    """Apply the paper's correction rules, recording each change."""
    fixed = dt

    if fixed.mantissa_norm is not MantissaNorm.IMPLIED:
        actions.append(RepairAction("mantissa normalization",
                                    fixed.mantissa_norm_raw,
                                    MantissaNorm.IMPLIED.value))
        fixed = fixed.with_fields(mantissa_norm_raw=MantissaNorm.IMPLIED.value)

    if diagnosis.kind is DiagnosisKind.EXPONENT_BIAS and diagnosis.observed_mean > 0:
        shift = round(math.log2(diagnosis.observed_mean / diagnosis.expected_mean))
        new_bias = fixed.exponent_bias + shift
        if new_bias >= 0:
            actions.append(RepairAction("exponent bias", fixed.exponent_bias, new_bias))
            fixed = fixed.with_fields(exponent_bias=new_bias)

    # Geometry constraints: trust whichever fields satisfy the redundant
    # relation and rewrite the odd one out.
    precision_budget = fixed.bit_precision - 1
    if fixed.exponent_location != fixed.mantissa_size:
        if fixed.mantissa_size + fixed.exponent_size == precision_budget:
            actions.append(RepairAction("exponent location",
                                        fixed.exponent_location, fixed.mantissa_size))
            fixed = fixed.with_fields(exponent_location=fixed.mantissa_size)
        elif fixed.exponent_location + fixed.exponent_size == precision_budget:
            actions.append(RepairAction("mantissa size",
                                        fixed.mantissa_size, fixed.exponent_location))
            fixed = fixed.with_fields(mantissa_size=fixed.exponent_location)
    if fixed.mantissa_location != fixed.bit_offset:
        actions.append(RepairAction("mantissa location",
                                    fixed.mantissa_location, fixed.bit_offset))
        fixed = fixed.with_fields(mantissa_location=fixed.bit_offset)
    return fixed


def _rewrite_message(mp: MountPoint, path: str, body_range, encode) -> None:
    """Re-encode a message body and write it back in place."""
    start, end = body_range
    w = FieldWriter(base_offset=start)
    encode(w)
    body = w.getvalue()
    if len(body) != end - start:
        raise FormatError("re-encoded message body size mismatch")
    with mp.open(path, "r+") as f:
        f.pwrite(body, start)


def repair_file(mp: MountPoint, path: str, name: str,
                expected_mean: float = 1.0,
                rel_tol: float = 1e-3) -> RepairReport:
    """Detect and correct faulty metadata fields of dataset *name*.

    Applies the ARD, exponent-bias, and float-geometry corrections, then
    re-reads the dataset to verify the invariant.  Returns a report of
    every action; ``success`` means the mean matches the invariant after
    repair.
    """
    diagnosis = diagnose_dataset(mp, path, name, expected_mean, rel_tol)
    report = RepairReport(diagnosis=diagnosis)
    if diagnosis.kind is DiagnosisKind.OK:
        report.mean_after = diagnosis.observed_mean
        report.success = True
        return report

    reader = Hdf5Reader(mp, path)
    info = reader.info(name)

    if diagnosis.kind is DiagnosisKind.ARD_MISMATCH:
        expected_ard = _expected_ard(reader, name)
        if expected_ard is None:
            raise FormatError("cannot predict ARD for this file layout")
        report.actions.append(RepairAction("Address of Raw Data (ARD)",
                                           info.layout.data_address, expected_ard))
        fixed_layout = ContiguousLayoutMessage(data_address=expected_ard,
                                               size=info.layout.size)
        _rewrite_message(mp, path, info.message_ranges[C.MSG_LAYOUT],
                         fixed_layout.encode)
    else:
        fixed_dt = _repaired_datatype(info.datatype, diagnosis, report.actions)
        if fixed_dt != info.datatype:
            _rewrite_message(mp, path, info.message_ranges[C.MSG_DATATYPE],
                             fixed_dt.encode)

    after = diagnose_dataset(mp, path, name, expected_mean, rel_tol)
    report.mean_after = after.observed_mean
    report.success = after.kind is DiagnosisKind.OK
    return report
