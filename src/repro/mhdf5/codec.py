"""A tiny structured binary writer/reader with byte-range field tracking.

The writer side (:class:`FieldWriter`) is how every metadata structure is
encoded: each ``put_*`` call appends bytes *and* records a named span, so
the assembled blob comes with a complete byte→field map.  The metadata
fault-injection campaign (Sec. IV-D of the paper) uses that map to report
which HDF5 field a corrupted byte belonged to, exactly as the authors used
the HDF5 File Format Specification to annotate their results.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FormatError
from repro.mhdf5.fieldmap import FieldClass, FieldSpan
from repro.util.binary import pack_uint, unpack_uint


class FieldWriter:
    """Appends little-endian fields to a buffer, tracking named spans."""

    def __init__(self, base_offset: int = 0, container: str = "") -> None:
        self._chunks: List[bytes] = []
        self._len = 0
        self.base_offset = base_offset
        self.container = container
        self.spans: List[FieldSpan] = []

    def __len__(self) -> int:
        return self._len

    @property
    def offset(self) -> int:
        """Absolute offset of the next byte to be written."""
        return self.base_offset + self._len

    def put(self, data: bytes, name: str, cls: FieldClass) -> None:
        start = self.offset
        self._chunks.append(data)
        self._len += len(data)
        self.spans.append(FieldSpan(start, start + len(data), name, cls, self.container))

    def put_uint(self, value: int, nbytes: int, name: str, cls: FieldClass) -> None:
        self.put(pack_uint(value, nbytes), name, cls)

    def put_bytes(self, data: bytes, name: str, cls: FieldClass) -> None:
        self.put(bytes(data), name, cls)

    def put_reserved(self, nbytes: int, name: str = "reserved") -> None:
        self.put(b"\x00" * nbytes, name, FieldClass.RESERVED)

    def pad_to(self, size: int, name: str = "alignment padding") -> None:
        if self._len > size:
            raise ValueError(f"structure length {self._len} exceeds target {size}")
        if self._len < size:
            self.put(b"\x00" * (size - self._len), name, FieldClass.RESERVED)

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class FieldReader:
    """Sequential little-endian reader with strict bounds checking.

    Running off the end of the structure raises :class:`FormatError` --
    the mini-HDF5 reader treats truncated structures as corruption, the
    same way the real library errors out of short decodes.
    """

    def __init__(self, buf: bytes, offset: int = 0, end: Optional[int] = None) -> None:
        self.buf = buf
        self.pos = offset
        self.end = len(buf) if end is None else end

    def remaining(self) -> int:
        return self.end - self.pos

    def take(self, nbytes: int, what: str = "field") -> bytes:
        if nbytes < 0 or self.pos + nbytes > self.end:
            raise FormatError(
                f"truncated structure: need {nbytes} bytes for {what} "
                f"at offset {self.pos}, only {self.remaining()} available"
            )
        data = self.buf[self.pos : self.pos + nbytes]
        self.pos += nbytes
        return data

    def take_uint(self, nbytes: int, what: str = "field") -> int:
        data = self.take(nbytes, what)
        return unpack_uint(data, 0, nbytes)

    def expect(self, expected: bytes, what: str) -> None:
        actual = self.take(len(expected), what)
        if actual != expected:
            raise FormatError(f"bad {what}: expected {expected!r}, found {actual!r}")

    def expect_uint(self, expected: int, nbytes: int, what: str) -> int:
        actual = self.take_uint(nbytes, what)
        if actual != expected:
            raise FormatError(f"bad {what}: expected {expected}, found {actual}")
        return actual

    def skip(self, nbytes: int, what: str = "padding") -> None:
        self.take(nbytes, what)
