"""The superblock: file signature, format versions, and root pointers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormatError
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass

SUPERBLOCK_SIZE = 48

#: Offset of the file-consistency flags within the superblock; the final
#: write of a file-creation sequence updates these 8 bytes (flags +
#: trailing reserved), mirroring the library's superblock refresh on close.
CONSISTENCY_FLAGS_OFFSET = 40
CONSISTENCY_FLAGS_SIZE = 8

#: Flag value marking a cleanly closed (unlocked) file.
FLAG_CLEAN = 1


@dataclass(frozen=True)
class Superblock:
    end_of_file_address: int
    root_header_address: int
    consistency_flags: int = FLAG_CLEAN

    def encode(self, writer: FieldWriter) -> None:
        writer.put_bytes(C.SUPERBLOCK_SIGNATURE, "Superblock Signature",
                         FieldClass.STRUCTURAL)
        writer.put_uint(C.SUPERBLOCK_VERSION, 1, "Version # of Superblock",
                        FieldClass.STRUCTURAL)
        writer.put_uint(C.FREESPACE_VERSION, 1, "Version # of Free-Space Storage",
                        FieldClass.STRUCTURAL)
        writer.put_uint(C.ROOT_SYMTAB_VERSION, 1, "Version # of Root Group Symbol Table",
                        FieldClass.STRUCTURAL)
        writer.put_reserved(1, "superblock reserved")
        writer.put_uint(C.OFFSET_SIZE, 1, "Size of Offsets", FieldClass.STRUCTURAL)
        writer.put_uint(C.LENGTH_SIZE, 1, "Size of Lengths", FieldClass.STRUCTURAL)
        writer.put_reserved(2, "superblock reserved")
        writer.put_uint(0, 8, "Base Address", FieldClass.TOLERANT)
        writer.put_uint(self.end_of_file_address, 8, "End of File Address",
                        FieldClass.TOLERANT)
        writer.put_uint(self.root_header_address, 8, "Root Group Object Header Address",
                        FieldClass.STRUCTURAL)
        writer.put_uint(self.consistency_flags, 4, "File Consistency Flags",
                        FieldClass.RESERVED)
        writer.put_reserved(4, "superblock trailing reserved")

    @classmethod
    def decode(cls, reader: FieldReader) -> "Superblock":
        reader.expect(C.SUPERBLOCK_SIGNATURE, "superblock signature")
        reader.expect_uint(C.SUPERBLOCK_VERSION, 1, "superblock version")
        reader.expect_uint(C.FREESPACE_VERSION, 1, "free-space storage version")
        reader.expect_uint(C.ROOT_SYMTAB_VERSION, 1, "root symbol table version")
        reader.skip(1, "superblock reserved")
        reader.expect_uint(C.OFFSET_SIZE, 1, "size of offsets")
        reader.expect_uint(C.LENGTH_SIZE, 1, "size of lengths")
        reader.skip(2, "superblock reserved")
        base = reader.take_uint(8, "base address")
        if base != 0:
            raise FormatError(f"unsupported non-zero base address {base}")
        eof = reader.take_uint(8, "end of file address")
        root = reader.take_uint(8, "root group object header address")
        flags = reader.take_uint(4, "file consistency flags")
        reader.skip(4, "superblock trailing reserved")
        return cls(end_of_file_address=eof, root_header_address=root,
                   consistency_flags=flags)
