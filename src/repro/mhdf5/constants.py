"""Signatures, versions, and message-type identifiers of the mini-HDF5 format.

Values follow the HDF5 File Format Specification v3.0 where the subset
overlaps; structural parameters (B-tree K, symbol-node capacity) are
chosen so the metadata-region proportions match the paper's observation
that B-tree nodes account for ~72 % of the metadata and are ~10 % full.
"""

from __future__ import annotations

# -- signatures ---------------------------------------------------------------

SUPERBLOCK_SIGNATURE = b"\x89HDF\r\n\x1a\n"
BTREE_SIGNATURE = b"TREE"
SNOD_SIGNATURE = b"SNOD"
HEAP_SIGNATURE = b"HEAP"

# -- versions ------------------------------------------------------------------

SUPERBLOCK_VERSION = 0
FREESPACE_VERSION = 0
ROOT_SYMTAB_VERSION = 0
OBJECT_HEADER_VERSION = 1
HEAP_VERSION = 0
SNOD_VERSION = 1
BTREE_GROUP_NODE_TYPE = 0
DATASPACE_VERSION = 1
DATATYPE_VERSION = 1
LAYOUT_VERSION = 3
LAYOUT_CLASS_CONTIGUOUS = 1

# -- sizes ----------------------------------------------------------------------

OFFSET_SIZE = 8      # "size of offsets" superblock field
LENGTH_SIZE = 8      # "size of lengths" superblock field

#: Undefined-address sentinel (all ones), as in the HDF5 spec.
UNDEFINED_ADDRESS = 0xFFFFFFFFFFFFFFFF

# -- object header message type ids (HDF5 spec numbering) -----------------------

MSG_NIL = 0x0000
MSG_DATASPACE = 0x0001
MSG_DATATYPE = 0x0003
MSG_FILL_VALUE = 0x0005
MSG_LAYOUT = 0x0008
MSG_ATTRIBUTE = 0x000C
MSG_MTIME = 0x0012
MSG_SYMBOL_TABLE = 0x0011

KNOWN_MESSAGE_TYPES = frozenset({
    MSG_NIL,
    MSG_DATASPACE,
    MSG_DATATYPE,
    MSG_FILL_VALUE,
    MSG_LAYOUT,
    MSG_ATTRIBUTE,
    MSG_MTIME,
    MSG_SYMBOL_TABLE,
})

# -- datatype classes -------------------------------------------------------------

DTCLASS_FIXED = 0
DTCLASS_FLOAT = 1

# -- structural parameters ----------------------------------------------------------

#: v1 B-tree rank: a group node holds up to 2K entries (2K+1 child pointers,
#: 2K+2 keys in our encoding).  K=54 makes the single root node ~1.76 KiB,
#: ~72 % of a typical single-dataset metadata region, honouring the paper's
#: measurement while staying "partially full (i.e. 10 %)".
BTREE_K = 54

#: Symbol-table node capacity (2K entries of 40 bytes in the HDF5 spec).
SNOD_K = 4

#: Local heap data-segment size (link names live here).
HEAP_DATA_SIZE = 88

#: Default device block size for raw-data writes (the shorn-write fault
#: model is specified against 4 KiB blocks with 512-byte sectors).
DATA_BLOCK_SIZE = 4096

#: NIL padding reserved in each dataset object header for future messages,
#: mirroring the library's default space-allocation policy the paper credits
#: for much of the benign metadata space.
DATASET_HEADER_NIL_PAD = 40
