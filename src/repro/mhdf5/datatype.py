"""The datatype message and its floating-point property record.

This is the structure at the heart of the paper's Table IV: six of its
fields (bit-5 of mantissa normalization, exponent location, mantissa
location, mantissa size, exponent bias -- plus the layout message's ARD)
can silently change every decoded value when corrupted, while bit offset
and bit precision are benign.

Encoding follows the HDF5 spec's version-1 datatype message:

* byte 0 -- class (low nibble) and version (high nibble),
* bytes 1-3 -- class bit field; for floats byte 1 carries byte order
  (bit 0), padding bits (1-3) and **mantissa normalization in bits 4-5**
  (so the paper's "Bit-5 of Mantissa Normalization" is bit 5 of this
  byte: flipping it turns IEEE's ``IMPLIED`` (0b10) into ``NONE`` (0b00),
  dropping the implied leading 1 from every value), byte 2 is the sign
  location, byte 3 is reserved,
* bytes 4-7 -- element size in bytes,
* 12 property bytes -- bit offset (2), bit precision (2), exponent
  location (1), exponent size (1), mantissa location (1), mantissa size
  (1), exponent bias (4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import FormatError
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass


class ByteOrder(enum.Enum):
    LITTLE = 0
    BIG = 1


class MantissaNorm(enum.Enum):
    """Mantissa normalization of the float datatype.

    ``IMPLIED`` is IEEE semantics: the most-significant mantissa bit is 1
    and not stored.  ``ALWAYS_SET`` stores that bit.  ``NONE`` stores the
    raw fraction with no implied bit.  Values outside the known enum are
    treated as ``NONE`` by the decoder -- the library does not reject
    them, which is precisely why the paper's bit-5 flip is an SDC and not
    a crash.
    """

    NONE = 0
    ALWAYS_SET = 1
    IMPLIED = 2


@dataclass(frozen=True)
class DatatypeMessage:
    """A floating-point datatype description (HDF5 datatype class 1)."""

    size: int                     # element size in bytes
    byte_order: ByteOrder = ByteOrder.LITTLE
    mantissa_norm_raw: int = MantissaNorm.IMPLIED.value
    sign_location: int = 31
    bit_offset: int = 0
    bit_precision: int = 32
    exponent_location: int = 23
    exponent_size: int = 8
    mantissa_location: int = 0
    mantissa_size: int = 23
    exponent_bias: int = 127

    ENCODED_SIZE = 20

    @property
    def mantissa_norm(self) -> MantissaNorm:
        """Decoded normalization; unknown raw values degrade to ``NONE``."""
        try:
            return MantissaNorm(self.mantissa_norm_raw & 0b11)
        except ValueError:  # pragma: no cover - & 0b11 keeps it in range
            return MantissaNorm.NONE

    def with_fields(self, **kwargs) -> "DatatypeMessage":
        """Return a copy with the given fields replaced (repair tooling)."""
        return replace(self, **kwargs)

    # -- wire format ---------------------------------------------------------

    def encode(self, writer: FieldWriter) -> None:
        cls_and_version = (C.DATATYPE_VERSION << 4) | C.DTCLASS_FLOAT
        writer.put_uint(cls_and_version, 1, "Class and Version", FieldClass.STRUCTURAL)
        bitfield0 = (self.byte_order.value & 1) | ((self.mantissa_norm_raw & 0b11) << 4)
        writer.put_uint(bitfield0, 1, "Byte Order / Mantissa Normalization",
                        FieldClass.NUMERIC)
        writer.put_uint(self.sign_location, 1, "Sign Location", FieldClass.NUMERIC)
        writer.put_reserved(1, "datatype bit field reserved")
        writer.put_uint(self.size, 4, "Size", FieldClass.STRUCTURAL)
        writer.put_uint(self.bit_offset, 2, "Bit Offset", FieldClass.TOLERANT)
        writer.put_uint(self.bit_precision, 2, "Bit Precision", FieldClass.TOLERANT)
        writer.put_uint(self.exponent_location, 1, "Exponent Location", FieldClass.NUMERIC)
        writer.put_uint(self.exponent_size, 1, "Exponent Size", FieldClass.NUMERIC)
        writer.put_uint(self.mantissa_location, 1, "Mantissa Location", FieldClass.NUMERIC)
        writer.put_uint(self.mantissa_size, 1, "Mantissa Size", FieldClass.NUMERIC)
        writer.put_uint(self.exponent_bias, 4, "Exponent Bias", FieldClass.NUMERIC)

    @classmethod
    def decode(cls, reader: FieldReader) -> "DatatypeMessage":
        cls_and_version = reader.take_uint(1, "datatype class/version")
        version = cls_and_version >> 4
        dtclass = cls_and_version & 0x0F
        if version != C.DATATYPE_VERSION:
            raise FormatError(f"unsupported datatype message version {version}")
        if dtclass != C.DTCLASS_FLOAT:
            raise FormatError(f"unsupported datatype class {dtclass}")
        bitfield0 = reader.take_uint(1, "datatype bit field 0")
        byte_order = ByteOrder(bitfield0 & 1)
        mantissa_norm_raw = (bitfield0 >> 4) & 0b11
        sign_location = reader.take_uint(1, "sign location")
        reader.skip(1, "datatype bit field reserved")
        size = reader.take_uint(4, "datatype size")
        if size < 1 or size > 8:
            raise FormatError(f"unsupported float element size {size}")
        bit_offset = reader.take_uint(2, "bit offset")
        bit_precision = reader.take_uint(2, "bit precision")
        exponent_location = reader.take_uint(1, "exponent location")
        exponent_size = reader.take_uint(1, "exponent size")
        mantissa_location = reader.take_uint(1, "mantissa location")
        mantissa_size = reader.take_uint(1, "mantissa size")
        exponent_bias = reader.take_uint(4, "exponent bias")
        return cls(
            size=size,
            byte_order=byte_order,
            mantissa_norm_raw=mantissa_norm_raw,
            sign_location=sign_location,
            bit_offset=bit_offset,
            bit_precision=bit_precision,
            exponent_location=exponent_location,
            exponent_size=exponent_size,
            mantissa_location=mantissa_location,
            mantissa_size=mantissa_size,
            exponent_bias=exponent_bias,
        )


def ieee_f32le() -> DatatypeMessage:
    """IEEE 754 binary32, little-endian (the Nyx baryon-density dtype)."""
    return DatatypeMessage(
        size=4, byte_order=ByteOrder.LITTLE,
        mantissa_norm_raw=MantissaNorm.IMPLIED.value,
        sign_location=31, bit_offset=0, bit_precision=32,
        exponent_location=23, exponent_size=8,
        mantissa_location=0, mantissa_size=23, exponent_bias=127,
    )


def ieee_f64le() -> DatatypeMessage:
    """IEEE 754 binary64, little-endian."""
    return DatatypeMessage(
        size=8, byte_order=ByteOrder.LITTLE,
        mantissa_norm_raw=MantissaNorm.IMPLIED.value,
        sign_location=63, bit_offset=0, bit_precision=64,
        exponent_location=52, exponent_size=11,
        mantissa_location=0, mantissa_size=52, exponent_bias=1023,
    )
