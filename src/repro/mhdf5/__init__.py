"""mini-HDF5: a from-scratch binary scientific file format.

This package implements the subset of the HDF5 File Format Specification
the paper's metadata study exercises (Sec. II Fig. 1 and Sec. IV-D):

* superblock → root group object header → symbol-table message,
* v1 B-tree node (``TREE``) + symbol-table node (``SNOD``) + local heap
  (``HEAP``) indexing the datasets of the root group,
* per-dataset object header carrying dataspace, datatype (with the full
  floating-point property record: bit offset / bit precision / exponent
  location / exponent size / exponent bias / mantissa location / mantissa
  size / mantissa normalization / sign location), contiguous data layout
  (size + Address of Raw Data), modification time, and NIL padding,
* a *strict* reader that raises :class:`repro.errors.FormatError` for the
  structural violations the real library treats as fatal (signatures,
  versions, message types, allocation sizes), and
* a *generic* float decoder that honours the (possibly corrupted)
  datatype-message geometry, which is the mechanism behind the paper's
  Table IV symptoms.

The on-disk write sequence mirrors the library behaviour the paper's
metadata injector keys on: raw data first (in block-sized writes), then a
single packed metadata blob (the **penultimate** write), then a small
superblock close-flag update (the final write).
"""

from repro.mhdf5 import constants
from repro.mhdf5.chunks import (
    FILTER_DEFLATE,
    ChunkRecord,
    chunk_btree_size,
    split_into_chunks,
)
from repro.mhdf5.dataspace import DataspaceMessage
from repro.mhdf5.datatype import ByteOrder, DatatypeMessage, MantissaNorm, ieee_f32le, ieee_f64le
from repro.mhdf5.fieldmap import FieldClass, FieldMap, FieldSpan
from repro.mhdf5.floatcodec import decode_floats, encode_floats
from repro.mhdf5.layout import (
    ChunkedLayoutMessage,
    ContiguousLayoutMessage,
    decode_layout,
)
from repro.mhdf5.reader import Hdf5Reader, list_datasets, read_dataset
from repro.mhdf5.repair import (
    Diagnosis,
    DiagnosisKind,
    RepairAction,
    RepairReport,
    diagnose_dataset,
    repair_file,
)
from repro.mhdf5.writer import DatasetSpec, Hdf5Writer, LayoutPlan, write_file

__all__ = [
    "DatatypeMessage",
    "ByteOrder",
    "MantissaNorm",
    "ieee_f32le",
    "ieee_f64le",
    "DataspaceMessage",
    "ContiguousLayoutMessage",
    "ChunkedLayoutMessage",
    "decode_layout",
    "ChunkRecord",
    "FILTER_DEFLATE",
    "chunk_btree_size",
    "split_into_chunks",
    "DatasetSpec",
    "FieldMap",
    "FieldSpan",
    "FieldClass",
    "decode_floats",
    "encode_floats",
    "Hdf5Writer",
    "write_file",
    "LayoutPlan",
    "Hdf5Reader",
    "read_dataset",
    "list_datasets",
    "Diagnosis",
    "DiagnosisKind",
    "RepairAction",
    "RepairReport",
    "diagnose_dataset",
    "repair_file",
    "constants",
]
