"""mini-HDF5 file reader.

The reader enforces the same strictness boundary the paper observed in
the HDF5 C library:

* signatures, version numbers, message types, structural pointers and
  allocation-vs-extent checks are validated → :class:`FormatError`
  (classified as **crash** by campaigns),
* reserved / padding / unused-capacity bytes are never inspected →
  **benign**,
* numeric datatype/layout fields are *trusted* and fed to the generic
  float decoder → potential **SDC**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FormatError
from repro.fusefs.mount import MountPoint
from repro.mhdf5 import constants as C
from repro.mhdf5.btree import btree_node_size, decode_btree_node, decode_snod, snod_size
from repro.mhdf5.chunks import (
    chunk_btree_size,
    decode_chunk_btree,
    decompress_chunk,
)
from repro.mhdf5.codec import FieldReader
from repro.mhdf5.dataspace import DataspaceMessage
from repro.mhdf5.datatype import DatatypeMessage
from repro.mhdf5.floatcodec import decode_floats
from repro.mhdf5.heap import decode_heap
from repro.mhdf5.layout import (
    ChunkedLayoutMessage,
    LayoutMessage,
    decode_layout,
)
from repro.mhdf5.objheader import RawMessage, decode_object_header, message_index
from repro.mhdf5.superblock import FLAG_CLEAN, SUPERBLOCK_SIZE, Superblock

#: Refuse to even attempt reading files larger than this (corrupted EOF
#: addresses could otherwise request absurd allocations).
MAX_FILE_SIZE = 1 << 32


def _align8(x: int) -> int:
    return (x + 7) & ~7


@dataclass
class DatasetInfo:
    """Parsed description of one dataset plus message byte ranges."""

    name: str
    header_address: int
    dataspace: DataspaceMessage
    datatype: DatatypeMessage
    layout: LayoutMessage
    #: body byte range of each message in the file, keyed by message type
    #: (used by the repair tooling to rewrite corrected fields in place).
    message_ranges: Dict[int, Tuple[int, int]]

    @property
    def is_chunked(self) -> bool:
        return isinstance(self.layout, ChunkedLayoutMessage)


class Hdf5Reader:
    """Parses a mini-HDF5 file from a mounted FFIS file system."""

    def __init__(self, mp: MountPoint, path: str,
                 btree_k: int = C.BTREE_K, snod_k: int = C.SNOD_K) -> None:
        self._mp = mp
        self._path = path
        self._btree_k = btree_k
        self._snod_k = snod_k
        self._buf = mp.read_file(path)
        if len(self._buf) > MAX_FILE_SIZE:
            raise FormatError(f"file too large to read ({len(self._buf)} bytes)")
        self._datasets: Dict[str, DatasetInfo] = {}
        self._parse()

    # -- public API -------------------------------------------------------------

    @property
    def superblock(self) -> Superblock:
        return self._superblock

    def dataset_names(self) -> List[str]:
        return list(self._datasets)

    def info(self, name: str) -> DatasetInfo:
        try:
            return self._datasets[name]
        except KeyError:
            raise FormatError(f"dataset {name!r} not found in {self._path}") from None

    def read(self, name: str) -> np.ndarray:
        """Decode dataset *name* into a float64 array of its dataspace shape.

        Contiguous layout: raw bytes come from the layout's ARD; a short
        region (ARD shifted past EOF) zero-fills, matching sparse-read
        semantics, and the allocation-size check reproduces the paper's
        asymmetry (``size`` too small crashes, too large is harmless).

        Chunked layout: each indexed chunk is fetched (and inflated when
        deflate-filtered -- corruption inside a compressed chunk is a
        *detectable* failure) and stitched into the dataspace extent.
        """
        ds = self.info(name)
        if ds.is_chunked:
            return self._read_chunked(ds)
        count = ds.dataspace.npoints
        need = count * ds.datatype.size
        if ds.layout.size < need:
            raise FormatError(
                f"dataset {name!r}: allocated size {ds.layout.size} smaller than "
                f"dataspace extent {need}")
        if ds.layout.data_address > MAX_FILE_SIZE:
            raise FormatError(
                f"dataset {name!r}: raw data address {ds.layout.data_address} "
                "beyond addressable range")
        start = ds.layout.data_address
        raw = self._buf[start : start + need]
        values = decode_floats(raw, ds.datatype, count)
        return values.reshape(ds.dataspace.dims)

    def _read_chunked(self, ds: DatasetInfo) -> np.ndarray:
        layout = ds.layout
        dims = ds.dataspace.dims
        if len(layout.chunk_shape) != len(dims):
            raise FormatError(
                f"dataset {ds.name!r}: chunk rank {len(layout.chunk_shape)} "
                f"!= dataspace rank {len(dims)}")
        if layout.element_size != ds.datatype.size:
            raise FormatError(
                f"dataset {ds.name!r}: chunk element size {layout.element_size} "
                f"!= datatype size {ds.datatype.size}")
        records = decode_chunk_btree(self._buf, layout.btree_address,
                                     rank=len(dims))
        out = np.zeros(dims, dtype=np.float64)
        for record in records:
            slices = []
            tile_shape = []
            for offset, chunk_dim, extent in zip(record.logical_offset,
                                                 layout.chunk_shape, dims):
                if offset >= extent:
                    raise FormatError(
                        f"dataset {ds.name!r}: chunk offset {offset} outside "
                        f"extent {extent}")
                end = min(offset + chunk_dim, extent)
                slices.append(slice(offset, end))
                tile_shape.append(end - offset)
            n_elements = int(np.prod(tile_shape))
            stored = self._buf[record.address : record.address + record.stored_size]
            if len(stored) < record.stored_size:
                raise FormatError(
                    f"dataset {ds.name!r}: chunk at {record.address} truncated")
            raw = (decompress_chunk(stored, n_elements * ds.datatype.size)
                   if record.compressed else stored)
            values = decode_floats(raw, ds.datatype, n_elements)
            out[tuple(slices)] = values.reshape(tile_shape)
        return out

    def metadata_extent(self) -> int:
        """Size of the metadata region (== expected ARD of the first dataset).

        Computed from the parsed structures themselves, so it is available
        even when the layout message's ARD has been corrupted -- this is
        the redundancy the paper's ARD auto-correction exploits.
        """
        ends = [SUPERBLOCK_SIZE,
                self._heap_end,
                self._btree_address + btree_node_size(self._btree_k),
                self._snod_address + snod_size(self._snod_k)]
        for name, info in self._datasets.items():
            ends.append(info.header_address + self._header_sizes[name])
            if info.is_chunked:
                ends.append(info.layout.btree_address
                            + chunk_btree_size(len(info.dataspace.dims)))
        return _align8(max(ends))

    # -- parsing -----------------------------------------------------------------

    def _parse(self) -> None:
        buf = self._buf
        if len(buf) < SUPERBLOCK_SIZE:
            raise FormatError("file shorter than a superblock")
        self._superblock = Superblock.decode(FieldReader(buf, 0))
        if self._superblock.consistency_flags != FLAG_CLEAN:
            raise FormatError(
                "file not cleanly closed (consistency flags "
                f"{self._superblock.consistency_flags:#x})")

        root_addr = self._superblock.root_header_address
        if root_addr + 4 > len(buf):
            raise FormatError(f"root object header address {root_addr} past EOF")
        root_msgs = decode_object_header(FieldReader(buf, root_addr))
        index = message_index(root_msgs)
        if C.MSG_SYMBOL_TABLE not in index:
            raise FormatError("root group object header lacks a symbol table message")
        st = index[C.MSG_SYMBOL_TABLE]
        if st.body_end - st.body_start < 16:
            raise FormatError("truncated symbol table message")
        r = FieldReader(buf, st.body_start, st.body_end)
        self._btree_address = r.take_uint(8, "symbol table B-tree address")
        heap_address = r.take_uint(8, "symbol table heap address")

        heap = decode_heap(buf, heap_address)
        self._heap_end = heap.data_segment_address + heap.data_size

        node = decode_btree_node(buf, self._btree_address, self._btree_k)
        self._header_sizes: Dict[str, int] = {}
        for entry in node.entries:
            snod = decode_snod(buf, entry.child_address, self._snod_k)
            self._snod_address = entry.child_address
            for sym in snod.entries:
                name = heap.name_at(sym.name_heap_offset)
                info = self._parse_dataset(name, sym.header_address)
                self._datasets[name] = info
        if not node.entries:
            raise FormatError("root group B-tree has no entries")

    def _parse_dataset(self, name: str, header_address: int) -> DatasetInfo:
        buf = self._buf
        if header_address + 4 > len(buf):
            raise FormatError(f"object header address {header_address} past EOF")
        reader = FieldReader(buf, header_address)
        messages = decode_object_header(reader)
        self._header_sizes[name] = reader.pos - header_address
        index = message_index(messages)

        def body(msg_type: int, what: str) -> RawMessage:
            if msg_type not in index:
                raise FormatError(f"dataset {name!r} lacks a {what} message")
            return index[msg_type]

        ds_msg = body(C.MSG_DATASPACE, "dataspace")
        dataspace = DataspaceMessage.decode(
            FieldReader(buf, ds_msg.body_start, ds_msg.body_end))
        dt_msg = body(C.MSG_DATATYPE, "datatype")
        datatype = DatatypeMessage.decode(
            FieldReader(buf, dt_msg.body_start, dt_msg.body_end))
        ly_msg = body(C.MSG_LAYOUT, "data layout")
        layout = decode_layout(FieldReader(buf, ly_msg.body_start, ly_msg.body_end))

        ranges = {m.msg_type: (m.body_start, m.body_end) for m in messages}
        return DatasetInfo(name=name, header_address=header_address,
                           dataspace=dataspace, datatype=datatype,
                           layout=layout, message_ranges=ranges)


def read_dataset(mp: MountPoint, path: str, name: str) -> np.ndarray:
    """Convenience: open, parse, and decode one dataset."""
    return Hdf5Reader(mp, path).read(name)


def list_datasets(mp: MountPoint, path: str) -> List[str]:
    """Convenience: dataset names in the file at *path*."""
    return Hdf5Reader(mp, path).dataset_names()
