"""The dataspace message: dimensionality and extent of a dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import FormatError
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass

#: Sanity bound on any single dimension; the real library fails allocation
#: long before this, we fail decode.  Keeps corrupted high bytes of a
#: dimension from turning into multi-exabyte reads.
MAX_DIMENSION = 1 << 40


@dataclass(frozen=True)
class DataspaceMessage:
    """Simple (non-null, non-scalar) dataspace with fixed dimensions."""

    dims: Tuple[int, ...]

    @property
    def npoints(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def encoded_size(self) -> int:
        return 8 + 8 * len(self.dims)

    def encode(self, writer: FieldWriter) -> None:
        writer.put_uint(C.DATASPACE_VERSION, 1, "Dataspace Version", FieldClass.STRUCTURAL)
        writer.put_uint(len(self.dims), 1, "Dimensionality", FieldClass.STRUCTURAL)
        writer.put_uint(0, 1, "Dataspace Flags", FieldClass.TOLERANT)
        writer.put_reserved(5, "dataspace reserved")
        for i, d in enumerate(self.dims):
            writer.put_uint(d, 8, f"Dimension {i} Size", FieldClass.NUMERIC)

    @classmethod
    def decode(cls, reader: FieldReader) -> "DataspaceMessage":
        version = reader.take_uint(1, "dataspace version")
        if version != C.DATASPACE_VERSION:
            raise FormatError(f"unsupported dataspace version {version}")
        rank = reader.take_uint(1, "dataspace dimensionality")
        if rank < 1 or rank > 32:
            raise FormatError(f"unsupported dataspace rank {rank}")
        reader.skip(1, "dataspace flags")
        reader.skip(5, "dataspace reserved")
        dims = []
        for i in range(rank):
            d = reader.take_uint(8, f"dimension {i}")
            if d == 0 or d > MAX_DIMENSION:
                raise FormatError(f"unreasonable dimension {i} size {d}")
            dims.append(d)
        return cls(dims=tuple(dims))
