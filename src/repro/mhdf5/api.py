"""High-level convenience API over the mini-HDF5 writer/reader.

Mirrors the shape of ``h5py``'s core usage so the examples read naturally:

    with File(mp, "/run/plt00000.h5", "w") as f:
        f.create_dataset("baryon_density", rho)

    with File(mp, "/run/plt00000.h5", "r") as f:
        rho = f["baryon_density"]
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FFISError
from repro.fusefs.mount import MountPoint
from repro.mhdf5 import constants as C
from repro.mhdf5.reader import Hdf5Reader
from repro.mhdf5.writer import Hdf5Writer, WriteResult, write_file


class File:
    """A mini-HDF5 file handle bound to a mounted FFIS file system."""

    def __init__(self, mp: MountPoint, path: str, mode: str = "r",
                 block_size: int = C.DATA_BLOCK_SIZE,
                 writer: Optional[Hdf5Writer] = None) -> None:
        if mode not in ("r", "w"):
            raise FFISError(f"unsupported File mode {mode!r}")
        self._mp = mp
        self._path = path
        self._mode = mode
        self._block_size = block_size
        self._writer = writer
        self._pending: List[Tuple[str, np.ndarray]] = []
        self._names: Dict[str, int] = {}
        self._reader: Optional[Hdf5Reader] = None
        self._closed = False
        self.write_result: Optional[WriteResult] = None
        if mode == "r":
            self._reader = Hdf5Reader(mp, path)

    # -- write side ------------------------------------------------------------

    def create_dataset(self, name: str, data: np.ndarray,
                       chunks=None, compression=None) -> None:
        """Stage a dataset; all datasets land on :meth:`close`.

        ``chunks`` (a tile shape) selects the chunked layout;
        ``compression='deflate'`` additionally filters every chunk.
        """
        if self._mode != "w":
            raise FFISError("create_dataset requires mode 'w'")
        if self._closed:
            raise FFISError("file is closed")
        if name in self._names:
            raise FFISError(f"dataset {name!r} already exists")
        self._names[name] = len(self._pending)
        if chunks is None and compression is None:
            self._pending.append((name, np.asarray(data)))
        else:
            from repro.mhdf5.writer import DatasetSpec
            self._pending.append(DatasetSpec(
                name=name, array=np.asarray(data),
                chunks=tuple(chunks) if chunks else None,
                compression=compression))

    # -- read side ---------------------------------------------------------------

    def keys(self) -> List[str]:
        if self._reader is None:
            return [entry.name if hasattr(entry, "name") else entry[0]
                    for entry in self._pending]
        return self._reader.dataset_names()

    def __getitem__(self, name: str) -> np.ndarray:
        if self._mode != "r":
            raise FFISError("reading requires mode 'r'")
        assert self._reader is not None
        return self._reader.read(name)

    def __contains__(self, name: str) -> bool:
        return name in self.keys()

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._mode == "w":
            if not self._pending:
                raise FFISError("cannot close a write-mode File with no datasets")
            self.write_result = write_file(
                self._mp, self._path, self._pending,
                block_size=self._block_size, writer=self._writer)

    def __enter__(self) -> "File":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Do not flush a half-built file on error paths.
        if exc_type is None:
            self.close()
        else:
            self._closed = True
