"""Byte-range → named-field map of a metadata region.

The paper annotates every injected metadata byte with the HDF5 File
Format Specification field it belongs to, then reports outcome classes
per field (Tables III/IV).  :class:`FieldMap` provides that annotation
for our writer-produced metadata blobs.

``FieldClass`` records the *expected* sensitivity of a field based on the
reader's strictness boundary.  It is used purely for reporting and for
cross-checking measured outcomes against expectations -- classification
in campaigns always comes from actually running the application.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence


class FieldClass(enum.Enum):
    """A-priori sensitivity class of a metadata field."""

    #: Signature / version / structural pointer: the strict reader
    #: validates it, so corruption is expected to crash.
    STRUCTURAL = "structural"
    #: Numeric field the reader trusts: corruption may silently change
    #: decoded data (the paper's SDC-capable fields live here).
    NUMERIC = "numeric"
    #: Reserved, alignment, or unused capacity: never read back.
    RESERVED = "reserved"
    #: Read back but with slack semantics (e.g. over-allocation is fine).
    TOLERANT = "tolerant"


@dataclass(frozen=True)
class FieldSpan:
    """A contiguous byte range [start, end) belonging to one named field."""

    start: int
    end: int
    name: str
    cls: FieldClass
    container: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty or inverted span for {self.name!r}")

    @property
    def size(self) -> int:
        return self.end - self.start

    @property
    def qualified_name(self) -> str:
        return f"{self.container}.{self.name}" if self.container else self.name


class FieldMap:
    """Ordered, non-overlapping collection of :class:`FieldSpan`."""

    def __init__(self, spans: Sequence[FieldSpan]) -> None:
        ordered = sorted(spans, key=lambda s: s.start)
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start < prev.end:
                raise ValueError(
                    f"overlapping spans: {prev.qualified_name} and {cur.qualified_name}"
                )
        self._spans: List[FieldSpan] = list(ordered)
        self._starts = [s.start for s in ordered]

    def __iter__(self) -> Iterator[FieldSpan]:
        return iter(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def extent(self) -> int:
        """One past the last mapped byte."""
        return self._spans[-1].end if self._spans else 0

    def field_at(self, offset: int) -> Optional[FieldSpan]:
        """The span covering byte *offset*, or ``None`` for unmapped bytes."""
        i = bisect.bisect_right(self._starts, offset) - 1
        if i >= 0 and self._spans[i].start <= offset < self._spans[i].end:
            return self._spans[i]
        return None

    def by_container(self, container: str) -> List[FieldSpan]:
        return [s for s in self._spans if s.container == container]

    def bytes_by_class(self) -> dict:
        """Total bytes per :class:`FieldClass` (for Table III proportions)."""
        totals: dict = {cls: 0 for cls in FieldClass}
        for span in self._spans:
            totals[span.cls] += span.size
        return totals

    def container_fraction(self, container: str) -> float:
        """Fraction of mapped bytes inside *container* (e.g. the B-tree)."""
        total = sum(s.size for s in self._spans)
        if total == 0:
            return 0.0
        return sum(s.size for s in self.by_container(container)) / total
