"""Object headers and message framing (HDF5 version-1 object headers).

An object header is a 12-byte prefix followed by a sequence of messages,
each framed as ``type(2) size(2) flags(1) reserved(3)`` + body.  The
reader validates the prefix version and every message type; NIL messages
(the library's reserved space for future metadata) are skipped unread,
which is one of the two dominant sources of benign metadata bytes the
paper identifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import FormatError
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass

MESSAGE_HEADER_SIZE = 8
OBJECT_HEADER_PREFIX_SIZE = 12


@dataclass
class RawMessage:
    """A decoded message frame: type id and body byte range in the file."""

    msg_type: int
    body_start: int
    body_end: int


def encode_object_header(writer: FieldWriter,
                         messages: List[Tuple[int, str, Callable[[FieldWriter], None]]]) -> None:
    """Encode an object header with the given messages.

    Each entry is ``(msg_type, label, body_encoder)``; the body encoder
    writes the message body into a sub-writer so its length can be framed.
    """
    bodies: List[bytes] = []
    body_writers: List[FieldWriter] = []
    # First pass with a throwaway base offset to learn body sizes; second
    # pass below re-encodes at true offsets so span addresses are right.
    total = 0
    for msg_type, label, encoder in messages:
        w = FieldWriter(base_offset=0, container=label)
        encoder(w)
        body_writers.append(w)
        bodies.append(w.getvalue())
        total += MESSAGE_HEADER_SIZE + len(bodies[-1])

    writer.put_uint(C.OBJECT_HEADER_VERSION, 1, "Version # of Data Object Header",
                    FieldClass.STRUCTURAL)
    writer.put_reserved(1, "object header reserved")
    writer.put_uint(len(messages), 2, "Total Number of Header Messages",
                    FieldClass.STRUCTURAL)
    writer.put_uint(1, 4, "Object Reference Count", FieldClass.TOLERANT)
    writer.put_uint(total, 4, "Object Header Size", FieldClass.STRUCTURAL)

    for (msg_type, label, encoder), body in zip(messages, bodies):
        writer.put_uint(msg_type, 2, f"{label} Message Type", FieldClass.STRUCTURAL)
        writer.put_uint(len(body), 2, f"{label} Message Size", FieldClass.STRUCTURAL)
        writer.put_uint(0, 1, f"{label} Message Flags", FieldClass.TOLERANT)
        writer.put_reserved(3, f"{label} message reserved")
        # Re-encode the body at the true offset so the field map is exact.
        w = FieldWriter(base_offset=writer.offset, container=label)
        encoder(w)
        assert w.getvalue() == body, "message encoder must be deterministic"
        for span in w.spans:
            writer.spans.append(span)
        writer._chunks.append(body)          # noqa: SLF001 - same module family
        writer._len += len(body)             # noqa: SLF001


def decode_object_header(reader: FieldReader) -> List[RawMessage]:
    """Decode an object header, returning raw message frames.

    Message bodies are *not* interpreted here; callers dispatch on type.
    Unknown message types raise :class:`FormatError`, matching the
    paper's crash class for "Version # of Data Object Header Message".
    """
    version = reader.take_uint(1, "object header version")
    if version != C.OBJECT_HEADER_VERSION:
        raise FormatError(f"unsupported object header version {version}")
    reader.skip(1, "object header reserved")
    nmessages = reader.take_uint(2, "message count")
    if nmessages > 1024:
        raise FormatError(f"unreasonable object header message count {nmessages}")
    reader.skip(4, "object reference count")
    header_size = reader.take_uint(4, "object header size")
    end = reader.pos + header_size
    if end > reader.end:
        raise FormatError(
            f"object header size {header_size} runs past end of metadata")

    messages: List[RawMessage] = []
    for _ in range(nmessages):
        if reader.pos + MESSAGE_HEADER_SIZE > end:
            raise FormatError("object header message frame runs past header size")
        msg_type = reader.take_uint(2, "message type")
        if msg_type not in C.KNOWN_MESSAGE_TYPES:
            raise FormatError(f"unknown object header message type {msg_type:#06x}")
        size = reader.take_uint(2, "message size")
        reader.skip(1, "message flags")
        reader.skip(3, "message reserved")
        if reader.pos + size > end:
            raise FormatError("object header message body runs past header size")
        messages.append(RawMessage(msg_type, reader.pos, reader.pos + size))
        reader.skip(size, "message body")
    return messages


def message_index(messages: List[RawMessage]) -> Dict[int, RawMessage]:
    """Index messages by type, keeping the first of each type."""
    index: Dict[int, RawMessage] = {}
    for msg in messages:
        index.setdefault(msg.msg_type, msg)
    return index
