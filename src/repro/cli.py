"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``experiments``                   -- list the paper's tables/figures
* ``run <experiment-id>``           -- run one reproduction driver
* ``campaign --app X --model Y``    -- run a custom campaign
* ``campaign --app X --metadata-mode M`` -- per-byte metadata sweep
* ``sweep --app X --app Y --model M ...`` -- fused multi-campaign grid
* ``project --app X --model Y --uber U`` -- system-level rate projection

Campaign-style subcommands share the engine knobs: ``--workers N`` fans
runs out over a process pool (bit-identical to serial), ``--out F``
streams each record to a JSONL checkpoint, and ``--resume`` continues an
interrupted campaign from that file.  ``run`` forwards the same knobs to
drivers that execute fused sweeps (e.g. ``repro run figure7 --workers 4
--out sweep.jsonl --resume``).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional

from repro.analysis.projection import (
    DeviceModel,
    FIELD_STUDY_UBER_RANGE,
    project_run,
    system_sdc_rate,
)
from repro.analysis.stats import campaign_error_bars
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.engine import ProfileGoldenCache, SweepPlan, execute_sweep
from repro.core.metadata_campaign import MetadataCampaign
from repro.core.scenario import parse_scenario
from repro.errors import ConfigError
from repro.core.outcomes import Outcome, OutcomeTally
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.params import montage_default, nyx_default, qmcpack_default

APP_FACTORIES = {
    "nyx": nyx_default,
    "qmcpack": qmcpack_default,
    "montage": montage_default,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes (1 = serial; results are "
                             "identical either way)")
    parser.add_argument("--out", default=None, metavar="RESULTS.jsonl",
                        help="stream every run record to this JSONL file")
    parser.add_argument("--resume", action="store_true",
                        help="skip run indices already present in --out")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FFIS reproduction: storage-fault injection for HPC apps")
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list the reproducible tables/figures")

    run = sub.add_parser("run", help="run one experiment driver")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS),
                     help="experiment id (e.g. table3, figure7)")
    run.add_argument("--workers", type=_positive_int, default=1,
                     help="worker processes for the driver's campaigns")
    run.add_argument("--out", default=None, metavar="RESULTS.jsonl",
                     help="checkpoint the driver's sweep to this JSONL "
                          "file (drivers with campaign sweeps only)")
    run.add_argument("--resume", action="store_true",
                     help="re-execute only the (cell, run) pairs missing "
                          "from --out")

    sweep = sub.add_parser(
        "sweep", help="run a fused sweep: a grid of apps x fault models "
                      "sharing one profile/golden cache and worker pool")
    sweep.add_argument("--app", action="append", required=True,
                       choices=sorted(APP_FACTORIES), metavar="APP",
                       help="application under test (repeatable)")
    sweep.add_argument("--model", action="append", required=True,
                       choices=["BF", "SW", "DW", "RC"], metavar="MODEL",
                       help="fault model (repeatable)")
    sweep.add_argument("--runs", type=_positive_int, default=100,
                       help="runs per cell (default 100)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--phase", default=None,
                       help="restrict every cell's injection to one "
                            "app phase (e.g. mAdd)")
    sweep.add_argument("--scenario", action="append", default=None,
                       metavar="SPEC",
                       help="fault scenario axis of the grid (repeatable; "
                            "single | k=K[,window=W] | burst=N | "
                            "decay[:bytes=N][,region=LO-HI][,after=PHASE]; "
                            "default single)")
    _add_engine_options(sweep)

    campaign = sub.add_parser("campaign", help="run a fault-injection campaign")
    campaign.add_argument("--app", choices=sorted(APP_FACTORIES), required=True)
    campaign.add_argument("--model", choices=["BF", "SW", "DW", "RC"],
                          help="fault model for an instance-targeted campaign")
    # Defaults resolved in _cmd_campaign so flags that don't apply to the
    # chosen campaign style are rejected instead of silently ignored.
    campaign.add_argument("--runs", type=int, default=None,
                          help="campaign size (default 100; --model only)")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--phase", default=None,
                          help="restrict injection to one app phase "
                               "(e.g. mProjExec; --model only)")
    campaign.add_argument("--scenario", default=None, metavar="SPEC",
                          help="fault scenario (single | k=K[,window=W] | "
                               "burst=N | decay[:bytes=N][,region=LO-HI]"
                               "[,after=PHASE]; e.g. --scenario k=3,window=8; "
                               "--model campaigns only)")
    campaign.add_argument("--metadata-mode", choices=["random-bit", "all-bits"],
                          default=None,
                          help="run a per-byte metadata sweep instead of an "
                               "instance-targeted campaign")
    campaign.add_argument("--stride", type=_positive_int, default=None,
                          help="metadata sweep: corrupt every Nth byte "
                               "(default 1; --metadata-mode only)")
    _add_engine_options(campaign)

    project = sub.add_parser(
        "project", help="project campaign rates to system scale")
    project.add_argument("--app", choices=sorted(APP_FACTORIES), required=True)
    project.add_argument("--model", choices=["BF", "SW", "DW", "RC"], required=True)
    project.add_argument("--runs", type=int, default=100)
    project.add_argument("--seed", type=int, default=0)
    project.add_argument("--phase", default=None)
    project.add_argument("--uber", type=float, default=FIELD_STUDY_UBER_RANGE[1],
                         help="device uncorrectable bit error rate "
                              "(default: the field-study upper bound 1e-9)")
    project.add_argument("--nodes", type=int, default=1000)
    project.add_argument("--runs-per-day", type=float, default=24.0)
    _add_engine_options(project)
    return parser


def _cmd_experiments(out) -> int:
    for exp in EXPERIMENTS.values():
        print(f"{exp.id:<9} {exp.description}  [{exp.bench}]", file=out)
    return 0


def _cmd_run(args, parser, out) -> int:
    experiment = get_experiment(args.experiment)
    kwargs = {"workers": args.workers}
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    if args.out is not None:
        params = inspect.signature(experiment.driver).parameters
        if "results_path" not in params:
            parser.error(f"{experiment.id} runs no campaign sweep; "
                         "--out/--resume do not apply")
        kwargs["results_path"] = args.out
        kwargs["resume"] = args.resume
    print(f"running {experiment.id}: {experiment.description}", file=out)
    result = experiment.driver(**kwargs)
    print(result.render(), file=out)
    return 0


def _parse_scenario_arg(parser, spec: str):
    """Validate a --scenario spec, reporting bad ones as argparse errors."""
    try:
        return parse_scenario(spec)
    except ConfigError as exc:
        parser.error(str(exc))


def _cmd_sweep(args, parser, out) -> int:
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    apps = {name: APP_FACTORIES[name]() for name in dict.fromkeys(args.app)}
    models = list(dict.fromkeys(args.model))
    scenarios = [_parse_scenario_arg(parser, spec)
                 for spec in dict.fromkeys(args.scenario or ["single"])]
    cache = ProfileGoldenCache()
    cells, campaigns = [], {}
    for name, app in apps.items():
        for model in models:
            for scenario in scenarios:
                label = f"{name}-{model}"
                if not scenario.legacy:
                    label += f"-{scenario.stamp()}"
                config = CampaignConfig(fault_model=model, n_runs=args.runs,
                                        seed=args.seed, phase=args.phase,
                                        scenario=scenario)
                campaign = Campaign(app, config)
                cells.append(campaign.plan_cell(label, cache))
                campaigns[label] = campaign
    result = execute_sweep(SweepPlan(cells=tuple(cells)),
                           workers=args.workers, results_path=args.out,
                           resume=args.resume)
    for label in campaigns:
        records = result.records[label]
        tally = OutcomeTally.from_records(records)
        print(f"{label}: {tally} ({len(records)} runs)", file=out)
    print(f"fused sweep: {len(cells)} cells, {result.total} records "
          f"({result.executed} executed, {result.total - result.executed} "
          f"resumed), {cache.fault_free_runs()} shared fault-free runs for "
          f"{len(apps)} app(s), {result.elapsed_seconds:.1f}s", file=out)
    return 0


def _run_campaign(args) -> "CampaignResult":
    app = APP_FACTORIES[args.app]()
    config = CampaignConfig(fault_model=args.model, n_runs=args.runs,
                            seed=args.seed, phase=args.phase,
                            scenario=getattr(args, "scenario", None),
                            workers=args.workers, results_path=args.out,
                            resume=args.resume)
    return Campaign(app, config).run()


def _print_error_bars(tally, out) -> None:
    for outcome, estimate in campaign_error_bars(tally).items():
        if tally.counts[outcome]:
            print(f"  {outcome.value:<9} {estimate}", file=out)


def _run_metadata_campaign(args, out) -> int:
    app = APP_FACTORIES[args.app]()
    campaign = MetadataCampaign(app, seed=args.seed,
                                mode=args.metadata_mode, workers=args.workers)
    # The discovery trace doubles as the golden run: writers that
    # publish a field map (mini-HDF5) expose it afterwards, apps
    # without one sweep unannotated.
    located = campaign.locate_metadata_write()
    write_result = getattr(app, "last_write_result", None)
    campaign.fieldmap = getattr(write_result, "fieldmap", None)
    result = campaign.run(byte_stride=args.stride, results_path=args.out,
                          resume=args.resume, located=located)
    print(result.summary(), file=out)
    _print_error_bars(result.tally, out)
    return 0


def _cmd_campaign(args, parser, out) -> int:
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    if args.metadata_mode is not None:
        if args.model is not None:
            parser.error("--model and --metadata-mode are mutually exclusive")
        if args.runs is not None:
            parser.error("--runs applies to --model campaigns; a metadata "
                         "sweep's size is the blob size / --stride")
        if args.phase is not None:
            parser.error("--phase applies to --model campaigns")
        if args.scenario is not None:
            parser.error("--scenario applies to --model campaigns")
        if args.stride is None:
            args.stride = 1
        return _run_metadata_campaign(args, out)
    if args.model is None:
        parser.error("one of --model or --metadata-mode is required")
    if args.stride is not None:
        parser.error("--stride requires --metadata-mode")
    if args.scenario is not None:
        args.scenario = _parse_scenario_arg(parser, args.scenario)
    if args.runs is None:
        args.runs = 100
    result = _run_campaign(args)
    print(result.summary(), file=out)
    _print_error_bars(result.tally, out)
    return 0


def _cmd_project(args, parser, out) -> int:
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    result = _run_campaign(args)
    device = DeviceModel(uber=args.uber)
    projection = project_run(result, device)
    print(f"{result.summary()}", file=out)
    print(f"device UBER            : {args.uber:.3g}", file=out)
    print(f"bytes written per run  : {result.profile.bytes_written}", file=out)
    print(f"P(fault per run)       : {projection.fault_probability:.3g}", file=out)
    print(f"P(SDC per run)         : {projection.probability(Outcome.SDC):.3g}",
          file=out)
    print(f"mean runs between SDCs : {projection.runs_per_sdc():.3g}", file=out)
    daily = system_sdc_rate(projection, args.runs_per_day, args.nodes)
    print(f"expected SDCs per day on {args.nodes} nodes x "
          f"{args.runs_per_day:g} runs/day: {daily:.3g}", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "experiments":
        return _cmd_experiments(out)
    if args.command == "run":
        return _cmd_run(args, parser, out)
    if args.command == "sweep":
        return _cmd_sweep(args, parser, out)
    if args.command == "campaign":
        return _cmd_campaign(args, parser, out)
    if args.command == "project":
        return _cmd_project(args, parser, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
