"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``experiments``                   -- list the paper's tables/figures
* ``run <experiment-id>``           -- run one reproduction driver
* ``campaign --app X --model Y``    -- run a custom campaign
* ``project --app X --model Y --uber U`` -- system-level rate projection
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.projection import (
    DeviceModel,
    FIELD_STUDY_UBER_RANGE,
    project_run,
    system_sdc_rate,
)
from repro.analysis.stats import campaign_error_bars
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.outcomes import Outcome
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.params import montage_default, nyx_default, qmcpack_default

APP_FACTORIES = {
    "nyx": nyx_default,
    "qmcpack": qmcpack_default,
    "montage": montage_default,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FFIS reproduction: storage-fault injection for HPC apps")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list the reproducible tables/figures")

    run = sub.add_parser("run", help="run one experiment driver")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS),
                     help="experiment id (e.g. table3, figure7)")

    campaign = sub.add_parser("campaign", help="run a fault-injection campaign")
    campaign.add_argument("--app", choices=sorted(APP_FACTORIES), required=True)
    campaign.add_argument("--model", choices=["BF", "SW", "DW", "RC"], required=True)
    campaign.add_argument("--runs", type=int, default=100)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--phase", default=None,
                          help="restrict injection to one app phase "
                               "(e.g. mProjExec)")

    project = sub.add_parser(
        "project", help="project campaign rates to system scale")
    project.add_argument("--app", choices=sorted(APP_FACTORIES), required=True)
    project.add_argument("--model", choices=["BF", "SW", "DW", "RC"], required=True)
    project.add_argument("--runs", type=int, default=100)
    project.add_argument("--seed", type=int, default=0)
    project.add_argument("--phase", default=None)
    project.add_argument("--uber", type=float, default=FIELD_STUDY_UBER_RANGE[1],
                         help="device uncorrectable bit error rate "
                              "(default: the field-study upper bound 1e-9)")
    project.add_argument("--nodes", type=int, default=1000)
    project.add_argument("--runs-per-day", type=float, default=24.0)
    return parser


def _cmd_experiments(out) -> int:
    for exp in EXPERIMENTS.values():
        print(f"{exp.id:<9} {exp.description}  [{exp.bench}]", file=out)
    return 0


def _cmd_run(experiment_id: str, out) -> int:
    experiment = get_experiment(experiment_id)
    print(f"running {experiment.id}: {experiment.description}", file=out)
    result = experiment.driver()
    print(result.render(), file=out)
    return 0


def _run_campaign(args) -> "CampaignResult":
    app = APP_FACTORIES[args.app]()
    config = CampaignConfig(fault_model=args.model, n_runs=args.runs,
                            seed=args.seed, phase=args.phase)
    return Campaign(app, config).run()


def _cmd_campaign(args, out) -> int:
    result = _run_campaign(args)
    print(result.summary(), file=out)
    for outcome, estimate in campaign_error_bars(result.tally).items():
        if result.tally.counts[outcome]:
            print(f"  {outcome.value:<9} {estimate}", file=out)
    return 0


def _cmd_project(args, out) -> int:
    result = _run_campaign(args)
    device = DeviceModel(uber=args.uber)
    projection = project_run(result, device)
    print(f"{result.summary()}", file=out)
    print(f"device UBER            : {args.uber:.3g}", file=out)
    print(f"bytes written per run  : {result.profile.bytes_written}", file=out)
    print(f"P(fault per run)       : {projection.fault_probability:.3g}", file=out)
    print(f"P(SDC per run)         : {projection.probability(Outcome.SDC):.3g}",
          file=out)
    print(f"mean runs between SDCs : {projection.runs_per_sdc():.3g}", file=out)
    daily = system_sdc_rate(projection, args.runs_per_day, args.nodes)
    print(f"expected SDCs per day on {args.nodes} nodes x "
          f"{args.runs_per_day:g} runs/day: {daily:.3g}", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "experiments":
        return _cmd_experiments(out)
    if args.command == "run":
        return _cmd_run(args.experiment, out)
    if args.command == "campaign":
        return _cmd_campaign(args, out)
    if args.command == "project":
        return _cmd_project(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
