"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``experiments``                   -- list the paper's tables/figures
* ``run <experiment-id>``           -- run one reproduction driver
* ``study run|plan|describe``       -- declarative studies: registered
  ids (``figure7``, ``multifault``, ...), a TOML spec file, or inline
  ``--app/--model/--scenario`` axes
* ``study serve --queue DIR``       -- coordinate a distributed fleet:
  post the study's leases and merge the workers' shards when done
* ``worker --queue DIR``            -- attach to a served queue, rebuild
  the study from its spec, and execute leases until released
* ``campaign --app X --model Y``    -- run a custom campaign
* ``campaign --app X --metadata-mode M`` -- per-byte metadata sweep
* ``sweep --app X --app Y --model M ...`` -- fused multi-campaign grid
* ``project --app X --model Y --uber U`` -- system-level rate projection
* ``lint [PATH...]``                -- stdlib-only static analysis of the
  repo's determinism/fork-safety/replay-soundness invariants

``study``, ``sweep``, and ``campaign`` all compile onto the same
declarative Study path (one :class:`~repro.study.StudySpec` executed as
one fused sweep), so the engine knobs behave identically everywhere:
``--workers N`` fans runs out over a process pool (bit-identical to
serial), ``--out F`` streams each record to a JSONL checkpoint, and
``--resume`` continues an interrupted execution from that file.  ``run``
forwards the same knobs to the drivers whose registry entry declares
them (e.g. ``repro run figure7 --workers 4 --out sweep.jsonl
--resume``).

Imports are deferred into the command handlers so ``repro --version``
and ``--help`` never pay for numpy or the application stack.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.devtools.lint.cli import add_arguments as _add_lint_arguments
from repro.devtools.lint.cli import run as _run_lint
from repro.errors import ConfigError
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.study.apps import app_ids

FAULT_MODEL_CHOICES = ["BF", "SW", "DW", "RC"]

SCENARIO_GRAMMAR = ("single | k=K[,window=W] | burst=N | "
                    "decay[:bytes=N][,region=LO-HI][,after=PHASE]")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_replay_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-replay", action="store_true",
                        help="disable prefix replay: execute every run cold "
                             "from an empty file system (records are "
                             "byte-identical either way; equivalent to "
                             "setting REPRO_NO_REPLAY=1)")


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes (1 = serial; results are "
                             "identical either way)")
    parser.add_argument("--out", default=None, metavar="RESULTS.jsonl",
                        help="stream every run record to this JSONL file")
    parser.add_argument("--resume", action="store_true",
                        help="skip run indices already present in --out")
    _add_replay_option(parser)


def _add_axis_options(parser: argparse.ArgumentParser,
                      required: bool = True) -> None:
    """The study grid axes shared by ``sweep`` and inline ``study``."""
    parser.add_argument("--app", action="append", required=required,
                        choices=app_ids(), metavar="APP",
                        help="application under test (repeatable)")
    parser.add_argument("--model", action="append",
                        required=required, choices=FAULT_MODEL_CHOICES,
                        metavar="MODEL",
                        help="fault model (repeatable)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--phase", default=None,
                        help="restrict every cell's injection to one "
                             "app phase (e.g. mAdd)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="SPEC",
                        help="fault scenario axis of the grid (repeatable; "
                             f"{SCENARIO_GRAMMAR}; default single)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FFIS reproduction: storage-fault injection for HPC apps")
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list the reproducible tables/figures")

    run = sub.add_parser("run", help="run one experiment driver")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS),
                     help="experiment id (e.g. table3, figure7)")
    run.add_argument("--workers", type=_positive_int, default=1,
                     help="worker processes for the driver's campaigns")
    run.add_argument("--out", default=None, metavar="RESULTS.jsonl",
                     help="checkpoint the driver's sweep to this JSONL "
                          "file (drivers with campaign sweeps only)")
    run.add_argument("--resume", action="store_true",
                     help="re-execute only the (cell, run) pairs missing "
                          "from --out")
    _add_replay_option(run)

    study = sub.add_parser(
        "study", help="declarative studies: one serializable spec per grid")
    ssub = study.add_subparsers(dest="study_command", required=True)
    study_help = {
        "run": "execute a study and print its report",
        "plan": "list a study's cells without executing anything",
        "describe": "print a study's canonical TOML spec",
        "serve": "coordinate a distributed fleet: post the study's "
                 "leases to a shared queue directory, reassign expired "
                 "claims, and merge the workers' shards when done",
    }
    for name in ("run", "plan", "describe", "serve"):
        p = ssub.add_parser(name, help=study_help[name])
        p.add_argument("study", nargs="?", default=None, metavar="STUDY",
                       help="registered study id (see `repro study list`)")
        p.add_argument("--file", default=None, metavar="SPEC.toml",
                       help="load the study spec from a TOML file")
        _add_axis_options(p, required=False)
        p.add_argument("--runs", type=_positive_int, default=None,
                       help="runs per cell (default: the spec's, or the "
                            "REPRO_FI_RUNS-scaled experiment default)")
        if name == "run":
            p.add_argument("--workers", type=_positive_int, default=None,
                           help="worker processes (default: the spec's)")
            p.add_argument("--hosts", type=_positive_int, default=None,
                           help="> 1 runs the study through the lease-queue "
                                "distributed engine with this many forked "
                                "workers (results byte-identical to serial)")
            p.add_argument("--queue", default=None, metavar="DIR",
                           help="queue directory for --hosts (default: a "
                                "throwaway; name one to survive coordinator "
                                "crashes)")
            p.add_argument("--quarantine-after", type=_positive_int,
                           default=None, metavar="N",
                           help="attempts before a repeatedly failing "
                                "lease is quarantined instead of "
                                "reassigned (default 3); the campaign "
                                "then completes around the hole and "
                                "reports it")
        if name in ("run", "serve"):
            p.add_argument("--out", default=None, metavar="RESULTS.jsonl",
                           help="stream every run record to this JSONL file")
            p.add_argument("--resume", action="store_true",
                           help="skip (cell, run) pairs already in --out")
            _add_replay_option(p)
        if name == "serve":
            p.add_argument("--queue", required=True, metavar="DIR",
                           help="shared queue directory workers attach to "
                                "(`repro worker --queue DIR`)")
            p.add_argument("--hosts", type=_positive_int, default=2,
                           help="expected fleet size (sizes the default "
                                "lease granularity; workers may be fewer "
                                "or more)")
            p.add_argument("--lease-runs", type=_positive_int, default=None,
                           help="runs per lease (default: adaptive)")
            p.add_argument("--lease-ttl", type=float, default=30.0,
                           help="seconds without a heartbeat before a "
                                "claimed lease is reassigned (default 30)")
            p.add_argument("--timeout", type=float, default=None,
                           help="abort (resumably) if the campaign is "
                                "still incomplete after this many seconds")
            p.add_argument("--quarantine-after", type=_positive_int,
                           default=None, metavar="N",
                           help="attempts before a repeatedly failing "
                                "lease is quarantined instead of "
                                "reassigned (default 3); the campaign "
                                "then completes around the hole and "
                                "reports it")
    ssub.add_parser("list", help="list the registered studies")

    worker = sub.add_parser(
        "worker", help="attach to a served queue: rebuild the study from "
                       "its spec, verify it against the queue manifest, "
                       "and execute leases until the coordinator finishes")
    worker.add_argument("--queue", required=True, metavar="DIR",
                        help="the coordinator's queue directory")
    worker.add_argument("study", nargs="?", default=None, metavar="STUDY",
                        help="registered study id the coordinator is serving")
    worker.add_argument("--file", default=None, metavar="SPEC.toml",
                        help="load the study spec from a TOML file")
    _add_axis_options(worker, required=False)
    worker.add_argument("--runs", type=_positive_int, default=None,
                        help="runs per cell (must match the served study; "
                             "the queue manifest verifies it)")
    worker.add_argument("--id", default=None, metavar="WORKER_ID",
                        help="stable worker identity (default host<pid>); "
                             "reusing an id after a crash appends to the "
                             "same shard")
    worker.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="idle poll interval (default 0.5)")
    worker.add_argument("--reclaim-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="let idle workers expire peers' stale claims "
                             "themselves (coordinator-less fleets)")
    worker.add_argument("--max-idle-polls", type=_positive_int, default=None,
                        help="exit after this many consecutive empty polls "
                             "(default: poll until the coordinator finishes)")
    _add_replay_option(worker)

    sweep = sub.add_parser(
        "sweep", help="run a fused sweep: a grid of apps x fault models "
                      "sharing one profile/golden cache and worker pool")
    _add_axis_options(sweep, required=True)
    sweep.add_argument("--runs", type=_positive_int, default=100,
                       help="runs per cell (default 100)")
    _add_engine_options(sweep)

    campaign = sub.add_parser("campaign", help="run a fault-injection campaign")
    campaign.add_argument("--app", choices=app_ids(), required=True)
    campaign.add_argument("--model", choices=FAULT_MODEL_CHOICES,
                          help="fault model for an instance-targeted campaign")
    # Defaults resolved in _cmd_campaign so flags that don't apply to the
    # chosen campaign style are rejected instead of silently ignored.
    campaign.add_argument("--runs", type=int, default=None,
                          help="campaign size (default 100; --model only)")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--phase", default=None,
                          help="restrict injection to one app phase "
                               "(e.g. mProjExec; --model only)")
    campaign.add_argument("--scenario", default=None, metavar="SPEC",
                          help=f"fault scenario ({SCENARIO_GRAMMAR}; "
                               "e.g. --scenario k=3,window=8; "
                               "--model campaigns only)")
    campaign.add_argument("--metadata-mode", choices=["random-bit", "all-bits"],
                          default=None,
                          help="run a per-byte metadata sweep instead of an "
                               "instance-targeted campaign")
    campaign.add_argument("--stride", type=_positive_int, default=None,
                          help="metadata sweep: corrupt every Nth byte "
                               "(default 1; --metadata-mode only)")
    _add_engine_options(campaign)

    lint = sub.add_parser(
        "lint", help="static analysis: determinism, fork-safety, and "
                     "replay-soundness rules (stdlib-only, runs before "
                     "any dependency install)")
    _add_lint_arguments(lint)

    project = sub.add_parser(
        "project", help="project campaign rates to system scale")
    project.add_argument("--app", choices=app_ids(), required=True)
    project.add_argument("--model", choices=FAULT_MODEL_CHOICES, required=True)
    project.add_argument("--runs", type=int, default=100)
    project.add_argument("--seed", type=int, default=0)
    project.add_argument("--phase", default=None)
    project.add_argument("--uber", type=float, default=None,
                         help="device uncorrectable bit error rate "
                              "(default: the field-study upper bound 1e-9)")
    project.add_argument("--nodes", type=int, default=1000)
    project.add_argument("--runs-per-day", type=float, default=24.0)
    _add_engine_options(project)
    return parser


def _cmd_experiments(out) -> int:
    for exp in EXPERIMENTS.values():
        print(f"{exp.id:<9} {exp.description}  [{exp.bench}]", file=out)
    return 0


def _cmd_run(args, parser, out) -> int:
    experiment = get_experiment(args.experiment)
    kwargs = {"workers": args.workers}
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    if args.out is not None:
        if not experiment.accepts("results_path"):
            parser.error(f"{experiment.id} runs no campaign sweep; "
                         "--out/--resume do not apply")
        kwargs["results_path"] = args.out
        kwargs["resume"] = args.resume
    print(f"running {experiment.id}: {experiment.description}", file=out)
    result = experiment.resolve()(**kwargs)
    print(result.render(), file=out)
    return 0


# -- the declarative study path -------------------------------------------------


def _inline_spec(args, parser):
    """A StudySpec from inline ``--app/--model/--scenario`` axes."""
    from repro.study import ModelSpec, ScenarioSpec, StudySpec, TargetSpec

    if not args.app or not args.model:
        parser.error("an inline study needs --app and --model "
                     "(or name a registered study / pass --file)")
    try:
        return StudySpec(
            name="cli",
            targets=tuple(TargetSpec(app=name, phase=args.phase)
                          for name in dict.fromkeys(args.app)),
            models=tuple(ModelSpec(model=m)
                         for m in dict.fromkeys(args.model)),
            scenarios=tuple(
                ScenarioSpec(scenario=s)
                for s in dict.fromkeys(args.scenario or ["single"])),
            seed=args.seed if args.seed is not None else 0)
    except ConfigError as exc:
        parser.error(str(exc))


def _resolve_study(args, parser):
    """(spec, render) from a registered id, a TOML file, or inline axes."""
    from repro.study import get_study, load_spec

    sources = sum(1 for given in (args.study, args.file, args.app) if given)
    if sources != 1:
        parser.error("give exactly one study source: a registered id, "
                     "--file SPEC.toml, or inline --app/--model axes")
    if args.study or args.file:
        # Axis flags only shape inline specs; silently ignoring them
        # against a registered/file study would misreport the grid.
        for flag, given in (("--model", args.model),
                            ("--scenario", args.scenario),
                            ("--phase", args.phase)):
            if given:
                parser.error(f"{flag} applies to inline --app studies; "
                             "edit the spec (or `repro study describe` it "
                             "to TOML) to change a named study's axes")
    render = None
    if args.study is not None:
        try:
            definition = get_study(args.study)
        except KeyError as exc:
            parser.error(str(exc.args[0]))
        spec = definition.build()
        render = definition.render
    elif args.file is not None:
        try:
            spec = load_spec(args.file)
        except (OSError, ConfigError) as exc:
            parser.error(f"--file: {exc}")
    else:
        spec = _inline_spec(args, parser)
    if args.runs is not None and not any(t.kind == "fault"
                                         for t in spec.targets):
        parser.error("--runs applies to fault campaigns; a metadata "
                     "sweep's size is the blob size / stride")
    try:
        spec = spec.with_knobs(
            runs=args.runs, seed=args.seed,
            workers=getattr(args, "workers", None),
            out=getattr(args, "out", None),
            resume=True if getattr(args, "resume", False) else None)
    except ConfigError as exc:
        parser.error(str(exc))
    return spec, render


def _cmd_study(args, parser, out) -> int:
    if args.study_command == "list":
        from repro.study import STUDIES

        for definition in sorted(STUDIES.values(), key=lambda d: d.id):
            print(f"{definition.id:<11} {definition.description}", file=out)
        return 0
    spec, render = _resolve_study(args, parser)
    if args.study_command == "describe":
        print(spec.to_toml(), file=out, end="")
        return 0
    if args.study_command == "plan":
        print(spec.describe(), file=out)
        return 0
    from repro.study import Study

    if args.study_command == "serve":
        from repro.study import serve_study

        def _report(counts):
            quarantined = counts.get("quarantined", 0)
            parked = f", {quarantined} quarantined" if quarantined else ""
            print(f"leases: {counts['done']}/{counts['total']} done, "
                  f"{counts['leased']} leased, {counts['pending']} pending"
                  f"{parked}",
                  file=out)

        try:
            plan = Study(spec).plan()
        except ConfigError as exc:
            parser.error(str(exc))
        print(f"serving {len(plan)} runs at {args.queue}; attach workers "
              f"with: repro worker --queue {args.queue} ...", file=out)
        serve_knobs = {}
        if args.quarantine_after is not None:
            serve_knobs["quarantine_after"] = args.quarantine_after
        results = serve_study(
            plan, args.queue, lease_runs=args.lease_runs,
            lease_ttl=args.lease_ttl, hosts=args.hosts,
            results_path=spec.out, resume=bool(spec.resume),
            timeout=args.timeout, progress=_changed_only(_report),
            **serve_knobs)
        print(render(results) if render is not None else results.render(),
              file=out)
        print(results.footer(), file=out)
        return 0
    run_knobs = {}
    if getattr(args, "quarantine_after", None) is not None:
        run_knobs["quarantine_after"] = args.quarantine_after
    try:
        results = Study(spec).run(hosts=args.hosts, queue_root=args.queue,
                                  **run_knobs)
    except ConfigError as exc:
        parser.error(str(exc))
    print(render(results) if render is not None else results.render(),
          file=out)
    print(results.footer(), file=out)
    return 0


def _changed_only(report):
    """Wrap a progress callback to fire only when the counts change."""
    last = {}

    def _maybe(counts):
        nonlocal last
        if counts != last:
            last = counts
            report(counts)
    return _maybe


def _cmd_worker(args, parser, out) -> int:
    spec, _ = _resolve_study(args, parser)
    from repro.study import run_study_worker

    stats = run_study_worker(
        args.queue, spec, worker_id=args.id, poll_interval=args.poll,
        reclaim_ttl=args.reclaim_ttl, max_idle_polls=args.max_idle_polls)
    retried = f", {stats.retries} reassigned" if stats.retries else ""
    failed = f", {stats.failures} failed back" if stats.failures else ""
    print(f"worker {stats.worker_id}: {stats.leases} leases, "
          f"{stats.runs} runs{retried}{failed}", file=out)
    return 0


def _cmd_sweep(args, parser, out) -> int:
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    from repro.study import Study

    spec = _inline_spec(args, parser).with_knobs(
        runs=args.runs, workers=args.workers, out=args.out,
        resume=True if args.resume else None)
    results = Study(spec).run()
    print(results.summary(), file=out)
    return 0


def _run_campaign_study(args, parser):
    """One instance-targeted campaign through the Study path; returns
    the classic :class:`CampaignResult` (summary/profile included)."""
    from repro.study import (
        ModelSpec,
        ScenarioSpec,
        Study,
        StudySpec,
        TargetSpec,
    )

    try:
        spec = StudySpec(
            name="campaign",
            targets=(TargetSpec(app=args.app, phase=args.phase),),
            models=(ModelSpec(model=args.model),),
            scenarios=(ScenarioSpec(scenario=args.scenario or "single"),),
            runs=args.runs, seed=args.seed)
    except ConfigError as exc:
        parser.error(str(exc))
    plan = Study(spec).plan()
    results = plan.execute(workers=args.workers, results_path=args.out,
                           resume=args.resume)
    (result,) = plan.campaign_results(results).values()
    result.elapsed_seconds = results.elapsed_seconds
    return result


def _print_error_bars(tally, out) -> None:
    from repro.analysis.stats import campaign_error_bars

    for outcome, estimate in campaign_error_bars(tally).items():
        if tally.counts[outcome]:
            print(f"  {outcome.value:<9} {estimate}", file=out)


def _run_metadata_campaign(args, parser, out) -> int:
    from repro.core.metadata_campaign import MetadataCampaignResult
    from repro.study import Study, StudySpec, TargetSpec

    try:
        spec = StudySpec(
            name="campaign",
            targets=(TargetSpec(app=args.app, kind="metadata",
                                mode=args.metadata_mode,
                                stride=args.stride),),
            seed=args.seed)
    except ConfigError as exc:
        parser.error(str(exc))
    plan = Study(spec).plan()
    results = plan.execute(workers=args.workers, results_path=args.out,
                           resume=args.resume)
    (cell,) = plan.cells
    result = MetadataCampaignResult(
        app_name=cell.planner.app.name, mode=cell.planner.mode,
        records=results.cell(cell.key), metadata=cell.metadata,
        fieldmap=cell.planner.fieldmap,
        elapsed_seconds=results.elapsed_seconds)
    print(result.summary(), file=out)
    _print_error_bars(result.tally, out)
    return 0


def _cmd_campaign(args, parser, out) -> int:
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    if args.metadata_mode is not None:
        if args.model is not None:
            parser.error("--model and --metadata-mode are mutually exclusive")
        if args.runs is not None:
            parser.error("--runs applies to --model campaigns; a metadata "
                         "sweep's size is the blob size / --stride")
        if args.phase is not None:
            parser.error("--phase applies to --model campaigns")
        if args.scenario is not None:
            parser.error("--scenario applies to --model campaigns")
        if args.stride is None:
            args.stride = 1
        return _run_metadata_campaign(args, parser, out)
    if args.model is None:
        parser.error("one of --model or --metadata-mode is required")
    if args.stride is not None:
        parser.error("--stride requires --metadata-mode")
    if args.runs is None:
        args.runs = 100
    result = _run_campaign_study(args, parser)
    print(result.summary(), file=out)
    _print_error_bars(result.tally, out)
    return 0


def _cmd_project(args, parser, out) -> int:
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    from repro.analysis.projection import (
        DeviceModel,
        FIELD_STUDY_UBER_RANGE,
        project_run,
        system_sdc_rate,
    )
    from repro.core.outcomes import Outcome

    args.scenario = None
    result = _run_campaign_study(args, parser)
    uber = args.uber if args.uber is not None else FIELD_STUDY_UBER_RANGE[1]
    device = DeviceModel(uber=uber)
    projection = project_run(result, device)
    print(f"{result.summary()}", file=out)
    print(f"device UBER            : {uber:.3g}", file=out)
    print(f"bytes written per run  : {result.profile.bytes_written}", file=out)
    print(f"P(fault per run)       : {projection.fault_probability:.3g}", file=out)
    print(f"P(SDC per run)         : {projection.probability(Outcome.SDC):.3g}",
          file=out)
    print(f"mean runs between SDCs : {projection.runs_per_sdc():.3g}", file=out)
    daily = system_sdc_rate(projection, args.runs_per_day, args.nodes)
    print(f"expected SDCs per day on {args.nodes} nodes x "
          f"{args.runs_per_day:g} runs/day: {daily:.3g}", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    no_replay = getattr(args, "no_replay", False)
    previous = os.environ.get("REPRO_NO_REPLAY")
    if no_replay:
        # The universal escape hatch: every execution path (and every
        # forked worker) consults this before restoring a snapshot.
        # Restored afterwards so one --no-replay invocation does not
        # disable replay for the rest of an embedding process.
        os.environ["REPRO_NO_REPLAY"] = "1"
    try:
        if args.command == "experiments":
            return _cmd_experiments(out)
        if args.command == "run":
            return _cmd_run(args, parser, out)
        if args.command == "study":
            return _cmd_study(args, parser, out)
        if args.command == "worker":
            return _cmd_worker(args, parser, out)
        if args.command == "lint":
            return _run_lint(args, out)
        if args.command == "sweep":
            return _cmd_sweep(args, parser, out)
        if args.command == "campaign":
            return _cmd_campaign(args, parser, out)
        if args.command == "project":
            return _cmd_project(args, parser, out)
        raise AssertionError(f"unhandled command {args.command!r}")
    finally:
        if no_replay:
            if previous is None:
                os.environ.pop("REPRO_NO_REPLAY", None)
            else:
                os.environ["REPRO_NO_REPLAY"] = previous


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
