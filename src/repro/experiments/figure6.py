"""Figure 6 -- halo-cell candidates under a faulty Mantissa Size.

The paper shows a halo whose candidate cells fall below the formation
threshold when the Mantissa Size field is corrupted.  The reproduction
measures the candidate count and surviving halo count, golden vs faulty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.nyx import NyxApplication, candidate_count
from repro.core.metadata_campaign import MetadataCampaign, _ByteCorruptionHook
from repro.experiments.params import nyx_default
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem


@dataclass
class Figure6Result:
    golden_candidates: int
    faulty_candidates: int
    golden_halos: int
    faulty_halos: int

    def render(self) -> str:
        return (
            "Figure 6: halo-cell candidates with a faulty Mantissa Size\n"
            f"  golden: {self.golden_candidates} candidate cells, "
            f"{self.golden_halos} halos\n"
            f"  faulty: {self.faulty_candidates} candidate cells, "
            f"{self.faulty_halos} halos\n"
            "  (paper: candidate count reduced; halos fail to form)\n"
        )


def run_figure6(app: Optional[NyxApplication] = None, bit: int = 1,
                workers: int = 1) -> Figure6Result:
    """``workers`` is part of the uniform driver interface; this figure
    decodes one targeted corruption, serially."""
    if app is None:
        app = nyx_default()
    campaign = MetadataCampaign(app, workers=workers)
    info, _ = campaign.locate_metadata_write()
    fieldmap = app.last_write_result.fieldmap
    span = next(s for s in fieldmap if "Mantissa Size" in s.name)

    fs = FFISFileSystem()
    fs.interposer.add_hook(
        "ffis_write",
        _ByteCorruptionHook(info.write_index, span.start - info.file_offset, bit))
    with mount(fs) as mp:
        app.execute(mp)
        faulty_rho = app.read_density(mp)

    rho = app.rho.astype(np.float64)
    return Figure6Result(
        golden_candidates=candidate_count(rho, app.threshold_factor),
        faulty_candidates=candidate_count(faulty_rho, app.threshold_factor),
        golden_halos=len(app.find_halos(rho)),
        faulty_halos=len(app.find_halos(faulty_rho)),
    )
