"""Figure 8 -- halo-mass distribution, original vs DROPPED_WRITE data.

The paper compares the halo-finder mass histogram on original and
DW-faulty baryon density, noting larger-mass halos are more susceptible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.distributions import MassHistogram, mass_histogram
from repro.apps.nyx import NyxApplication
from repro.core.fault_models import DroppedWriteFault
from repro.core.injector import FaultInjector
from repro.core.signature import FaultSignature
from repro.experiments.params import nyx_default
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.util.rngstream import RngStream


@dataclass
class Figure8Result:
    golden: MassHistogram
    faulty: MassHistogram
    golden_halos: int
    faulty_halos: int

    def render(self) -> str:
        centres, g = self.golden.series()
        _, f = self.faulty.series()
        lines = ["Figure 8: halo mass distribution, original vs DROPPED_WRITE",
                 "  mass-bin centre   original  faulty"]
        for c, a, b in zip(centres, g, f):
            marker = "  <-- differs" if a != b else ""
            lines.append(f"  {c:14.1f}   {a:8d}  {b:6d}{marker}")
        lines.append(f"  total halos: {self.golden_halos} -> {self.faulty_halos}")
        return "\n".join(lines) + "\n"


def run_figure8(app: Optional[NyxApplication] = None,
                seed: int = 8, n_bins: int = 8,
                max_tries: int = 64, workers: int = 1) -> Figure8Result:
    """Inject dropped data writes until one visibly reshapes the histogram.

    Every dropped write is an SDC (the average shifts); the figure wants
    the *mass-distribution* view, which moves when the dropped block
    overlaps halo cells -- the paper's "halos with larger mass ... are
    more susceptible".  The search mirrors how such a case would be
    picked from campaign records for visualization.  It stops at the
    first qualifying instance, so it stays serial; ``workers`` is part
    of the uniform driver interface.
    """
    if app is None:
        app = nyx_default()
    signature = FaultSignature(model=DroppedWriteFault())

    golden_catalog = app.find_halos(app.rho.astype(np.float64))
    masses = golden_catalog.masses
    mass_range = (float(masses.min()) * 0.8, float(masses.max()) * 1.2)
    golden_hist = mass_histogram(golden_catalog, n_bins=n_bins, mass_range=mass_range)

    rng = RngStream(seed, "figure8").generator()
    best: Optional[Figure8Result] = None
    for _ in range(max_tries):
        instance = int(rng.integers(0, 200))
        fs = FFISFileSystem()
        FaultInjector(signature).arm(fs, instance, RngStream(seed, instance).generator())
        with mount(fs) as mp:
            app.execute(mp)
            faulty_rho = app.read_density(mp)
        faulty_catalog = app.find_halos(faulty_rho)
        if len(faulty_catalog) == 0:
            continue
        faulty_hist = mass_histogram(faulty_catalog, n_bins=n_bins,
                                     mass_range=mass_range)
        result = Figure8Result(golden=golden_hist, faulty=faulty_hist,
                               golden_halos=len(golden_catalog),
                               faulty_halos=len(faulty_catalog))
        if not np.array_equal(faulty_hist.counts, golden_hist.counts):
            return result
        best = result
    if best is None:
        raise RuntimeError("no dropped write produced a usable catalog")
    return best
