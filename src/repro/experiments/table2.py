"""Table II -- description of the tested HPC applications.

The paper reports domain, package size, LoC and method for Nyx, QMCPACK,
Montage.  The reproduction reports the same columns for the mini
implementations, with package size *measured* (bytes the workload writes
through FFIS in a fault-free run) and LoC counted from the shipped
modules -- honest numbers for the scale actually under test.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List

import repro.apps.montage as montage_pkg
import repro.apps.nyx as nyx_pkg
import repro.apps.qmcpack as qmcpack_pkg
from repro.analysis.tables import render_table
from repro.core.fault_models import BitFlipFault
from repro.core.profiler import IOProfiler
from repro.core.signature import FaultSignature
from repro.experiments.params import montage_default, nyx_default, qmcpack_default

PAPER_ROWS = [
    ("Nyx", "Astrophysics", "71.9MB", "21K",
     "Adaptive mesh refinement (AMR) based cosmological simulation"),
    ("QMCPACK", "Quantum Chemistry", "381MB", "403K",
     "Quantum Monte Carlo simulation for electronic structures of molecules"),
    ("Montage", "Astronomy", "126MB", "31K",
     "Astronomical image mosaic"),
]


@dataclass
class Table2Row:
    benchmark: str
    domain: str
    written_bytes: int
    loc: int
    writes: int
    method: str


@dataclass
class Table2Result:
    rows: List[Table2Row] = field(default_factory=list)

    def render(self) -> str:
        measured = render_table(
            ["Benchmark", "Domain", "I/O written", "LoC (mini)", "writes", "Method"],
            [[r.benchmark, r.domain, f"{r.written_bytes / 1024:.0f}KB",
              str(r.loc), str(r.writes), r.method] for r in self.rows],
            title="Table II (measured, mini-scale)")
        paper = render_table(
            ["Benchmark", "Domain", "Package Size", "LoC", "Method"],
            [list(map(str, row)) for row in PAPER_ROWS],
            title="Table II (paper, production-scale)")
        return measured + "\n" + paper


def _package_loc(package) -> int:
    total = 0
    pkg_dir = os.path.dirname(package.__file__)
    for name in os.listdir(pkg_dir):
        if name.endswith(".py"):
            with open(os.path.join(pkg_dir, name), "r", encoding="utf-8") as f:
                total += sum(1 for line in f if line.strip())
    return total


def run_table2(workers: int = 1) -> Table2Result:
    """``workers`` is part of the uniform driver interface; this table
    profiles each application once and runs serially."""
    result = Table2Result()
    signature = FaultSignature(model=BitFlipFault())
    specs = [
        (nyx_default(), nyx_pkg, "Astrophysics",
         "AMR-style cosmological density snapshot + FoF halo finder"),
        (qmcpack_default(), qmcpack_pkg, "Quantum Chemistry",
         "VMC+DMC quantum Monte Carlo for the He atom"),
        (montage_default(), montage_pkg, "Astronomy",
         "Astronomical image mosaic (project/diff/background/add)"),
    ]
    for app, package, domain, method in specs:
        profile = IOProfiler().profile(app, signature)
        result.rows.append(Table2Row(
            benchmark=app.name, domain=domain,
            written_bytes=profile.bytes_written,
            loc=_package_loc(package),
            writes=profile.total_count,
            method=method))
    return result
