"""Shared workload scales and environment knobs for the experiments."""

from __future__ import annotations

import os

from repro.apps.montage import MontageApplication, SkyConfig
from repro.apps.nyx import FieldConfig, NyxApplication
from repro.apps.qmcpack import QmcpackApplication

#: The paper's campaign size per (application x fault model) cell.
PAPER_RUNS = 1000

#: Master seed shared by the stock experiments (replayable end to end).
EXPERIMENT_SEED = 2021


def default_runs(default: int = 150) -> int:
    """Campaign size: ``REPRO_FI_RUNS`` env var, or *default*.

    Set ``REPRO_FI_RUNS=1000`` to reproduce the paper's statistics
    (runtime scales linearly).
    """
    raw = os.environ.get("REPRO_FI_RUNS", "")
    if not raw:
        return default
    value = int(raw)
    if value < 1:
        raise ValueError(f"REPRO_FI_RUNS must be >= 1, got {value}")
    return value


def nyx_default(seed: int = EXPERIMENT_SEED) -> NyxApplication:
    """The 64^3 Nyx workload used by the Fig. 7/8 campaigns."""
    return NyxApplication(seed=seed)


def nyx_small(seed: int = EXPERIMENT_SEED) -> NyxApplication:
    """A 24^3 Nyx used by the byte-exhaustive metadata campaigns.

    The metadata blob is the same size regardless of the data extent, so
    the smaller field only accelerates the ~2,500 per-byte runs.
    """
    config = FieldConfig(shape=(24, 24, 24), n_halos=4,
                         halo_amplitude=(300.0, 700.0),
                         halo_radius=(0.7, 1.0))
    return NyxApplication(seed=seed, field_config=config, min_cells=5)


def qmcpack_default(seed: int = EXPERIMENT_SEED) -> QmcpackApplication:
    return QmcpackApplication(seed=seed)


def montage_default(seed: int = EXPERIMENT_SEED) -> MontageApplication:
    return MontageApplication(seed=seed, sky_config=SkyConfig())
