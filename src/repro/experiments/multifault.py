"""Multi-fault characterization: outcome rates vs fault count k.

The paper's grid (Fig. 7) holds the fault count fixed at one per run;
this driver sweeps it.  For each application (Nyx, QMCPACK, Montage) and
each k in ``K_VALUES``, a campaign injects k faults per run -- k=1 via
the legacy single-fault scenario (bit-identical to the Fig. 7 cells),
k>1 via :class:`~repro.core.scenario.KFaults` -- and the per-app
SDC-vs-k curve is tabulated from the same interval estimates the paper
quotes.

The grid is a registered declarative study
(:func:`repro.study.registry.multifault_spec`) compiled through
:class:`~repro.study.Study`: every application's fault-free profile and
golden capture run exactly once across all k cells, all cells' specs
interleave through one worker pool, and the grid checkpoints to one
multiplexed JSONL file with sweep-level kill/resume (``repro run
multifault --workers N --out sweep.jsonl --resume``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.stats import sdc_vs_k
from repro.analysis.tables import render_outcome_grid, render_table
from repro.apps.base import HpcApplication
from repro.core.campaign import Campaign, CampaignResult
from repro.core.engine import ProfileGoldenCache, SweepPlan
from repro.core.outcomes import Outcome
from repro.experiments.figure7 import APP_IDS
from repro.fusefs.vfs import FFISFileSystem

#: Faults per run swept by the grid; k=1 is the paper's baseline.
K_VALUES = (1, 2, 4, 8)


@dataclass
class MultifaultResult:
    """Per-cell results plus the per-application SDC-vs-k curves."""

    cells: Dict[str, CampaignResult] = field(default_factory=dict)
    k_values: Tuple[int, ...] = K_VALUES
    fault_free_runs: int = 0
    elapsed_seconds: float = 0.0

    def cell(self, label: str) -> CampaignResult:
        return self.cells[label]

    def app_labels(self) -> List[str]:
        seen = dict.fromkeys(label.rsplit("-k", 1)[0] for label in self.cells)
        return list(seen)

    def curve(self, app_label: str, outcome: Outcome = Outcome.SDC):
        """The outcome-rate-vs-k interval estimates for one application."""
        records = []
        for k in self.k_values:
            records.extend(self.cells[f"{app_label}-k{k}"].records)
        return sdc_vs_k(records, outcome=outcome)

    def render(self) -> str:
        grid = render_outcome_grid(
            self.cells, title="Multi-fault scenarios: outcomes vs fault count")
        rows = []
        for app_label in self.app_labels():
            curve = self.curve(app_label)
            rows.append([app_label] + [str(curve[k]) for k in self.k_values])
        curves = render_table(
            ["app"] + [f"SDC @ k={k}" for k in self.k_values], rows,
            title="SDC rate vs fault count")
        return grid + "\n" + curves


def _study_for(n_runs: Optional[int], seed: int, fault_model: str,
               k_values: Tuple[int, ...],
               apps: Optional[Dict[str, HpcApplication]],
               fs_factory: Callable[[], FFISFileSystem],
               cache: Optional[ProfileGoldenCache]):
    from repro.study import Study
    from repro.study.registry import multifault_spec

    # Custom apps keep their dict labels as target labels; app ids fall
    # back to the label itself for apps outside the stock registry.
    pairs = None if apps is None else tuple(
        (label, APP_IDS.get(label, label)) for label in apps)
    spec = multifault_spec(n_runs=n_runs, seed=seed, fault_model=fault_model,
                           k_values=k_values, apps=pairs)
    overrides = None if apps is None else {
        APP_IDS.get(label, label): app for label, app in apps.items()}
    return Study(spec, apps=overrides, fs_factory=fs_factory, cache=cache)


def plan_multifault(n_runs: Optional[int] = None, seed: int = 1,
                    fault_model: str = "BF",
                    k_values: Tuple[int, ...] = K_VALUES,
                    apps: Optional[Dict[str, HpcApplication]] = None,
                    fs_factory: Callable[[], FFISFileSystem] = FFISFileSystem,
                    cache: Optional[ProfileGoldenCache] = None,
                    ) -> Tuple[SweepPlan, Dict[str, Campaign], ProfileGoldenCache]:
    """The apps x k grid as a fused sweep plan.

    Returns the plan plus per-label campaigns and the shared cache so
    callers can reassemble :class:`CampaignResult` objects (and their
    profile/golden) after execution without re-running anything.
    """
    study = _study_for(n_runs, seed, fault_model, tuple(k_values), apps,
                       fs_factory, cache)
    plan = study.plan()
    return plan.sweep, dict(plan.campaigns), plan.cache


def run_multifault(n_runs: Optional[int] = None, seed: int = 1,
                   fault_model: str = "BF",
                   k_values: Tuple[int, ...] = K_VALUES,
                   apps: Optional[Dict[str, HpcApplication]] = None,
                   workers: int = 1,
                   results_path: Optional[str] = None,
                   resume: bool = False,
                   fs_factory: Callable[[], FFISFileSystem] = FFISFileSystem,
                   progress: Optional[Callable[[int, int], None]] = None,
                   ) -> MultifaultResult:
    """Run the apps x k grid fused through one study execution.

    ``results_path`` checkpoints the whole grid to one multiplexed JSONL
    file; ``resume=True`` re-executes only the missing (cell, run index)
    pairs of a killed sweep.
    """
    study = _study_for(n_runs, seed, fault_model, tuple(k_values), apps,
                       fs_factory, None)
    plan = study.plan()
    results = plan.execute(workers=workers, results_path=results_path,
                           resume=resume, progress=progress)
    result = MultifaultResult(k_values=tuple(k_values),
                              fault_free_runs=results.fault_free_runs,
                              elapsed_seconds=results.elapsed_seconds)
    result.cells = plan.campaign_results(results)
    return result
