"""Figure 7 -- the full characterization grid.

{NYX, QMC, MT1..MT4} x {BF, SW, DW} outcome breakdowns, the paper's
headline result.  Campaign sizes follow ``REPRO_FI_RUNS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.tables import render_outcome_grid, render_table
from repro.apps.base import HpcApplication
from repro.core.campaign import Campaign, CampaignResult
from repro.core.config import CampaignConfig
from repro.core.outcomes import Outcome
from repro.experiments.params import (
    default_runs,
    montage_default,
    nyx_default,
    qmcpack_default,
)

FAULT_MODELS = ("BF", "SW", "DW")
MONTAGE_STAGES = ("mProjExec", "mDiffExec", "mBgExec", "mAdd")

#: Paper Fig. 7 rates for the headline cells (approximate reads of the
#: stacked bars and the surrounding text), for side-by-side reporting.
PAPER_NOTES = {
    "NYX-BF": "91.1% benign, 0.8% SDC",
    "NYX-SW": "100% benign",
    "NYX-DW": "100% SDC",
    "QMC-BF": "~60% SDC, ~37% benign",
    "QMC-SW": "54% SDC, no detected",
    "QMC-DW": "8% SDC, 43% detected, 12% crash",
    "MT1-BF": "12.8% SDC", "MT2-BF": "8% SDC", "MT3-BF": "9% SDC", "MT4-BF": "6.8% SDC",
    "MT1-SW": "56.6% SDC", "MT2-SW": "40% SDC", "MT3-SW": "52.5% SDC", "MT4-SW": "48.5% SDC",
    "MT1-DW": "83.5% SDC", "MT2-DW": "37.3% SDC", "MT3-DW": "98.3% SDC", "MT4-DW": "50.4% SDC",
}


@dataclass
class Figure7Result:
    cells: Dict[str, CampaignResult] = field(default_factory=dict)

    def cell(self, label: str) -> CampaignResult:
        return self.cells[label]

    def render(self) -> str:
        grid = render_outcome_grid(self.cells,
                                   title="Figure 7: I/O fault characterization")
        rows = [[label, PAPER_NOTES.get(label, "-")] for label in self.cells]
        paper = render_table(["cell", "paper"], rows, title="Figure 7 (paper)")
        return grid + "\n" + paper


def run_figure7_cell(app: HpcApplication, fault_model: str,
                     n_runs: Optional[int] = None, seed: int = 1,
                     phase: Optional[str] = None,
                     workers: int = 1) -> CampaignResult:
    """One cell of the grid (exposed for benches that time single cells)."""
    runs = n_runs if n_runs is not None else default_runs()
    config = CampaignConfig(fault_model=fault_model, n_runs=runs,
                            seed=seed, phase=phase, workers=workers)
    return Campaign(app, config).run()


def run_figure7(n_runs: Optional[int] = None, seed: int = 1,
                include_montage_stages: bool = True,
                apps: Optional[Dict[str, HpcApplication]] = None,
                workers: int = 1) -> Figure7Result:
    result = Figure7Result()
    if apps is None:
        apps = {"NYX": nyx_default(), "QMC": qmcpack_default(),
                "MT": montage_default()}

    for fm in FAULT_MODELS:
        if "NYX" in apps:
            result.cells[f"NYX-{fm}"] = run_figure7_cell(
                apps["NYX"], fm, n_runs, seed, workers=workers)
        if "QMC" in apps:
            result.cells[f"QMC-{fm}"] = run_figure7_cell(
                apps["QMC"], fm, n_runs, seed, workers=workers)
        if "MT" in apps and include_montage_stages:
            for i, stage in enumerate(MONTAGE_STAGES, start=1):
                result.cells[f"MT{i}-{fm}"] = run_figure7_cell(
                    apps["MT"], fm, n_runs, seed, phase=stage,
                    workers=workers)
    return result
