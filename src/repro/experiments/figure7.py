"""Figure 7 -- the full characterization grid, as a declarative study.

{NYX, QMC, MT1..MT4} x {BF, SW, DW} outcome breakdowns, the paper's
headline result.  The grid is *data*: a registered
:class:`~repro.study.spec.StudySpec` (see
:func:`repro.study.registry.figure7_spec`) compiled through
:class:`~repro.study.Study` onto the fused sweep engine -- each distinct
application is profiled and golden-captured exactly once, every cell's
specs interleave through one worker pool, and the whole grid checkpoints
to one multiplexed JSONL file with sweep-level kill/resume.  Checkpoint
lines are byte-identical to the pre-study driver (golden-fixture
regression tested).  Campaign sizes follow ``REPRO_FI_RUNS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.tables import render_outcome_grid, render_table
from repro.apps.base import HpcApplication
from repro.core.campaign import Campaign, CampaignResult
from repro.core.config import CampaignConfig
from repro.core.engine import ProfileGoldenCache, SweepPlan
from repro.experiments.params import default_runs
from repro.fusefs.vfs import FFISFileSystem
from repro.study.registry import FIGURE7_APPS

FAULT_MODELS = ("BF", "SW", "DW")
MONTAGE_STAGES = ("mProjExec", "mDiffExec", "mBgExec", "mAdd")

#: Cell-label prefix -> study app registry id (the driver's ``apps``
#: dict keys map onto these registry ids; one source of truth with the
#: registered spec's application axis).
APP_IDS = dict(FIGURE7_APPS)

#: Paper Fig. 7 rates for the headline cells (approximate reads of the
#: stacked bars and the surrounding text), for side-by-side reporting.
PAPER_NOTES = {
    "NYX-BF": "91.1% benign, 0.8% SDC",
    "NYX-SW": "100% benign",
    "NYX-DW": "100% SDC",
    "QMC-BF": "~60% SDC, ~37% benign",
    "QMC-SW": "54% SDC, no detected",
    "QMC-DW": "8% SDC, 43% detected, 12% crash",
    "MT1-BF": "12.8% SDC", "MT2-BF": "8% SDC", "MT3-BF": "9% SDC", "MT4-BF": "6.8% SDC",
    "MT1-SW": "56.6% SDC", "MT2-SW": "40% SDC", "MT3-SW": "52.5% SDC", "MT4-SW": "48.5% SDC",
    "MT1-DW": "83.5% SDC", "MT2-DW": "37.3% SDC", "MT3-DW": "98.3% SDC", "MT4-DW": "50.4% SDC",
}


@dataclass
class Figure7Result:
    cells: Dict[str, CampaignResult] = field(default_factory=dict)
    #: Fault-free application executions the fused sweep paid for
    #: (profiles + golden captures; one pair per distinct app).
    fault_free_runs: int = 0
    elapsed_seconds: float = 0.0

    def cell(self, label: str) -> CampaignResult:
        return self.cells[label]

    def render(self) -> str:
        grid = render_outcome_grid(self.cells,
                                   title="Figure 7: I/O fault characterization")
        rows = [[label, PAPER_NOTES.get(label, "-")] for label in self.cells]
        paper = render_table(["cell", "paper"], rows, title="Figure 7 (paper)")
        return grid + "\n" + paper


def run_figure7_cell(app: HpcApplication, fault_model: str,
                     n_runs: Optional[int] = None, seed: int = 1,
                     phase: Optional[str] = None,
                     workers: int = 1) -> CampaignResult:
    """One cell of the grid (exposed for benches that time single cells)."""
    runs = n_runs if n_runs is not None else default_runs()
    config = CampaignConfig(fault_model=fault_model, n_runs=runs,
                            seed=seed, phase=phase, workers=workers)
    return Campaign(app, config).run()


def _study_for(n_runs: Optional[int], seed: int,
               include_montage_stages: bool,
               apps: Optional[Dict[str, HpcApplication]],
               fs_factory: Callable[[], FFISFileSystem],
               cache: Optional[ProfileGoldenCache]):
    from repro.errors import ConfigError
    from repro.study import Study
    from repro.study.registry import figure7_spec

    if apps is not None:
        unknown = sorted(set(apps) - set(APP_IDS))
        if unknown:
            raise ConfigError(
                f"unknown figure7 app labels {unknown}; the grid's labels "
                f"are {sorted(APP_IDS)}")
    spec = figure7_spec(
        n_runs=n_runs, seed=seed,
        include_montage_stages=include_montage_stages,
        app_labels=None if apps is None else tuple(apps))
    overrides = None if apps is None else {
        APP_IDS[label]: app for label, app in apps.items()}
    return Study(spec, apps=overrides, fs_factory=fs_factory, cache=cache)


def plan_figure7(n_runs: Optional[int] = None, seed: int = 1,
                 include_montage_stages: bool = True,
                 apps: Optional[Dict[str, HpcApplication]] = None,
                 fs_factory: Callable[[], FFISFileSystem] = FFISFileSystem,
                 cache: Optional[ProfileGoldenCache] = None,
                 ) -> Tuple[SweepPlan, Dict[str, Campaign], ProfileGoldenCache]:
    """The grid as a fused sweep plan (cells in the grid's label order).

    Returns the plan plus the per-label campaigns and the shared cache,
    so callers can reassemble :class:`CampaignResult` objects (and
    their profile/golden) after execution without re-running anything.
    """
    study = _study_for(n_runs, seed, include_montage_stages, apps,
                       fs_factory, cache)
    plan = study.plan()
    return plan.sweep, dict(plan.campaigns), plan.cache


def run_figure7(n_runs: Optional[int] = None, seed: int = 1,
                include_montage_stages: bool = True,
                apps: Optional[Dict[str, HpcApplication]] = None,
                workers: int = 1,
                results_path: Optional[str] = None,
                resume: bool = False,
                fs_factory: Callable[[], FFISFileSystem] = FFISFileSystem,
                progress: Optional[Callable[[int, int], None]] = None,
                ) -> Figure7Result:
    """Run the grid fused: one study execution instead of 18 campaigns.

    ``results_path`` checkpoints the whole grid to one multiplexed
    JSONL file and ``resume=True`` re-executes only the missing
    (cell, run index) pairs of a killed sweep.
    """
    study = _study_for(n_runs, seed, include_montage_stages, apps,
                       fs_factory, None)
    plan = study.plan()
    results = plan.execute(workers=workers, results_path=results_path,
                           resume=resume, progress=progress)
    result = Figure7Result(fault_free_runs=results.fault_free_runs,
                           elapsed_seconds=results.elapsed_seconds)
    result.cells = plan.campaign_results(results)
    return result
