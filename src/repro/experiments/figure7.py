"""Figure 7 -- the full characterization grid, as one fused sweep.

{NYX, QMC, MT1..MT4} x {BF, SW, DW} outcome breakdowns, the paper's
headline result.  The 18 cells execute as a single
:class:`repro.core.engine.SweepPlan`: each distinct application is
profiled and golden-captured exactly once (the twelve Montage stage x
model cells share one fault-free pair instead of re-running it twelve
times), every cell's specs interleave through one worker pool, and the
whole grid checkpoints to one multiplexed JSONL file with sweep-level
kill/resume.  Campaign sizes follow ``REPRO_FI_RUNS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.tables import render_outcome_grid, render_table
from repro.apps.base import HpcApplication
from repro.core.campaign import Campaign, CampaignResult
from repro.core.config import CampaignConfig
from repro.core.engine import ProfileGoldenCache, SweepCell, SweepPlan, execute_sweep
from repro.core.outcomes import Outcome
from repro.experiments.params import (
    default_runs,
    montage_default,
    nyx_default,
    qmcpack_default,
)
from repro.fusefs.vfs import FFISFileSystem

FAULT_MODELS = ("BF", "SW", "DW")
MONTAGE_STAGES = ("mProjExec", "mDiffExec", "mBgExec", "mAdd")

#: Paper Fig. 7 rates for the headline cells (approximate reads of the
#: stacked bars and the surrounding text), for side-by-side reporting.
PAPER_NOTES = {
    "NYX-BF": "91.1% benign, 0.8% SDC",
    "NYX-SW": "100% benign",
    "NYX-DW": "100% SDC",
    "QMC-BF": "~60% SDC, ~37% benign",
    "QMC-SW": "54% SDC, no detected",
    "QMC-DW": "8% SDC, 43% detected, 12% crash",
    "MT1-BF": "12.8% SDC", "MT2-BF": "8% SDC", "MT3-BF": "9% SDC", "MT4-BF": "6.8% SDC",
    "MT1-SW": "56.6% SDC", "MT2-SW": "40% SDC", "MT3-SW": "52.5% SDC", "MT4-SW": "48.5% SDC",
    "MT1-DW": "83.5% SDC", "MT2-DW": "37.3% SDC", "MT3-DW": "98.3% SDC", "MT4-DW": "50.4% SDC",
}


@dataclass
class Figure7Result:
    cells: Dict[str, CampaignResult] = field(default_factory=dict)
    #: Fault-free application executions the fused sweep paid for
    #: (profiles + golden captures; one pair per distinct app).
    fault_free_runs: int = 0
    elapsed_seconds: float = 0.0

    def cell(self, label: str) -> CampaignResult:
        return self.cells[label]

    def render(self) -> str:
        grid = render_outcome_grid(self.cells,
                                   title="Figure 7: I/O fault characterization")
        rows = [[label, PAPER_NOTES.get(label, "-")] for label in self.cells]
        paper = render_table(["cell", "paper"], rows, title="Figure 7 (paper)")
        return grid + "\n" + paper


def run_figure7_cell(app: HpcApplication, fault_model: str,
                     n_runs: Optional[int] = None, seed: int = 1,
                     phase: Optional[str] = None,
                     workers: int = 1) -> CampaignResult:
    """One cell of the grid (exposed for benches that time single cells)."""
    runs = n_runs if n_runs is not None else default_runs()
    config = CampaignConfig(fault_model=fault_model, n_runs=runs,
                            seed=seed, phase=phase, workers=workers)
    return Campaign(app, config).run()


def plan_figure7(n_runs: Optional[int] = None, seed: int = 1,
                 include_montage_stages: bool = True,
                 apps: Optional[Dict[str, HpcApplication]] = None,
                 fs_factory: Callable[[], FFISFileSystem] = FFISFileSystem,
                 cache: Optional[ProfileGoldenCache] = None,
                 ) -> Tuple[SweepPlan, Dict[str, Campaign], ProfileGoldenCache]:
    """The grid as a fused sweep plan (cells in the grid's label order).

    Returns the plan plus the per-label campaigns and the shared cache,
    so callers can reassemble :class:`CampaignResult` objects (and
    their profile/golden) after execution without re-running anything.
    """
    runs = n_runs if n_runs is not None else default_runs()
    if apps is None:
        apps = {"NYX": nyx_default(), "QMC": qmcpack_default(),
                "MT": montage_default()}
    cache = cache if cache is not None else ProfileGoldenCache()
    cells: List[SweepCell] = []
    campaigns: Dict[str, Campaign] = {}

    def add(label: str, app: HpcApplication, fault_model: str,
            phase: Optional[str] = None) -> None:
        config = CampaignConfig(fault_model=fault_model, n_runs=runs,
                                seed=seed, phase=phase)
        campaign = Campaign(app, config, fs_factory)
        cells.append(campaign.plan_cell(label, cache))
        campaigns[label] = campaign

    for fm in FAULT_MODELS:
        if "NYX" in apps:
            add(f"NYX-{fm}", apps["NYX"], fm)
        if "QMC" in apps:
            add(f"QMC-{fm}", apps["QMC"], fm)
        if "MT" in apps and include_montage_stages:
            for i, stage in enumerate(MONTAGE_STAGES, start=1):
                add(f"MT{i}-{fm}", apps["MT"], fm, phase=stage)
    return SweepPlan(cells=tuple(cells)), campaigns, cache


def run_figure7(n_runs: Optional[int] = None, seed: int = 1,
                include_montage_stages: bool = True,
                apps: Optional[Dict[str, HpcApplication]] = None,
                workers: int = 1,
                results_path: Optional[str] = None,
                resume: bool = False,
                fs_factory: Callable[[], FFISFileSystem] = FFISFileSystem,
                progress: Optional[Callable[[int, int], None]] = None,
                ) -> Figure7Result:
    """Run the grid fused: one sweep execution instead of 18 campaigns.

    ``results_path`` checkpoints the whole grid to one multiplexed
    JSONL file and ``resume=True`` re-executes only the missing
    (cell, run index) pairs of a killed sweep.
    """
    plan, campaigns, cache = plan_figure7(
        n_runs, seed, include_montage_stages, apps, fs_factory)
    sweep = execute_sweep(plan, workers=workers, results_path=results_path,
                          resume=resume, progress=progress)

    result = Figure7Result(fault_free_runs=cache.fault_free_runs(),
                           elapsed_seconds=sweep.elapsed_seconds)
    for label, campaign in campaigns.items():
        # Cache hits: the plan phase already paid for these.
        profile = cache.profile(campaign.app, campaign.fs_factory,
                                campaign.signature.primitive, campaign.profile)
        golden = cache.golden(campaign.app, campaign.fs_factory,
                              campaign.capture_golden)
        result.cells[label] = CampaignResult(
            app_name=campaign.app.name,
            signature=str(campaign.signature),
            phase=campaign.config.phase,
            records=sweep.records[label],
            profile=profile, golden=golden)
    return result
