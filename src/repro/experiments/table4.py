"""Table IV -- per-field SDC symptoms for faulty HDF5 metadata.

For each of the six SDC-capable fields the paper identifies, corrupt the
specific bit the paper discusses, run the halo-finder post-analysis, and
characterize the symptom: how halo masses, locations, counts, and the
dataset average respond.  All symptoms *emerge* from the generic float
decoder honouring the corrupted geometry.

:data:`TARGETS` is the single source of truth for the corruption sites:
the registered ``table4`` study (:func:`repro.study.registry.table4_spec`)
derives its targeted-bits spec from it, so ``repro study run table4``
executes the same six corruptions through the campaign engine
(outcome-level); this driver keeps the deeper catalog-vs-catalog symptom
analysis, which needs the faulty halo catalogs and not just the records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.apps.nyx import NyxApplication
from repro.apps.nyx.halo_finder import HaloCatalog
from repro.core.metadata_campaign import MetadataCampaign, _ByteCorruptionHook
from repro.experiments.params import nyx_default
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem

#: (row label, field-map name substring, byte index within field, bit index)
TARGETS = (
    ("Mantissa Normalization (bit-5)", "Byte Order / Mantissa Normalization", 0, 5),
    ("Exponent Location", "Exponent Location", 0, 1),
    ("Mantissa Location", "Mantissa Location", 0, 0),
    ("Mantissa Size", "Mantissa Size", 0, 0),
    ("Exponent Bias", "Exponent Bias", 0, 3),
    ("Address of Raw Data (ARD)", "Address of Raw Data (ARD)", 0, 5),
)

PAPER_SYMPTOMS = {
    "Mantissa Normalization (bit-5)": "mass changed; 45% locations changed; +24% halos; avg 0.55",
    "Exponent Location": "mass changed; all locations changed; +20% halos; avg 1.04",
    "Mantissa Location": "mass changed; most locations changed; count changed; avg 1.04-1.55",
    "Mantissa Size": "mass changed; most locations changed; count changed; avg 1.04-1.55",
    "Exponent Bias": "mass scaled; locations unchanged; count unchanged; avg power of two",
    "Address of Raw Data (ARD)": "mass unchanged; locations shifted; count unchanged; avg unchanged",
}


@dataclass
class Table4Row:
    field_label: str
    mass_symptom: str
    location_symptom: str
    halo_number: str
    average_value: str

    def cells(self) -> List[str]:
        return [self.field_label, self.mass_symptom, self.location_symptom,
                self.halo_number, self.average_value]


@dataclass
class Table4Result:
    rows: List[Table4Row] = field(default_factory=list)
    golden: Optional[HaloCatalog] = None

    def row(self, label_substring: str) -> Table4Row:
        for row in self.rows:
            if label_substring in row.field_label:
                return row
        raise KeyError(label_substring)

    def render(self) -> str:
        table = render_table(
            ["Metadata field", "Halo Mass", "Halo Location", "Halo Number",
             "Average Value"],
            [r.cells() for r in self.rows],
            title="Table IV: post-analysis symptoms per faulty metadata field")
        paper = render_table(
            ["Metadata field", "paper symptom"],
            [[k, v] for k, v in PAPER_SYMPTOMS.items()],
            title="Table IV (paper)")
        return table + "\n" + paper


def _match_positions(golden: np.ndarray, faulty: np.ndarray,
                     tol: float = 5e-3) -> Tuple[int, Optional[np.ndarray]]:
    """(how many golden positions reappear, common shift if consistent)."""
    if len(golden) == 0 or len(faulty) == 0:
        return 0, None
    unchanged = 0
    for g in golden:
        if np.any(np.all(np.abs(faulty - g) <= tol, axis=1)):
            unchanged += 1
    if len(golden) == len(faulty):
        shifts = faulty - golden
        if np.allclose(shifts, shifts[0], atol=tol) and not np.allclose(shifts[0], 0, atol=tol):
            return unchanged, shifts[0]
    return unchanged, None


def symptoms(label: str, golden: HaloCatalog, faulty: HaloCatalog) -> Table4Row:
    """Characterize faulty vs golden post-analysis (Table IV's four metrics)."""
    g_masses, f_masses = golden.masses, faulty.masses
    if len(f_masses) == len(g_masses) and len(g_masses) > 0:
        if np.allclose(f_masses, g_masses, rtol=1e-6):
            mass = "unchanged"
        else:
            ratios = f_masses / g_masses
            if np.allclose(ratios, ratios[0], rtol=1e-3):
                mass = f"scaled x{ratios[0]:.4g}"
            else:
                mass = "changed"
    elif len(f_masses) == 0:
        mass = "no halos"
    else:
        mass = "changed"

    unchanged, shift = _match_positions(golden.positions, faulty.positions)
    if len(faulty.positions) == 0:
        location = "no halos"
    elif shift is not None:
        location = (f"all shifted by ({shift[0]:.2f}, {shift[1]:.2f}, "
                    f"{shift[2]:.2f})")
    elif unchanged == len(golden.positions) and len(faulty.positions) == len(golden.positions):
        location = "unchanged"
    else:
        changed = len(golden.positions) - unchanged
        location = f"{changed}/{len(golden.positions)} changed"

    number = (f"{len(golden)} -> {len(faulty)}"
              if len(faulty) != len(golden) else "unchanged")

    avg_g, avg_f = golden.average_value, faulty.average_value
    if not math.isfinite(avg_f):
        average = "non-finite"
    elif abs(avg_f / avg_g - 1.0) < 1e-3:
        average = "unchanged"
    else:
        log2r = math.log2(avg_f / avg_g) if avg_f > 0 else float("nan")
        if math.isfinite(log2r) and abs(log2r - round(log2r)) < 0.02:
            average = f"scaled by 2^{round(log2r)}"
        else:
            average = f"changed to {avg_f:.3g}"
    return Table4Row(field_label=label, mass_symptom=mass,
                     location_symptom=location, halo_number=number,
                     average_value=average)


def run_table4(app: Optional[NyxApplication] = None,
               workers: int = 1) -> Table4Result:
    """``workers`` is part of the uniform driver interface; this table
    runs one targeted corruption per field, serially."""
    if app is None:
        app = nyx_default()
    campaign = MetadataCampaign(app, workers=workers)
    info, golden_record = campaign.locate_metadata_write()
    fieldmap = app.last_write_result.fieldmap
    golden_catalog = app.find_halos(app.rho.astype(np.float64))

    result = Table4Result(golden=golden_catalog)
    for label, substring, byte_in_field, bit in TARGETS:
        spans = [s for s in fieldmap if substring in s.name]
        if not spans:
            raise KeyError(f"field {substring!r} not found in field map")
        byte_offset = spans[0].start + byte_in_field - info.file_offset
        fs = FFISFileSystem()
        fs.interposer.add_hook(
            "ffis_write", _ByteCorruptionHook(info.write_index, byte_offset, bit))
        with mount(fs) as mp:
            app.execute(mp)
            rho = app.read_density(mp)
        faulty_catalog = app.find_halos(rho)
        result.rows.append(symptoms(label, golden_catalog, faulty_catalog))
    return result
