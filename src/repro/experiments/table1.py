"""Table I -- fault models supported by FFIS.

The paper's Table I is a specification table (model, affected FUSE
primitives, features).  The reproduction *executes* the specification:
each row is produced by actually applying the model to a 4 KiB write
call and measuring what happened (bits flipped, sector-aligned shear
point, suppression), so the table doubles as a conformance check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.analysis.tables import render_table
from repro.core.fault_models import (
    BitFlipFault,
    DroppedWriteFault,
    ShornWriteFault,
)
from repro.fusefs.interposer import CallDecision, PrimitiveCall
from repro.util.bitops import hamming_distance

AFFECTED_PRIMITIVES = "FFISwrite, FFISmknod, FFISchmod ..."


@dataclass
class Table1Row:
    model: str
    primitives: str
    feature: str
    measured: str


@dataclass
class Table1Result:
    rows: List[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["Fault model", "Affected FUSE primitives", "Features", "Measured behaviour"],
            [[r.model, r.primitives, r.feature, r.measured] for r in self.rows],
            title="Table I: fault models supported by FFIS",
        )


def _call(buf: bytes) -> PrimitiveCall:
    return PrimitiveCall(primitive="ffis_write",
                         args={"fd": 3, "buf": buf, "size": len(buf), "offset": 0},
                         seqno=0)


def run_table1(seed: int = 0, block_size: int = 4096,
               workers: int = 1) -> Table1Result:
    """``workers`` is part of the uniform driver interface; this
    conformance table applies each model once and runs serially."""
    rng = np.random.default_rng(seed)
    original = bytes(rng.integers(0, 256, size=block_size, dtype=np.uint8))
    result = Table1Result()

    bf = BitFlipFault(n_bits=2)
    call = _call(original)
    decision = bf.apply(call, np.random.default_rng(seed))
    flipped = hamming_distance(original, call.args["buf"])
    result.rows.append(Table1Row(
        model="Bitflip", primitives=AFFECTED_PRIMITIVES, feature=bf.describe(),
        measured=f"{flipped} bits flipped, size preserved "
                 f"({len(call.args['buf'])} B), decision={decision}"))

    for fraction in (3 / 8, 7 / 8):
        sw = ShornWriteFault(fraction=fraction)
        call = _call(original)
        sw.apply(call, np.random.default_rng(seed))
        buf = call.args["buf"]
        kept = sw.shear_point(block_size)
        prefix_ok = buf[:kept] == original[:kept]
        tail_differs = buf[kept:] != original[kept:]
        result.rows.append(Table1Row(
            model="Shorn write", primitives=AFFECTED_PRIMITIVES,
            feature=sw.describe(),
            measured=f"first {kept} B intact ({prefix_ok}), "
                     f"{block_size - kept} B tail undefined ({tail_differs})"))

    dw = DroppedWriteFault()
    call = _call(original)
    decision = dw.apply(call, np.random.default_rng(seed))
    result.rows.append(Table1Row(
        model="Dropped write", primitives=AFFECTED_PRIMITIVES,
        feature=dw.describe(),
        measured=f"decision={decision is CallDecision.SUPPRESS and 'SUPPRESS'}, "
                 "success still reported"))
    return result
