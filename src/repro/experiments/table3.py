"""Table III -- output classification of faulty HDF5 metadata.

Byte-exhaustive corruption of the Nyx metadata write, classified by the
halo-finder post-analysis, with per-field annotation from the writer's
field map.  Paper reference: SDC 4 (0.2 %), benign 2085 (85.7 %), crash
343 (14.1 %).

The sweep is a registered declarative study
(:func:`repro.study.registry.table3_spec`): a single metadata-kind
target compiled through :class:`~repro.study.Study`, whose locate trace
doubles as both the golden capture and the field-map harvest -- exactly
one fault-free run, like any fused-sweep cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.analysis.tables import render_table
from repro.apps.nyx import NyxApplication
from repro.core.metadata_campaign import MetadataCampaignResult
from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem

PAPER_RATES = {Outcome.SDC: 0.002, Outcome.BENIGN: 0.857, Outcome.CRASH: 0.141}

#: The six SDC-capable fields the paper identifies.
PAPER_SDC_FIELDS = (
    "Mantissa Normalization", "Exponent Location", "Mantissa Location",
    "Mantissa Size", "Exponent Bias", "Address of Raw Data (ARD)",
)


def field_examples(records: Iterable[RunRecord]) -> Dict[Outcome, List[str]]:
    """Distinct short field names per outcome, in frequency order (the
    per-field container prefixes stripped for compact reporting)."""
    buckets: Dict[Outcome, Dict[str, int]] = {o: {} for o in Outcome}
    for record in records:
        name = (record.field_name or "?").split(".")[-1]
        counts = buckets[record.outcome]
        counts[name] = counts.get(name, 0) + 1
    return {o: [name for name, _ in
                sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]
            for o, counts in buckets.items()}


def render_table3_records(records: List[RunRecord]) -> str:
    """Table III's layout from any record stream (the study renderer)."""
    tally = OutcomeTally.from_records(records)
    examples = field_examples(records)
    rows = []
    for outcome in (Outcome.SDC, Outcome.BENIGN, Outcome.CRASH,
                    Outcome.DETECTED):
        shown = ", ".join(examples.get(outcome, [])[:4]) or "-"
        paper = PAPER_RATES.get(outcome)
        paper_text = f"{100 * paper:.1f}%" if paper is not None else "n/a"
        rows.append([outcome.value,
                     f"{tally.counts[outcome]} "
                     f"({100 * tally.rate(outcome):.1f}%)",
                     paper_text, shown])
    return render_table(
        ["Fault type", "measured cases", "paper", "example metadata fields"],
        rows, title="Table III: output classification of faulty metadata")


@dataclass
class Table3Result:
    campaign: MetadataCampaignResult
    field_examples: Dict[Outcome, List[str]] = field(default_factory=dict)

    def rate(self, outcome: Outcome) -> float:
        return self.campaign.tally.rate(outcome)

    def render(self) -> str:
        return render_table3_records(self.campaign.records)


def fieldmap_for(app: NyxApplication):
    """Golden-run field map of the app's metadata write."""
    fs = FFISFileSystem()
    with mount(fs) as mp:
        app.execute(mp)
    return app.last_write_result.fieldmap


def run_table3(app: Optional[NyxApplication] = None, byte_stride: int = 1,
               seed: int = 0, workers: int = 1,
               results_path: Optional[str] = None,
               resume: bool = False) -> Table3Result:
    """Sweep every ``byte_stride``-th metadata byte (1 == the paper's
    exhaustive per-byte campaign, ~2.5k application runs).

    The sweep is embarrassingly parallel: ``workers`` fans it out over
    processes, and ``results_path``/``resume`` checkpoint it to JSONL
    (byte-identical to the pre-study driver's checkpoints).
    """
    from repro.study import Study
    from repro.study.registry import table3_spec

    spec = table3_spec(byte_stride=byte_stride, seed=seed)
    overrides = None if app is None else {"nyx-small": app}
    plan = Study(spec, apps=overrides).plan()
    results = plan.execute(workers=workers, results_path=results_path,
                           resume=resume)
    (cell,) = plan.cells
    campaign = cell.planner
    result = MetadataCampaignResult(
        app_name=campaign.app.name, mode=campaign.mode,
        records=results.cell(cell.key),
        metadata=cell.metadata, fieldmap=campaign.fieldmap,
        elapsed_seconds=results.elapsed_seconds)
    return Table3Result(campaign=result,
                        field_examples=field_examples(result.records))
