"""Table III -- output classification of faulty HDF5 metadata.

Byte-exhaustive corruption of the Nyx metadata write, classified by the
halo-finder post-analysis, with per-field annotation from the writer's
field map.  Paper reference: SDC 4 (0.2 %), benign 2085 (85.7 %), crash
343 (14.1 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.apps.nyx import NyxApplication
from repro.core.metadata_campaign import MetadataCampaign, MetadataCampaignResult
from repro.core.outcomes import Outcome
from repro.experiments.params import nyx_small
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem

PAPER_RATES = {Outcome.SDC: 0.002, Outcome.BENIGN: 0.857, Outcome.CRASH: 0.141}

#: The six SDC-capable fields the paper identifies.
PAPER_SDC_FIELDS = (
    "Mantissa Normalization", "Exponent Location", "Mantissa Location",
    "Mantissa Size", "Exponent Bias", "Address of Raw Data (ARD)",
)


@dataclass
class Table3Result:
    campaign: MetadataCampaignResult
    field_examples: Dict[Outcome, List[str]] = field(default_factory=dict)

    def rate(self, outcome: Outcome) -> float:
        return self.campaign.tally.rate(outcome)

    def render(self) -> str:
        tally = self.campaign.tally
        rows = []
        for outcome in (Outcome.SDC, Outcome.BENIGN, Outcome.CRASH, Outcome.DETECTED):
            examples = ", ".join(self.field_examples.get(outcome, [])[:4]) or "-"
            paper = PAPER_RATES.get(outcome)
            paper_text = f"{100 * paper:.1f}%" if paper is not None else "n/a"
            rows.append([outcome.value,
                         f"{tally.counts[outcome]} ({100 * tally.rate(outcome):.1f}%)",
                         paper_text, examples])
        return render_table(
            ["Fault type", "measured cases", "paper", "example metadata fields"],
            rows, title="Table III: output classification of faulty metadata")


def fieldmap_for(app: NyxApplication):
    """Golden-run field map of the app's metadata write."""
    fs = FFISFileSystem()
    with mount(fs) as mp:
        app.execute(mp)
    return app.last_write_result.fieldmap


def run_table3(app: Optional[NyxApplication] = None, byte_stride: int = 1,
               seed: int = 0, workers: int = 1,
               results_path: Optional[str] = None,
               resume: bool = False) -> Table3Result:
    """Sweep every ``byte_stride``-th metadata byte (1 == the paper's
    exhaustive per-byte campaign, ~2.5k application runs).

    The sweep is embarrassingly parallel: ``workers`` fans it out over
    processes, and ``results_path``/``resume`` checkpoint it to JSONL.
    The metadata-write trace doubles as both the golden capture and the
    field-map harvest, so the driver pays for exactly one fault-free
    run, like a fused-sweep cell.
    """
    if app is None:
        app = nyx_small()
    campaign = MetadataCampaign(app, seed=seed, workers=workers)
    located = campaign.locate_metadata_write()
    campaign.fieldmap = app.last_write_result.fieldmap
    result = campaign.run(byte_stride=byte_stride, results_path=results_path,
                          resume=resume, located=located)
    # Strip the per-field container prefixes for compact reporting.
    examples: Dict[Outcome, List[str]] = {}
    for outcome, names in result.fields_by_outcome().items():
        seen: List[str] = []
        for name in names:
            short = name.split(".")[-1]
            if short not in seen:
                seen.append(short)
        examples[outcome] = seen
    return Table3Result(campaign=result, field_examples=examples)
