"""Figure 9 -- a typical faulty mosaic under DROPPED_WRITE.

The paper's image shows a black line through the mosaic where a dropped
write lost a stripe of data, with the "min" statistic leaving its
plausible range (a *detected* outcome).  The reproduction measures the
artifact: the zero-stripe size and the min excursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.apps.montage import MontageApplication
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.injector import FaultInjector
from repro.core.outcomes import Outcome
from repro.errors import FFISError
from repro.experiments.params import montage_default
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.mfits.io import read_fits
from repro.util.rngstream import RngStream

MOSAIC_PATH = "/montage/out/m101_mosaic.fits"


@dataclass
class Figure9Result:
    golden_min: float
    faulty_min: float
    dark_pixels: int
    outcome: Outcome
    instance: int

    def render(self) -> str:
        return (
            "Figure 9: typical faulty mosaic under DROPPED_WRITE\n"
            f"  golden min = {self.golden_min:.4f} (paper: ~82.82)\n"
            f"  faulty min = {self.faulty_min:.4f} -> outcome {self.outcome.value}\n"
            f"  dark-stripe pixels: {self.dark_pixels} "
            "(the paper's 'black line in the middle of the vortex')\n"
        )


def run_figure9(app: Optional[MontageApplication] = None,
                seed: int = 9, max_tries: int = 64,
                workers: int = 1) -> Figure9Result:
    """Find a dropped mAdd write that produces the black-stripe artifact.

    The search stops at the first qualifying instance, so it stays
    serial; ``workers`` is part of the uniform driver interface.
    """
    if app is None:
        app = montage_default()
    campaign = Campaign(app, CampaignConfig(fault_model="DW", n_runs=1,
                                            seed=seed, phase="mAdd",
                                            workers=workers))
    profile = campaign.profile()
    golden = campaign.capture_golden()
    window = profile.window("mAdd")
    golden_min = golden.analysis["min"]
    injector = FaultInjector(campaign.signature)

    for i, instance in enumerate(window):
        if i >= max_tries:
            break
        fs = FFISFileSystem()
        injector.arm(fs, instance, RngStream(seed, i).generator())
        with mount(fs) as mp:
            try:
                app.execute(mp)
                outcome, _ = app.classify(golden, mp)
                mosaic = read_fits(mp, MOSAIC_PATH).data
                dark = int((mosaic == 0).sum())
                if outcome is Outcome.DETECTED and dark > 0:
                    stats = app.mosaic_statistics(mp)
                    return Figure9Result(golden_min=golden_min,
                                         faulty_min=stats.min,
                                         dark_pixels=dark, outcome=outcome,
                                         instance=instance)
            except Exception:  # noqa: BLE001 - skip crash cases, we want an image
                continue
    raise FFISError("no dropped mAdd write produced the black-stripe artifact "
                    f"within {max_tries} tries")
