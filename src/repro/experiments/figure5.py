"""Figure 5 -- visualization of typical SDC cases.

The paper visualizes the decoded field for a faulty Exponent Bias (the
whole field scales by a power of two) and a faulty ARD (the whole field
shifts).  The reproduction produces the underlying numeric series: a 1-D
trace through the field for the original and each faulty decode, plus
the measured scale factor and shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.nyx import NyxApplication
from repro.core.metadata_campaign import MetadataCampaign, _ByteCorruptionHook
from repro.experiments.params import nyx_default
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem


@dataclass
class Figure5Result:
    original_trace: np.ndarray
    bias_trace: np.ndarray
    ard_trace: np.ndarray
    scale_factor: float
    shift_cells: int

    def render(self) -> str:
        lines = [
            "Figure 5: typical SDC cases on the decoded baryon density",
            f"  (a) original          : trace mean {self.original_trace.mean():.4f}",
            f"  (b) faulty ExponentBias: field scaled x{self.scale_factor:.6g} "
            "(paper: mass of all halos scaled)",
            f"  (c) faulty ARD         : field shifted by {self.shift_cells} cells "
            "(paper: all halo locations shifted)",
        ]
        return "\n".join(lines) + "\n"


def _decode_with_bit(app: NyxApplication, info, byte_offset: int, bit: int) -> np.ndarray:
    fs = FFISFileSystem()
    fs.interposer.add_hook(
        "ffis_write", _ByteCorruptionHook(info.write_index, byte_offset, bit))
    with mount(fs) as mp:
        app.execute(mp)
        return app.read_density(mp)


def run_figure5(app: Optional[NyxApplication] = None,
                bias_bit: int = 3, ard_bit: int = 5,
                workers: int = 1) -> Figure5Result:
    """``workers`` is part of the uniform driver interface; this figure
    decodes two targeted corruptions, serially."""
    if app is None:
        app = nyx_default()
    campaign = MetadataCampaign(app, workers=workers)
    info, _ = campaign.locate_metadata_write()
    fieldmap = app.last_write_result.fieldmap

    def offset_of(substring: str) -> int:
        span = next(s for s in fieldmap if substring in s.name)
        return span.start - info.file_offset

    rho = app.rho.astype(np.float64)
    faulty_bias = _decode_with_bit(app, info, offset_of("Exponent Bias"), bias_bit)
    faulty_ard = _decode_with_bit(app, info, offset_of("Address of Raw Data"), ard_bit)

    with np.errstate(invalid="ignore", divide="ignore"):
        ratios = faulty_bias / rho
    scale = float(np.nanmedian(ratios))

    # Estimate the flat shift by correlating flattened arrays.
    flat = rho.ravel()
    flat_f = faulty_ard.ravel()
    best_shift, best_err = 0, np.inf
    for candidate in range(0, 64):
        err = float(np.abs(flat[candidate:candidate + 4096]
                           - flat_f[:4096]).sum())
        if err < best_err:
            best_err, best_shift = err, candidate

    mid = rho.shape[0] // 2
    return Figure5Result(
        original_trace=rho[mid, mid, :].copy(),
        bias_trace=faulty_bias[mid, mid, :].copy(),
        ard_trace=faulty_ard[mid, mid, :].copy(),
        scale_factor=scale,
        shift_cells=best_shift,
    )
