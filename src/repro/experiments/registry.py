"""Registry mapping experiment ids to drivers (the DESIGN.md index).

Entries are *lazy*: each experiment names its driver by import path and
resolves it on first use, so listing the experiments (``repro
experiments``, CLI ``choices``, ``repro --version``) never imports the
ten driver modules.  ``knobs`` declares which engine keywords a driver
accepts, replacing the CLI's old ``inspect.signature`` sniffing with an
explicit contract.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

#: Engine knobs shared by the drivers that execute fused sweeps.
SWEEP_KNOBS = ("workers", "results_path", "resume")


@dataclass(frozen=True)
class Experiment:
    id: str
    description: str
    module: str
    attr: str
    bench: str
    #: Engine keywords the driver accepts (every driver takes
    #: ``workers``; sweep-running drivers add checkpoint/resume).
    knobs: Tuple[str, ...] = ("workers",)

    def resolve(self) -> Callable:
        """Import and return the driver callable."""
        return getattr(importlib.import_module(self.module), self.attr)

    @property
    def driver(self) -> Callable:
        return self.resolve()

    def accepts(self, knob: str) -> bool:
        return knob in self.knobs


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp for exp in (
        Experiment("table1", "Fault models supported by FFIS (conformance)",
                   "repro.experiments.table1", "run_table1",
                   "benchmarks/test_table1_fault_models.py"),
        Experiment("table2", "Description of tested HPC applications",
                   "repro.experiments.table2", "run_table2",
                   "benchmarks/test_table2_applications.py"),
        Experiment("table3", "Output classification of faulty HDF5 metadata",
                   "repro.experiments.table3", "run_table3",
                   "benchmarks/test_table3_metadata.py", knobs=SWEEP_KNOBS),
        Experiment("table4", "Per-field SDC symptoms for faulty metadata",
                   "repro.experiments.table4", "run_table4",
                   "benchmarks/test_table4_field_symptoms.py"),
        Experiment("figure5", "Exponent-Bias scaling / ARD shift visualization",
                   "repro.experiments.figure5", "run_figure5",
                   "benchmarks/test_figure5_sdc_visualization.py"),
        Experiment("figure6", "Halo candidates under faulty Mantissa Size",
                   "repro.experiments.figure6", "run_figure6",
                   "benchmarks/test_figure6_halo_candidates.py"),
        Experiment("figure7", "Characterization grid (apps x fault models)",
                   "repro.experiments.figure7", "run_figure7",
                   "benchmarks/test_figure7_characterization.py",
                   knobs=SWEEP_KNOBS),
        Experiment("figure8", "Halo-mass distribution original vs DW",
                   "repro.experiments.figure8", "run_figure8",
                   "benchmarks/test_figure8_mass_distribution.py"),
        Experiment("figure9", "Faulty Montage mosaic (black-stripe artifact)",
                   "repro.experiments.figure9", "run_figure9",
                   "benchmarks/test_figure9_montage_fault.py"),
        Experiment("multifault", "Outcome rates vs fault count k (scenarios)",
                   "repro.experiments.multifault", "run_multifault",
                   "tests/test_multifault.py", knobs=SWEEP_KNOBS),
    )
}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
