"""Registry mapping experiment ids to drivers (the DESIGN.md index)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.multifault import run_multifault


@dataclass(frozen=True)
class Experiment:
    id: str
    description: str
    driver: Callable
    bench: str


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp for exp in (
        Experiment("table1", "Fault models supported by FFIS (conformance)",
                   run_table1, "benchmarks/test_table1_fault_models.py"),
        Experiment("table2", "Description of tested HPC applications",
                   run_table2, "benchmarks/test_table2_applications.py"),
        Experiment("table3", "Output classification of faulty HDF5 metadata",
                   run_table3, "benchmarks/test_table3_metadata.py"),
        Experiment("table4", "Per-field SDC symptoms for faulty metadata",
                   run_table4, "benchmarks/test_table4_field_symptoms.py"),
        Experiment("figure5", "Exponent-Bias scaling / ARD shift visualization",
                   run_figure5, "benchmarks/test_figure5_sdc_visualization.py"),
        Experiment("figure6", "Halo candidates under faulty Mantissa Size",
                   run_figure6, "benchmarks/test_figure6_halo_candidates.py"),
        Experiment("figure7", "Characterization grid (apps x fault models)",
                   run_figure7, "benchmarks/test_figure7_characterization.py"),
        Experiment("figure8", "Halo-mass distribution original vs DW",
                   run_figure8, "benchmarks/test_figure8_mass_distribution.py"),
        Experiment("figure9", "Faulty Montage mosaic (black-stripe artifact)",
                   run_figure9, "benchmarks/test_figure9_montage_fault.py"),
        Experiment("multifault", "Outcome rates vs fault count k (scenarios)",
                   run_multifault, "tests/test_multifault.py"),
    )
}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
