"""One driver per paper table/figure (shared by benchmarks and examples).

Each ``run_*`` function executes the experiment at a configurable scale
and returns a result object with a ``render()`` method printing
paper-comparable rows.  Campaign sizes honour the ``REPRO_FI_RUNS``
environment variable (default: a laptop-friendly fraction of the paper's
1,000 runs per cell).
"""

from repro.experiments.params import (
    default_runs,
    montage_default,
    nyx_default,
    nyx_small,
    qmcpack_default,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import plan_figure7, run_figure7, run_figure7_cell
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = [
    "default_runs",
    "montage_default",
    "nyx_default",
    "nyx_small",
    "qmcpack_default",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_figure5",
    "run_figure6",
    "plan_figure7",
    "run_figure7",
    "run_figure7_cell",
    "run_figure8",
    "run_figure9",
    "EXPERIMENTS",
    "get_experiment",
]
