"""One driver per paper table/figure (shared by benchmarks and examples).

Each ``run_*`` function executes the experiment at a configurable scale
and returns a result object with a ``render()`` method printing
paper-comparable rows.  Campaign sizes honour the ``REPRO_FI_RUNS``
environment variable (default: a laptop-friendly fraction of the paper's
1,000 runs per cell).

The grid-shaped drivers (``figure7``, ``multifault``, ``table3``) are
thin wrappers over registered :mod:`repro.study` specs; the registry
(:data:`EXPERIMENTS`) and this package resolve drivers lazily, so
importing :mod:`repro.experiments` stays cheap until a driver runs.
"""

from typing import Dict, Tuple

from repro.util.lazy import lazy_exports

#: Exported name -> (module, attribute), resolved on first access so
#: importing the package does not import the ten driver modules.
_EXPORTS: Dict[str, Tuple[str, str]] = {
    "default_runs": ("repro.experiments.params", "default_runs"),
    "montage_default": ("repro.experiments.params", "montage_default"),
    "nyx_default": ("repro.experiments.params", "nyx_default"),
    "nyx_small": ("repro.experiments.params", "nyx_small"),
    "qmcpack_default": ("repro.experiments.params", "qmcpack_default"),
    "run_table1": ("repro.experiments.table1", "run_table1"),
    "run_table2": ("repro.experiments.table2", "run_table2"),
    "run_table3": ("repro.experiments.table3", "run_table3"),
    "run_table4": ("repro.experiments.table4", "run_table4"),
    "run_figure5": ("repro.experiments.figure5", "run_figure5"),
    "run_figure6": ("repro.experiments.figure6", "run_figure6"),
    "plan_figure7": ("repro.experiments.figure7", "plan_figure7"),
    "run_figure7": ("repro.experiments.figure7", "run_figure7"),
    "run_figure7_cell": ("repro.experiments.figure7", "run_figure7_cell"),
    "run_figure8": ("repro.experiments.figure8", "run_figure8"),
    "run_figure9": ("repro.experiments.figure9", "run_figure9"),
    "plan_multifault": ("repro.experiments.multifault", "plan_multifault"),
    "run_multifault": ("repro.experiments.multifault", "run_multifault"),
    "EXPERIMENTS": ("repro.experiments.registry", "EXPERIMENTS"),
    "get_experiment": ("repro.experiments.registry", "get_experiment"),
}

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = lazy_exports(__name__, globals(), _EXPORTS)
