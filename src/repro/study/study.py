"""Compiling a :class:`StudySpec` onto the campaign engine.

``Study.plan()`` turns the declarative grid into the existing fused-sweep
machinery -- one :class:`~repro.core.engine.SweepPlan` whose cells share
a :class:`~repro.core.engine.ProfileGoldenCache` (each distinct
application's fault-free work runs exactly once per study) -- and
``StudyPlan.execute()`` runs it to a uniform
:class:`~repro.study.resultset.ResultSet`.  Every driver-level surface
(the CLI ``study``/``sweep``/``campaign`` subcommands, the registered
paper studies) is a thin layer over this path, so checkpoints, resume,
and parallel execution behave identically everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.campaign import Campaign, CampaignResult
from repro.core.config import CampaignConfig
from repro.core.engine import (
    ProfileGoldenCache,
    SweepCell,
    SweepPlan,
    execute_sweep,
)
from repro.core.metadata_campaign import MetadataCampaign, MetadataWriteInfo
from repro.fusefs.vfs import FFISFileSystem
from repro.study.apps import resolve_app_factory
from repro.study.resultset import CellInfo, ResultSet
from repro.study.spec import CellSpec, StudySpec

FsFactory = Callable[[], FFISFileSystem]
Planner = Union[Campaign, MetadataCampaign]


@dataclass(frozen=True)
class CompiledCell:
    """One planned cell: its spec, planner, and engine cell."""

    spec: CellSpec
    planner: Planner
    cell: SweepCell
    #: Metadata cells: where the swept write lives (``None`` otherwise).
    metadata: Optional[MetadataWriteInfo] = None

    @property
    def key(self) -> str:
        return self.cell.key


@dataclass
class StudyPlan:
    """A compiled study, ready to execute (or inspect) as one sweep."""

    spec: StudySpec
    sweep: SweepPlan
    cells: Tuple[CompiledCell, ...]
    cache: ProfileGoldenCache
    apps: Dict[str, object]
    campaigns: Dict[str, Planner] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.campaigns:
            self.campaigns = {cell.key: cell.planner for cell in self.cells}

    def __len__(self) -> int:
        return len(self.sweep)

    def cell_info(self) -> Dict[str, CellInfo]:
        infos: Dict[str, CellInfo] = {}
        for compiled in self.cells:
            planner = compiled.planner
            if isinstance(planner, Campaign):
                infos[compiled.key] = CellInfo(
                    key=compiled.key,
                    campaign_id=compiled.cell.campaign_id,
                    app_name=planner.app.name,
                    signature=str(planner.signature),
                    phase=planner.config.phase,
                    scenario=None if planner.scenario.legacy
                    else planner.scenario.stamp(),
                    kind="fault")
            else:
                infos[compiled.key] = CellInfo(
                    key=compiled.key,
                    campaign_id=compiled.cell.campaign_id,
                    app_name=planner.app.name,
                    signature=f"metadata[{planner.mode}]",
                    kind="metadata")
        return infos

    def execute(self, workers: Optional[int] = None,
                results_path: Optional[str] = None,
                resume: Optional[bool] = None,
                progress: Optional[Callable[[int, int], None]] = None,
                executor=None,
                hosts: Optional[int] = None,
                queue_root: Optional[str] = None,
                lease_runs: Optional[int] = None,
                lease_ttl: float = 30.0,
                quarantine_after: Optional[int] = None) -> ResultSet:
        """Run the study through one fused sweep execution.

        Keyword arguments override the spec's engine knobs; the study
        checkpoints to one multiplexed JSONL file and resumes by
        re-executing only the missing (cell, run index) pairs.

        ``hosts > 1`` switches to the lease-queue distributed engine
        (:mod:`repro.study.dist`): the plan is sharded into leases,
        drained by forked worker processes through the queue directory
        at ``queue_root`` (a throwaway default), and merged back into a
        result -- and checkpoint -- byte-identical to serial execution.
        """
        spec = self.spec
        if hosts is not None and hosts > 1:
            from repro.study.dist import run_distributed

            dist_knobs = {}
            if quarantine_after is not None:
                dist_knobs["quarantine_after"] = quarantine_after
            return run_distributed(
                self, hosts=hosts, queue_root=queue_root,
                lease_runs=lease_runs, lease_ttl=lease_ttl,
                results_path=spec.out if results_path is None
                else results_path,
                resume=spec.resume if resume is None else resume,
                **dist_knobs)
        sweep = execute_sweep(
            self.sweep,
            executor=executor,
            workers=spec.workers if workers is None else workers,
            results_path=spec.out if results_path is None else results_path,
            resume=spec.resume if resume is None else resume,
            progress=progress)
        return ResultSet(
            {cell.key: sweep.records[cell.key] for cell in self.cells},
            info=self.cell_info(),
            fault_free_runs=self.cache.fault_free_runs(),
            executed=sweep.executed,
            elapsed_seconds=sweep.elapsed_seconds)

    def campaign_results(self, results: ResultSet) -> Dict[str, CampaignResult]:
        """Adapt a result set to per-cell :class:`CampaignResult`\\ s
        (fault cells only), pulling each cell's profile/golden from the
        study cache -- hits, since planning already paid for them."""
        out: Dict[str, CampaignResult] = {}
        for compiled in self.cells:
            campaign = compiled.planner
            if not isinstance(campaign, Campaign):
                continue
            golden = self.cache.golden(
                campaign.app, campaign.fs_factory, campaign.capture_golden)
            profile = self.cache.derived_profile(
                campaign.app, campaign.fs_factory,
                campaign.signature.primitive,
                lambda: campaign.profile_from_golden(golden))
            out[compiled.key] = CampaignResult(
                app_name=campaign.app.name,
                signature=str(campaign.signature),
                phase=campaign.config.phase,
                records=results.cell(compiled.key),
                profile=profile, golden=golden,
                scenario=None if campaign.scenario.legacy
                else campaign.scenario.stamp())
        return out

    def describe(self) -> str:
        """The spec's cell listing plus this plan's realized run count
        (planning already resolved apps, so the total is exact here;
        for a listing that executes nothing, use ``spec.describe()``)."""
        return (self.spec.describe()
                + f"planned: {len(self.sweep)} runs\n")


class Study:
    """Binds a spec to concrete applications and compiles it to a plan.

    ``apps`` overrides the application registry per id (an instance or a
    zero-argument factory) -- studies over custom applications stay
    declarative, only the binding is code.  Every target naming the same
    app id shares one application instance, which is what lets the
    profile/golden cache amortize their fault-free work.
    """

    def __init__(self, spec: StudySpec,
                 apps: Optional[Mapping[str, object]] = None,
                 fs_factory: FsFactory = FFISFileSystem,
                 cache: Optional[ProfileGoldenCache] = None) -> None:
        self.spec = spec
        self.fs_factory = fs_factory
        self.cache = cache if cache is not None else ProfileGoldenCache()
        self._overrides = dict(apps or {})

    # -- binding ----------------------------------------------------------------

    def _resolve_app(self, app_id: str) -> object:
        override = self._overrides.get(app_id)
        if override is not None:
            return override() if callable(override) else override
        return resolve_app_factory(app_id)()

    def resolve_apps(self) -> Dict[str, object]:
        """One application instance per distinct app id of the spec."""
        return {app_id: self._resolve_app(app_id)
                for app_id in self.spec.app_ids()}

    # -- compilation ------------------------------------------------------------

    def _runs(self) -> int:
        if self.spec.runs is not None:
            return self.spec.runs
        from repro.experiments.params import default_runs

        return default_runs()

    def _compile_fault_cell(self, cell: CellSpec, app) -> CompiledCell:
        config = CampaignConfig(
            fault_model=cell.model.model,
            model_params=cell.model.params_dict,
            n_runs=self._runs(),
            seed=self.spec.seed,
            phase=cell.target.phase,
            scenario=cell.scenario.scenario)
        campaign = Campaign(app, config, self.fs_factory)
        return CompiledCell(spec=cell, planner=campaign,
                            cell=campaign.plan_cell(cell.key, self.cache))

    def _compile_metadata_cell(self, cell: CellSpec, app) -> CompiledCell:
        target = cell.target
        campaign = MetadataCampaign(app, seed=self.spec.seed,
                                    mode=target.mode,
                                    fs_factory=self.fs_factory)
        info, golden = self.cache.locate(app, self.fs_factory,
                                         campaign.locate_metadata_write)
        # The locate trace doubles as the field-map harvest: writers
        # that publish one (mini-HDF5) expose it afterwards, apps
        # without one sweep unannotated.
        write_result = getattr(app, "last_write_result", None)
        campaign.fieldmap = getattr(write_result, "fieldmap", None)
        if target.mode == "targeted":
            plan = campaign.plan_targets(target.bits, located=(info, golden))
            campaign_id = campaign.targeted_campaign_id(target.bits, golden)
        else:
            plan = campaign.plan(target.stride, located=(info, golden))
            campaign_id = campaign.campaign_id(target.stride, golden)
        return CompiledCell(
            spec=cell, planner=campaign, metadata=info,
            cell=SweepCell(key=cell.key, plan=plan, campaign_id=campaign_id))

    def plan(self) -> StudyPlan:
        """Compile the grid: resolve apps, plan every cell against the
        shared cache, and fuse the cells into one sweep plan."""
        apps = self.resolve_apps()
        compiled: List[CompiledCell] = []
        for cell in self.spec.cells():
            app = apps[cell.target.app]
            if cell.target.kind == "metadata":
                compiled.append(self._compile_metadata_cell(cell, app))
            else:
                compiled.append(self._compile_fault_cell(cell, app))
        sweep = SweepPlan(cells=tuple(c.cell for c in compiled))
        return StudyPlan(spec=self.spec, sweep=sweep, cells=tuple(compiled),
                         cache=self.cache, apps=apps)

    # -- convenience ------------------------------------------------------------

    def run(self, workers: Optional[int] = None,
            results_path: Optional[str] = None,
            resume: Optional[bool] = None,
            progress: Optional[Callable[[int, int], None]] = None,
            executor=None,
            hosts: Optional[int] = None,
            queue_root: Optional[str] = None,
            quarantine_after: Optional[int] = None) -> ResultSet:
        """``plan().execute(...)`` in one call."""
        return self.plan().execute(workers=workers, results_path=results_path,
                                   resume=resume, progress=progress,
                                   executor=executor, hosts=hosts,
                                   queue_root=queue_root,
                                   quarantine_after=quarantine_after)


def run_study(spec: StudySpec, apps: Optional[Mapping[str, object]] = None,
              **knobs) -> ResultSet:
    """Run a spec end to end (the one-liner form of :class:`Study`)."""
    return Study(spec, apps=apps).run(**knobs)
