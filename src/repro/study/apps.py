"""The application registry study specs name targets against.

A :class:`~repro.study.spec.TargetSpec` refers to its application by a
registry id, keeping specs serializable; this module maps ids to the
factories that build the application under test.  Registration stores an
import *path*, resolved on first use, so listing the ids (e.g. for CLI
``choices``) costs nothing and ``repro --version`` never constructs an
application.

The stock ids cover the paper's workloads (``nyx``, ``qmcpack``,
``montage`` at experiment scale, plus the ``nyx-small`` metadata-sweep
variant); :func:`register_app` adds custom applications for user-defined
studies.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Tuple, Union

from repro.errors import ConfigError

#: id -> factory, or ("module", "attr") import path resolved lazily.
_FACTORIES: Dict[str, Union[Callable, Tuple[str, str]]] = {
    "nyx": ("repro.experiments.params", "nyx_default"),
    "nyx-small": ("repro.experiments.params", "nyx_small"),
    "qmcpack": ("repro.experiments.params", "qmcpack_default"),
    "montage": ("repro.experiments.params", "montage_default"),
}


def app_ids() -> List[str]:
    """The registered application ids, sorted (CLI ``choices`` order)."""
    return sorted(_FACTORIES)


def register_app(app_id: str,
                 factory: Union[Callable, Tuple[str, str]]) -> None:
    """Register an application factory (a callable, or a lazy
    ``(module, attr)`` import path) under *app_id*."""
    if not app_id:
        raise ConfigError("app id must be non-empty")
    _FACTORIES[app_id] = factory


def resolve_app_factory(app_id: str) -> Callable:
    """The factory for *app_id*, importing it on first use."""
    try:
        entry = _FACTORIES[app_id]
    except KeyError:
        raise ConfigError(
            f"unknown application id {app_id!r}; choose from {app_ids()} "
            "or register_app() a custom one") from None
    if isinstance(entry, tuple):
        module, attr = entry
        entry = getattr(importlib.import_module(module), attr)
        _FACTORIES[app_id] = entry
    return entry
