"""Declarative study specifications: the serializable input of a study.

A :class:`StudySpec` is the single description of a paper-style study --
a grid of (application targets) x (fault models) x (fault scenarios)
campaigns plus the engine knobs -- as *pure data*: every field is a
scalar, a tuple, or a nested spec of scalars, so a spec round-trips
through ``dict`` and TOML losslessly and two equal specs plan identical
studies.  Compilation to the campaign engine lives in
:mod:`repro.study.study`; this module is dependency-light by design so
loading and validating specs never imports an application.

Grid semantics
==============

* Each **target** names an application (by registry id, see
  :mod:`repro.study.apps`) plus an optional injection phase.  A target
  of ``kind="metadata"`` contributes one byte-exhaustive metadata-sweep
  cell instead of crossing with the model/scenario axes.
* **models** and **scenarios** are the other two grid axes; a fault
  target produces one campaign cell per (model, scenario) pair.
* ``order`` fixes cell enumeration: ``"target"`` iterates targets
  outermost (``for target: for model: for scenario``), ``"model"``
  iterates models outermost -- the order Fig. 7 uses.
* Every cell's key is the ``-``-join of the non-empty axis labels, so
  a label of ``""`` drops that axis from the key (e.g. the multifault
  study keys its cells ``NYX-k4``, omitting its single fault model).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Cell-enumeration orders (which axis iterates outermost).
ORDERS = ("target", "model")

#: Metadata-target sweep modes (mirrors ``MetadataCampaign`` plus the
#: targeted per-field mode used by Table IV).
METADATA_MODES = ("random-bit", "all-bits", "targeted")


def _as_tuple(value: Any) -> tuple:
    if isinstance(value, tuple):
        return value
    if isinstance(value, (list, Sequence)) and not isinstance(value, (str, bytes)):
        return tuple(value)
    raise ConfigError(f"expected a sequence, got {value!r}")


@dataclass(frozen=True)
class TargetSpec:
    """One application target of a study grid.

    ``label`` is the target's cell-key part (default: the app id);
    ``phase`` restricts injection to one named application phase.  A
    ``kind="metadata"`` target plans a per-byte metadata sweep
    (``mode``/``stride``) or, with ``mode="targeted"``, the explicit
    ``bits`` list of ``(field-substring, byte-in-field, bit)`` targets.
    """

    app: str
    label: Optional[str] = None
    phase: Optional[str] = None
    kind: str = "fault"
    mode: str = "random-bit"
    stride: int = 1
    bits: Optional[Tuple[Tuple[str, int, int], ...]] = None

    def __post_init__(self) -> None:
        if not self.app:
            raise ConfigError("target needs a non-empty app id")
        if self.kind not in ("fault", "metadata"):
            raise ConfigError(
                f"target kind must be 'fault' or 'metadata', got {self.kind!r}")
        if self.mode not in METADATA_MODES:
            raise ConfigError(
                f"metadata mode must be one of {METADATA_MODES}, "
                f"got {self.mode!r}")
        if self.stride < 1:
            raise ConfigError(f"stride must be >= 1, got {self.stride}")
        if self.bits is not None:
            try:
                normalized = tuple(
                    (str(name), int(byte), int(bit))
                    for name, byte, bit in (_as_tuple(b)
                                            for b in _as_tuple(self.bits)))
            except (TypeError, ValueError) as exc:
                raise ConfigError(
                    "bits entries must be (field-substring, byte, bit) "
                    f"triplets, got {self.bits!r}: {exc}") from None
            object.__setattr__(self, "bits", normalized)
        if self.kind == "fault":
            if self.bits is not None:
                raise ConfigError("bits applies to metadata targets only")
            if self.mode != "random-bit":
                raise ConfigError("mode applies to metadata targets only")
            if self.stride != 1:
                raise ConfigError("stride applies to metadata targets only")
        else:
            if self.phase is not None:
                raise ConfigError(
                    "a metadata target sweeps one specific write; "
                    "phase does not apply")
            if self.mode == "targeted" and not self.bits:
                raise ConfigError("mode='targeted' needs a non-empty bits list")
            if self.mode != "targeted" and self.bits is not None:
                raise ConfigError("bits requires mode='targeted'")

    @property
    def key_part(self) -> str:
        return self.app if self.label is None else self.label


@dataclass(frozen=True)
class ModelSpec:
    """One fault-model axis value (name + keyword parameters).

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    specs stay hashable and equality ignores dict ordering; pass a
    mapping and it is normalized.  ``label=None`` uses the model name in
    cell keys, ``label=""`` omits the model from them.
    """

    model: str = "BF"
    label: Optional[str] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        raw = self.params
        if isinstance(raw, Mapping):
            raw = tuple(sorted(raw.items()))
        else:
            raw = tuple(sorted((str(k), v) for k, v in _as_tuple(raw)))
        object.__setattr__(self, "params", raw)
        from repro.core.fault_models import make_fault_model

        try:
            make_fault_model(self.model, **dict(self.params))
        except Exception as exc:
            raise ConfigError(
                f"invalid fault model spec {self.model!r} "
                f"{dict(self.params)!r}: {exc}") from None

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def key_part(self) -> str:
        return self.model if self.label is None else self.label


@dataclass(frozen=True)
class ScenarioSpec:
    """One fault-scenario axis value, as a scenario grammar string.

    The string uses the :func:`repro.core.scenario.parse_scenario`
    grammar (``single``, ``k=K[,window=W]``, ``burst=N``,
    ``decay[:...]``) so specs stay serializable.  ``label=None`` derives
    the cell-key part from the scenario (empty for the legacy single
    fault, the stamp otherwise).
    """

    scenario: str = "single"
    label: Optional[str] = None

    def __post_init__(self) -> None:
        self.parsed()  # validate eagerly; raises ConfigError on bad specs

    def parsed(self):
        from repro.core.scenario import parse_scenario

        return parse_scenario(self.scenario)

    @property
    def key_part(self) -> str:
        if self.label is not None:
            return self.label
        parsed = self.parsed()
        return "" if parsed.legacy else parsed.stamp()


@dataclass(frozen=True)
class CellSpec:
    """One enumerated cell of a study grid (key + its axis values).

    ``model``/``scenario`` are ``None`` for metadata cells, which do not
    cross with those axes.
    """

    key: str
    target: TargetSpec
    model: Optional[ModelSpec] = None
    scenario: Optional[ScenarioSpec] = None


@dataclass(frozen=True)
class StudySpec:
    """A complete, serializable study: axes, scale, and engine knobs.

    ``runs=None`` defers the campaign size to the environment-scaled
    experiment default (``REPRO_FI_RUNS``) at plan time; a concrete
    ``runs`` pins it.  ``workers``/``out``/``resume`` are the uniform
    engine knobs every execution path shares.
    """

    name: str = "study"
    targets: Tuple[TargetSpec, ...] = ()
    models: Tuple[ModelSpec, ...] = (ModelSpec(),)
    scenarios: Tuple[ScenarioSpec, ...] = (ScenarioSpec(),)
    order: str = "target"
    runs: Optional[int] = None
    seed: int = 0
    workers: int = 1
    out: Optional[str] = None
    resume: bool = False

    def __post_init__(self) -> None:
        for name in ("targets", "models", "scenarios"):
            object.__setattr__(self, name, _as_tuple(getattr(self, name)))
        if not self.targets:
            raise ConfigError("a study needs at least one target")
        if any(t.kind == "fault" for t in self.targets):
            if not self.models:
                raise ConfigError("fault targets need at least one model")
            if not self.scenarios:
                raise ConfigError("fault targets need at least one scenario")
        if self.order not in ORDERS:
            raise ConfigError(
                f"order must be one of {ORDERS}, got {self.order!r}")
        if self.runs is not None and self.runs < 1:
            raise ConfigError(f"runs must be >= 1, got {self.runs}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.resume and self.out is None:
            raise ConfigError("resume=True requires out")
        keys = [cell.key for cell in self.cells()]
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        if dupes:
            raise ConfigError(
                f"study {self.name!r} enumerates duplicate cell keys "
                f"{dupes}; give the colliding axis values distinct labels")

    # -- grid enumeration -------------------------------------------------------

    def _cell(self, target: TargetSpec, model: Optional[ModelSpec],
              scenario: Optional[ScenarioSpec]) -> CellSpec:
        parts = [target.key_part]
        if model is not None:
            parts.append(model.key_part)
        if scenario is not None:
            parts.append(scenario.key_part)
        key = "-".join(p for p in parts if p)
        return CellSpec(key=key, target=target, model=model, scenario=scenario)

    def cells(self) -> Tuple[CellSpec, ...]:
        """Every cell of the grid, in execution (and checkpoint) order.

        Metadata targets contribute one cell each; in ``model`` order
        they enumerate first (in target order) since they do not vary
        along the model axis.
        """
        fault = [t for t in self.targets if t.kind == "fault"]
        metadata = [t for t in self.targets if t.kind == "metadata"]
        out: List[CellSpec] = []
        if self.order == "target":
            for target in self.targets:
                if target.kind == "metadata":
                    out.append(self._cell(target, None, None))
                    continue
                for model in self.models:
                    for scenario in self.scenarios:
                        out.append(self._cell(target, model, scenario))
        else:
            out.extend(self._cell(t, None, None) for t in metadata)
            for model in self.models:
                for target in fault:
                    for scenario in self.scenarios:
                        out.append(self._cell(target, model, scenario))
        return tuple(out)

    def app_ids(self) -> Tuple[str, ...]:
        """Distinct application ids, in first-use order."""
        return tuple(dict.fromkeys(t.app for t in self.targets))

    def describe(self) -> str:
        """A human-readable cell listing straight from the spec (pure
        data: nothing is resolved or executed; the CLI ``study plan``
        view).  Fault cells show the per-cell run count (``runs`` or the
        ``REPRO_FI_RUNS`` deferral); metadata cells sweep bytes/stride,
        so their size is only known once the write is located.
        """
        from repro.analysis.tables import render_table

        runs_text = (str(self.runs) if self.runs is not None
                     else "REPRO_FI_RUNS")
        rows = []
        for cell in self.cells():
            if cell.target.kind == "metadata":
                what = f"metadata[{cell.target.mode}]"
                scenario = "-"
                runs = f"bytes/{cell.target.stride}"
            else:
                what = cell.model.model
                scenario = cell.scenario.scenario
                runs = runs_text
            rows.append([cell.key, cell.target.app, what,
                         cell.target.phase or "-", scenario, runs])
        return render_table(
            ["cell", "app", "model", "phase", "scenario", "runs"], rows,
            title=f"study {self.name!r}: {len(rows)} cells")

    def with_knobs(self, runs: Optional[int] = None, seed: Optional[int] = None,
                   workers: Optional[int] = None, out: Optional[str] = None,
                   resume: Optional[bool] = None) -> "StudySpec":
        """A copy with any provided scale/engine knobs overridden."""
        changes: Dict[str, Any] = {}
        if runs is not None:
            changes["runs"] = runs
        if seed is not None:
            changes["seed"] = seed
        if workers is not None:
            changes["workers"] = workers
        if out is not None:
            changes["out"] = out
        if resume is not None:
            changes["resume"] = resume
        return replace(self, **changes) if changes else self

    # -- dict round-trip --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain nested-dict form (``None`` values omitted: TOML has
        no null, and every omitted key defaults back to ``None``)."""

        def prune(raw: Dict[str, Any]) -> Dict[str, Any]:
            return {k: v for k, v in raw.items() if v is not None}

        out = prune({
            "name": self.name, "order": self.order, "runs": self.runs,
            "seed": self.seed, "workers": self.workers, "out": self.out,
            "resume": self.resume,
        })
        out["targets"] = [prune({
            "app": t.app, "label": t.label, "phase": t.phase,
            "kind": t.kind, "mode": t.mode, "stride": t.stride,
            "bits": None if t.bits is None else [list(b) for b in t.bits],
        }) for t in self.targets]
        out["models"] = [prune({
            "model": m.model, "label": m.label,
            "params": dict(m.params) if m.params else None,
        }) for m in self.models]
        out["scenarios"] = [prune({
            "scenario": s.scenario, "label": s.label,
        }) for s in self.scenarios]
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "StudySpec":
        """Inverse of :meth:`to_dict`; unknown keys are errors."""

        def build(klass, data: Mapping[str, Any]):
            known = {f.name for f in fields(klass)}
            unknown = set(data) - known
            if unknown:
                raise ConfigError(
                    f"unknown {klass.__name__} keys: {sorted(unknown)}")
            return klass(**data)

        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(f"unknown StudySpec keys: {sorted(unknown)}")
        data = dict(raw)
        data["targets"] = tuple(build(TargetSpec, t)
                                for t in data.get("targets", ()))
        if "models" in data:
            data["models"] = tuple(build(ModelSpec, m) for m in data["models"])
        if "scenarios" in data:
            data["scenarios"] = tuple(build(ScenarioSpec, s)
                                      for s in data["scenarios"])
        return cls(**data)

    # -- TOML round-trip --------------------------------------------------------

    def to_toml(self) -> str:
        """The spec as a TOML document (the CLI/file interchange form)."""
        raw = self.to_dict()
        lines: List[str] = []
        for key in ("name", "order", "runs", "seed", "workers", "out",
                    "resume"):
            if key in raw:
                lines.append(f"{key} = {_toml_value(raw[key])}")
        for section in ("targets", "models", "scenarios"):
            for entry in raw[section]:
                lines.append("")
                lines.append(f"[[{section}]]")
                for key, value in entry.items():
                    lines.append(f"{key} = {_toml_value(value)}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "StudySpec":
        tomllib = _toml_reader()
        try:
            raw = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"invalid study TOML: {exc}") from None
        return cls.from_dict(raw)


def _toml_reader():
    """The TOML parser: stdlib ``tomllib`` (3.11+) or the API-compatible
    ``tomli`` backport on older interpreters."""
    try:
        import tomllib
    except ImportError:  # pragma: no cover - exercised on Python < 3.11
        try:
            import tomli as tomllib
        except ImportError:
            raise ConfigError(
                "reading TOML study specs needs Python >= 3.11 (tomllib) "
                "or the tomli package") from None
    return tomllib


def _toml_value(value: Any) -> str:
    """Serialize one spec value to TOML (the restricted types specs use)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    if isinstance(value, Mapping):
        body = ", ".join(f"{k} = {_toml_value(v)}" for k, v in value.items())
        return "{" + body + "}"
    raise ConfigError(f"cannot serialize {value!r} to TOML")


def load_spec(path: str) -> StudySpec:
    """Load a :class:`StudySpec` from a TOML file."""
    with open(path, "r", encoding="utf-8") as f:
        return StudySpec.from_toml(f.read())
