"""Registered studies: the paper's grid experiments as data.

Each entry pairs a :class:`~repro.study.spec.StudySpec` builder (pure
data, environment-scaled when ``runs`` is left ``None``) with a render
function from the uniform :class:`~repro.study.resultset.ResultSet` to
the paper's table/grid text.  The grid-shaped experiment drivers
(:mod:`repro.experiments.figure7` and friends) are thin wrappers over
these declarations, and ``repro study run <id>`` executes them directly.

Builders import driver constants lazily so listing the registry stays
import-cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.study.resultset import ResultSet
from repro.study.spec import ModelSpec, ScenarioSpec, StudySpec, TargetSpec

#: Fig. 7's application axis: cell-label prefix -> app registry id.
FIGURE7_APPS: Tuple[Tuple[str, str], ...] = (
    ("NYX", "nyx"), ("QMC", "qmcpack"), ("MT", "montage"))


def figure7_spec(n_runs: Optional[int] = None, seed: int = 1,
                 include_montage_stages: bool = True,
                 app_labels: Optional[Iterable[str]] = None) -> StudySpec:
    """The Fig. 7 characterization grid as a spec.

    Cell keys and enumeration order match the paper driver exactly
    (model-major: ``NYX-BF``, ``QMC-BF``, ``MT1-BF``..``MT4-BF``,
    then SW, then DW), which is what keeps its checkpoints
    byte-identical across the declarative rewrite.
    """
    from repro.experiments.figure7 import FAULT_MODELS, MONTAGE_STAGES

    wanted = None if app_labels is None else set(app_labels)
    targets = []
    for label, app_id in FIGURE7_APPS:
        if wanted is not None and label not in wanted:
            continue
        if label == "MT":
            if not include_montage_stages:
                continue
            targets.extend(
                TargetSpec(app=app_id, label=f"MT{i}", phase=stage)
                for i, stage in enumerate(MONTAGE_STAGES, start=1))
        else:
            targets.append(TargetSpec(app=app_id, label=label))
    return StudySpec(
        name="figure7",
        targets=tuple(targets),
        models=tuple(ModelSpec(model=fm) for fm in FAULT_MODELS),
        scenarios=(ScenarioSpec(),),
        order="model", runs=n_runs, seed=seed)


def multifault_spec(n_runs: Optional[int] = None, seed: int = 1,
                    fault_model: str = "BF",
                    k_values: Optional[Sequence[int]] = None,
                    apps: Optional[Sequence[Tuple[str, str]]] = None) -> StudySpec:
    """The multi-fault SDC-vs-k grid as a spec (keys ``NYX-k4`` etc.;
    k=1 is the legacy single-fault scenario, bit-identical to Fig. 7).

    ``apps`` overrides the application axis as ``(label, app-id)``
    pairs (default: the paper's three workloads).
    """
    from repro.experiments.multifault import K_VALUES

    ks = tuple(K_VALUES if k_values is None else k_values)
    pairs = tuple(FIGURE7_APPS if apps is None else apps)
    return StudySpec(
        name="multifault",
        targets=tuple(TargetSpec(app=app_id, label=label)
                      for label, app_id in pairs),
        models=(ModelSpec(model=fault_model, label=""),),
        scenarios=tuple(
            ScenarioSpec(scenario="single" if k == 1 else f"k={k}",
                         label=f"k{k}") for k in ks),
        order="target", runs=n_runs, seed=seed)


def table3_spec(byte_stride: int = 1, seed: int = 0) -> StudySpec:
    """Table III's byte-exhaustive Nyx metadata sweep as a spec."""
    return StudySpec(
        name="table3",
        targets=(TargetSpec(app="nyx-small", label="nyx", kind="metadata",
                            mode="random-bit", stride=byte_stride),),
        seed=seed)


def table4_spec(seed: int = 0) -> StudySpec:
    """Table IV's six targeted per-field corruptions as a spec."""
    from repro.experiments.table4 import TARGETS

    bits = tuple((substring, byte, bit)
                 for _, substring, byte, bit in TARGETS)
    return StudySpec(
        name="table4",
        targets=(TargetSpec(app="nyx", label="nyx", kind="metadata",
                            mode="targeted", bits=bits),),
        seed=seed)


# -- renderers ------------------------------------------------------------------


def _render_figure7(results: ResultSet) -> str:
    from repro.analysis.tables import render_outcome_grid, render_table
    from repro.experiments.figure7 import PAPER_NOTES

    grid = render_outcome_grid(results.tallies(),
                               title="Figure 7: I/O fault characterization")
    rows = [[key, PAPER_NOTES.get(key, "-")] for key in results.keys()]
    paper = render_table(["cell", "paper"], rows, title="Figure 7 (paper)")
    return grid + "\n" + paper


def _render_multifault(results: ResultSet) -> str:
    from repro.analysis.stats import sdc_vs_k
    from repro.analysis.tables import render_outcome_grid, render_table

    grid = render_outcome_grid(
        results.tallies(),
        title="Multi-fault scenarios: outcomes vs fault count")
    apps = list(dict.fromkeys(key.rsplit("-k", 1)[0]
                              for key in results.keys()))
    curves = {
        app_label: sdc_vs_k(results.filter(
            key=lambda k, app=app_label: k.rsplit("-k", 1)[0] == app
        ).records())
        for app_label in apps}
    k_values = sorted({k for curve in curves.values() for k in curve})
    rows = [[app_label] + [str(curve.get(k, "-")) for k in k_values]
            for app_label, curve in curves.items()]
    table = render_table(
        ["app"] + [f"SDC @ k={k}" for k in k_values], rows,
        title="SDC rate vs fault count")
    return grid + "\n" + table


def _render_table3(results: ResultSet) -> str:
    from repro.experiments.table3 import render_table3_records

    return render_table3_records(results.records())


def _render_table4(results: ResultSet) -> str:
    from repro.analysis.tables import render_table

    rows = [[record.field_name or "?", record.outcome.value, record.detail]
            for record in results.records()]
    return render_table(
        ["Metadata field", "outcome", "detail"], rows,
        title="Table IV: targeted per-field corruption outcomes "
              "(run the table4 experiment driver for symptom analysis)")


@dataclass(frozen=True)
class StudyDefinition:
    """A registered study: id, description, spec builder, renderer."""

    id: str
    description: str
    build: Callable[..., StudySpec]
    render: Callable[[ResultSet], str]


STUDIES: Dict[str, StudyDefinition] = {}


def register_study(definition: StudyDefinition) -> None:
    STUDIES[definition.id] = definition


def get_study(study_id: str) -> StudyDefinition:
    try:
        return STUDIES[study_id]
    except KeyError:
        raise KeyError(
            f"unknown study {study_id!r}; choose from {sorted(STUDIES)}"
        ) from None


for _definition in (
    StudyDefinition("figure7", "Characterization grid (apps x fault models)",
                    figure7_spec, _render_figure7),
    StudyDefinition("multifault", "Outcome rates vs fault count k",
                    multifault_spec, _render_multifault),
    StudyDefinition("table3", "Byte-exhaustive faulty-metadata classification",
                    table3_spec, _render_table3),
    StudyDefinition("table4", "Targeted corruption of the SDC-capable fields",
                    table4_spec, _render_table4),
):
    register_study(_definition)
