"""The declarative Study API: one serializable spec per study.

A study -- a grid of applications x fault models x scenarios, or a
metadata sweep -- is described by a :class:`StudySpec` (pure data, TOML
round-trippable), compiled by :class:`Study` onto the fused campaign
engine, and executed to a uniform :class:`ResultSet`::

    from repro.study import ModelSpec, StudySpec, TargetSpec, run_study

    spec = StudySpec(
        name="demo",
        targets=(TargetSpec(app="nyx"), TargetSpec(app="montage")),
        models=(ModelSpec(model="BF"), ModelSpec(model="DW")),
        runs=100, seed=1)
    results = run_study(spec)
    print(results.render())
    print(results.rate(Outcome.SDC, "nyx-DW"))

The paper's grid experiments are registered under stable ids
(:data:`STUDIES`): ``get_study("figure7").build()`` returns the Fig. 7
spec, and ``repro study run figure7`` executes it from the CLI.  New
studies are data -- a TOML file or a spec literal -- not new driver
modules.
"""

from typing import Dict, Tuple

from repro.util.lazy import lazy_exports

#: Exported name -> (module, attribute), resolved on first access (PEP
#: 562) so ``import repro.study`` -- and the CLI's argparse setup --
#: stay cheap until a study actually plans or runs.
_EXPORTS: Dict[str, Tuple[str, str]] = {
    "app_ids": ("repro.study.apps", "app_ids"),
    "register_app": ("repro.study.apps", "register_app"),
    "resolve_app_factory": ("repro.study.apps", "resolve_app_factory"),
    "STUDIES": ("repro.study.registry", "STUDIES"),
    "StudyDefinition": ("repro.study.registry", "StudyDefinition"),
    "get_study": ("repro.study.registry", "get_study"),
    "register_study": ("repro.study.registry", "register_study"),
    "CellInfo": ("repro.study.resultset", "CellInfo"),
    "ResultSet": ("repro.study.resultset", "ResultSet"),
    "CellSpec": ("repro.study.spec", "CellSpec"),
    "ModelSpec": ("repro.study.spec", "ModelSpec"),
    "ScenarioSpec": ("repro.study.spec", "ScenarioSpec"),
    "StudySpec": ("repro.study.spec", "StudySpec"),
    "TargetSpec": ("repro.study.spec", "TargetSpec"),
    "load_spec": ("repro.study.spec", "load_spec"),
    "CompiledCell": ("repro.study.study", "CompiledCell"),
    "Study": ("repro.study.study", "Study"),
    "StudyPlan": ("repro.study.study", "StudyPlan"),
    "run_study": ("repro.study.study", "run_study"),
    "run_distributed": ("repro.study.dist", "run_distributed"),
    "run_study_worker": ("repro.study.dist", "run_study_worker"),
    "serve_study": ("repro.study.dist", "serve_study"),
}


__getattr__, __dir__ = lazy_exports(__name__, globals(), _EXPORTS)

__all__ = [
    "CellInfo",
    "CellSpec",
    "CompiledCell",
    "ModelSpec",
    "ResultSet",
    "STUDIES",
    "ScenarioSpec",
    "Study",
    "StudyDefinition",
    "StudyPlan",
    "StudySpec",
    "TargetSpec",
    "app_ids",
    "get_study",
    "load_spec",
    "register_app",
    "register_study",
    "resolve_app_factory",
    "run_distributed",
    "run_study",
    "run_study_worker",
    "serve_study",
]
