"""The uniform result container every study execution returns.

A :class:`ResultSet` is per-cell run records plus lightweight cell
metadata, with one query surface (filter / group / tally / rates), one
persistence format (the engine's stamped-JSONL checkpoint schema, v1 and
v2 lines alike), and one default renderer (the paper's outcome grid).
Drivers that used to return bespoke result shapes now adapt from this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.engine import JsonlSink, load_records_by_campaign
from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.errors import FFISError

#: Key used for records whose checkpoint lines carry no campaign stamp.
UNSTAMPED_KEY = "results"


@dataclass(frozen=True)
class CellInfo:
    """What a result set remembers about one cell beyond its records."""

    key: str
    campaign_id: Optional[str] = None
    app_name: str = ""
    signature: str = ""
    phase: Optional[str] = None
    scenario: Optional[str] = None
    kind: str = "fault"

    def summary_label(self) -> str:
        label = f"{self.app_name}/{self.signature}" if self.signature \
            else (self.app_name or self.key)
        if self.scenario:
            label += f" <{self.scenario}>"
        if self.phase:
            label += f" [{self.phase}]"
        return label


class ResultSet:
    """Per-cell run records with uniform query/persist/render behavior."""

    def __init__(self, records: Mapping[str, Sequence[RunRecord]],
                 info: Optional[Mapping[str, CellInfo]] = None,
                 fault_free_runs: int = 0, executed: Optional[int] = None,
                 elapsed_seconds: float = 0.0,
                 degradation: Optional[Any] = None) -> None:
        self._records: Dict[str, List[RunRecord]] = {
            key: list(cell) for key, cell in records.items()}
        self.info: Dict[str, CellInfo] = dict(info or {})
        for key in self._records:
            self.info.setdefault(key, CellInfo(key=key))
        #: Fault-free application executions the study paid for.
        self.fault_free_runs = fault_free_runs
        #: Runs executed by the originating invocation (the rest were
        #: resumed from a checkpoint).  ``None`` on derived or loaded
        #: result sets, where the split is unknowable -- the footer
        #: then omits it rather than misreporting.
        self.executed = executed
        self.elapsed_seconds = elapsed_seconds
        #: The distributed engine's
        #: :class:`~repro.core.engine.dist.coordinator.DegradationReport`
        #: when the campaign took any fallback (quarantine, shrunken
        #: fleet, serial/direct drain); ``None`` on the normal path.
        self.degradation = degradation

    # -- access -----------------------------------------------------------------

    def keys(self) -> List[str]:
        return list(self._records)

    def cell(self, key: str) -> List[RunRecord]:
        """The records of one cell (KeyError for unknown keys)."""
        return list(self._records[key])

    def records(self, key: Optional[str] = None) -> List[RunRecord]:
        """All records (cell order), or one cell's records."""
        if key is not None:
            return self.cell(key)
        return [record for cell in self._records.values() for record in cell]

    def __len__(self) -> int:
        return sum(len(cell) for cell in self._records.values())

    def __iter__(self) -> Iterator[Tuple[str, RunRecord]]:
        for key, cell in self._records.items():
            for record in cell:
                yield key, record

    def __contains__(self, key: str) -> bool:
        return key in self._records

    # -- queries ----------------------------------------------------------------

    def tally(self, key: Optional[str] = None) -> OutcomeTally:
        return OutcomeTally.from_records(self.records(key))

    def tallies(self) -> Dict[str, OutcomeTally]:
        return {key: OutcomeTally.from_records(cell)
                for key, cell in self._records.items()}

    def rate(self, outcome: Outcome, key: Optional[str] = None) -> float:
        return self.tally(key).rate(outcome)

    def rates(self, key: Optional[str] = None) -> Mapping[Outcome, float]:
        return self.tally(key).rates()

    def error_bars(self, key: Optional[str] = None):
        """Per-outcome 95 % interval estimates (Wilson, like the CLI)."""
        from repro.analysis.stats import campaign_error_bars

        return campaign_error_bars(self.tally(key))

    def filter(self, predicate: Optional[Callable[[str, RunRecord], bool]] = None,
               *, key: Optional[Callable[[str], bool]] = None,
               outcome: Optional[Outcome] = None,
               phase: Optional[str] = None,
               scenario: Optional[str] = None,
               fault_fired: Optional[bool] = None) -> "ResultSet":
        """A sub-result-set keeping the records that match every given
        criterion (cells left empty by the filter are dropped)."""
        def keep(cell_key: str, record: RunRecord) -> bool:
            if key is not None and not key(cell_key):
                return False
            if outcome is not None and record.outcome is not outcome:
                return False
            if phase is not None and record.phase != phase:
                return False
            if scenario is not None and record.scenario != scenario:
                return False
            if fault_fired is not None and record.fault_fired != fault_fired:
                return False
            if predicate is not None and not predicate(cell_key, record):
                return False
            return True

        kept = {cell_key: [r for r in cell if keep(cell_key, r)]
                for cell_key, cell in self._records.items()}
        kept = {k: v for k, v in kept.items() if v}
        return ResultSet(kept, info={k: self.info[k] for k in kept},
                         fault_free_runs=self.fault_free_runs,
                         elapsed_seconds=self.elapsed_seconds)

    def group(self, fn: Callable[[str, RunRecord], Any]) -> Dict[Any, "ResultSet"]:
        """Partition the records by ``fn(key, record)`` into result sets
        (each keeps the originating cell structure and metadata)."""
        grouped: Dict[Any, Dict[str, List[RunRecord]]] = {}
        for cell_key, record in self:
            grouped.setdefault(fn(cell_key, record), {}) \
                   .setdefault(cell_key, []).append(record)
        return {
            value: ResultSet(cells,
                             info={k: self.info[k] for k in cells},
                             fault_free_runs=self.fault_free_runs,
                             elapsed_seconds=self.elapsed_seconds)
            for value, cells in grouped.items()}

    # -- persistence ------------------------------------------------------------

    def to_jsonl(self, path: str) -> None:
        """Persist every record in the engine's stamped-JSONL checkpoint
        schema (cell by cell; each line carries its cell's campaign
        identity, legacy records keep the exact v1 layout).

        Like the engine's multi-cell checkpoints, a multi-cell result
        set refuses to write unstamped cells: their lines could never be
        attributed back, so :meth:`from_jsonl` would silently merge the
        cells into one.
        """
        if len(self._records) > 1:
            unstamped = [key for key in self._records
                         if self.info[key].campaign_id is None]
            if unstamped:
                raise FFISError(
                    f"cells {unstamped} have no campaign_id; a multi-cell "
                    "result set needs every line stamped to round-trip "
                    "(give each cell a CellInfo with a campaign_id)")
        sink = JsonlSink(path)
        try:
            for key, cell in self._records.items():
                campaign_id = self.info[key].campaign_id
                for record in cell:
                    sink.emit_stamped(record, campaign_id)
        finally:
            sink.close()

    @classmethod
    def from_jsonl(cls, path: str,
                   info: Optional[Mapping[str, CellInfo]] = None) -> "ResultSet":
        """Load a stamped-JSONL results file (v1 and v2 lines alike).

        Reading follows the engine's checkpoint contract: an
        *unterminated* final line is forgiven as a mid-``emit`` kill,
        while a newline-terminated undecodable line raises.  With *info*
        (e.g. from a prior study run), stamped groups are mapped back to
        their cell keys; otherwise each campaign stamp keys its own
        cell and unstamped lines group under ``"results"``.
        """
        by_id: Dict[str, str] = {}
        for cell in (info or {}).values():
            if cell.campaign_id is not None:
                by_id[cell.campaign_id] = cell.key
        records: Dict[str, List[RunRecord]] = {}
        for stamp, group in load_records_by_campaign(path).items():
            if stamp is None:
                key = UNSTAMPED_KEY
            else:
                key = by_id.get(stamp, stamp)
            records.setdefault(key, []).extend(group)
        for cell_records in records.values():
            cell_records.sort(key=lambda record: record.run_index)
        kept_info = {key: cell for key, cell in (info or {}).items()
                     if key in records}
        return cls(records, info=kept_info)

    # -- reporting --------------------------------------------------------------

    def render(self, title: Optional[str] = None) -> str:
        """The outcome grid (one row per cell), the paper's layout."""
        from repro.analysis.tables import render_outcome_grid

        return render_outcome_grid(self.tallies(), title=title)

    def footer(self) -> str:
        """The one-line execution summary (cells/records/shared work).

        The executed/resumed split appears only on result sets that came
        straight from an execution; derived (filtered/grouped) and
        loaded sets cannot know it and omit it.
        """
        split = ""
        if self.executed is not None:
            split = (f" ({self.executed} executed, "
                     f"{len(self) - self.executed} resumed)")
        line = (
            f"study: {len(self._records)} cells, {len(self)} records"
            f"{split}, {self.fault_free_runs} shared fault-free runs, "
            f"{self.elapsed_seconds:.1f}s")
        if self.degradation is not None:
            line += f"\n{self.degradation.describe()}"
        return line

    def summary(self) -> str:
        """Per-cell one-liners plus the study's shared-work footer."""
        lines = [f"{key}: {tally} ({tally.total} runs)"
                 for key, tally in self.tallies().items()]
        lines.append(self.footer())
        return "\n".join(lines)
