"""Distributed studies: one spec, many hosts, one merged result.

The study layer's contribution to distribution is *identity*: a
:class:`~repro.study.spec.StudySpec` is one serializable value, so a
worker on another host can rebuild the exact plan the coordinator is
serving -- same apps, same seeds, same specs -- from the spec alone,
and the queue manifest verifies the rebuild before a single run
executes.  Three entry points:

* :func:`run_distributed` -- the local form: fork ``hosts`` worker
  processes over an already-compiled plan and return a
  :class:`~repro.study.resultset.ResultSet` identical to ``workers=1``
  serial execution (``StudyPlan.execute(hosts=...)`` calls this);
* :func:`serve_study` -- the coordinator half of the cross-host form:
  post leases, expire stale claims, merge when the fleet finishes
  (``repro study serve``);
* :func:`run_study_worker` -- the worker half: rebuild the plan from
  the spec and drain leases until the coordinator calls it
  (``repro worker``).
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Callable, Dict, Mapping, Optional

from repro.core.engine.dist import (
    DEFAULT_QUARANTINE_AFTER,
    Coordinator,
    DegradationReport,
    WorkerStats,
    execute_distributed,
    run_worker,
)
from repro.errors import FFISError
from repro.fusefs.vfs import FFISFileSystem
from repro.study.resultset import ResultSet
from repro.study.spec import StudySpec
from repro.study.study import Study, StudyPlan


def _result_set(plan: StudyPlan, records, executed: int,
                elapsed_seconds: float,
                degradation=None) -> ResultSet:
    return ResultSet(
        {cell.key: records[cell.key] for cell in plan.cells},
        info=plan.cell_info(),
        fault_free_runs=plan.cache.fault_free_runs(),
        executed=executed,
        elapsed_seconds=elapsed_seconds,
        degradation=degradation)


def run_distributed(plan: StudyPlan, *,
                    hosts: int = 2,
                    queue_root: Optional[str] = None,
                    lease_runs: Optional[int] = None,
                    lease_ttl: float = 30.0,
                    results_path: Optional[str] = None,
                    resume: bool = False,
                    poll_interval: float = 0.05,
                    timeout: Optional[float] = None,
                    quarantine_after: int = DEFAULT_QUARANTINE_AFTER
                    ) -> ResultSet:
    """Execute a compiled study across *hosts* forked local workers.

    Records, ordering, and the checkpoint file (when *results_path* is
    given) are byte-identical to serial execution; a worker SIGKILLed
    mid-lease costs wall-clock time, never records.  *queue_root*
    defaults to a throwaway directory; pass one explicitly to make the
    campaign resumable after a coordinator crash.  A campaign that had
    to take any fallback (poison-lease quarantine, shrunken fleet,
    in-process draining) reports it on ``result.degradation``.
    """
    if queue_root is None:
        if resume:
            raise FFISError(
                "resume=True needs the queue_root of the interrupted "
                "campaign; a fresh throwaway queue has nothing to resume")
        queue_root = tempfile.mkdtemp(prefix="repro-queue-")
    sweep = execute_distributed(
        plan.sweep, queue_root, workers=hosts, lease_runs=lease_runs,
        lease_ttl=lease_ttl, results_path=results_path, resume=resume,
        poll_interval=poll_interval, timeout=timeout,
        quarantine_after=quarantine_after)
    return _result_set(plan, sweep.records, sweep.executed,
                       sweep.elapsed_seconds,
                       degradation=sweep.degradation)


def serve_study(plan: StudyPlan, queue_root: str, *,
                lease_runs: Optional[int] = None,
                lease_ttl: float = 30.0,
                hosts: int = 2,
                results_path: Optional[str] = None,
                resume: bool = False,
                poll_interval: float = 0.5,
                timeout: Optional[float] = None,
                progress: Optional[Callable[[Dict[str, int]], None]] = None,
                quarantine_after: int = DEFAULT_QUARANTINE_AFTER
                ) -> ResultSet:
    """Coordinate a worker fleet that attaches on its own schedule.

    Posts the plan's leases at *queue_root*, then loops: expire stale
    claims, report progress, wait.  Workers -- started by hand, by a
    scheduler, on other hosts -- attach with ``repro worker`` pointed
    at the same directory.  When every lease settles, the shards are
    merged (to *results_path*, if given) and the fleet is released via
    the FINISHED marker.  ``resume=True`` re-opens an interrupted
    queue; *hosts* only sizes the default lease granularity here.

    A campaign that settles around quarantined poison leases finishes
    with a **partial** merge: completed runs byte-identical to serial,
    holes written to a machine-readable report beside the checkpoint,
    and the result's ``degradation`` naming what is missing.
    """
    if results_path is not None and not resume \
            and os.path.exists(results_path) and os.path.getsize(results_path):
        raise FFISError(
            f"{results_path} already contains results; resume it "
            "(--resume / resume=True) or write to a fresh --out path "
            "instead of overwriting completed runs")
    # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
    start = time.perf_counter()
    coordinator = Coordinator(plan.sweep, queue_root, lease_runs=lease_runs,
                              lease_ttl=lease_ttl, workers=hosts,
                              quarantine_after=quarantine_after)
    queue = coordinator.post(reuse=resume)
    # repro: allow[R001] campaign deadline is a hang backstop, never recorded
    deadline = None if timeout is None else time.monotonic() + timeout
    while not queue.settled():
        try:
            coordinator.expire()
        except OSError:
            pass  # expiry is best-effort; the next sweep retries
        if progress is not None:
            progress(queue.counts())
        # repro: allow[R001] hang-backstop check only, never recorded
        if deadline is not None and time.monotonic() > deadline:
            raise FFISError(
                f"campaign at {queue_root} exceeded its {timeout}s "
                f"timeout with work outstanding ({queue.counts()}); "
                "the queue directory is intact -- serve it again with "
                "--resume")
        time.sleep(poll_interval)
    partial = not queue.all_done()
    merged, stats = coordinator.finish(results_path=results_path,
                                       overwrite=True, partial=partial)
    degradation = None
    if partial:
        degradation = DegradationReport()
        degradation.record(
            "partial-merge",
            "campaign settled around quarantined leases; completed "
            "cells merged byte-identical, holes reported")
        degradation.quarantined = queue.counts()["quarantined"]
        degradation.holes = stats.holes
    # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
    elapsed = time.perf_counter() - start
    return _result_set(plan, merged, stats.total, elapsed,
                       degradation=degradation)


def run_study_worker(queue_root: str, spec: StudySpec, *,
                     apps: Optional[Mapping[str, object]] = None,
                     fs_factory: Callable[[], FFISFileSystem] = FFISFileSystem,
                     worker_id: Optional[str] = None,
                     poll_interval: float = 0.05,
                     reclaim_ttl: Optional[float] = None,
                     max_idle_polls: Optional[int] = None) -> WorkerStats:
    """Rebuild *spec*'s plan and drain leases from *queue_root*.

    This is the cross-host worker: it pays the plan's fault-free
    profiling/golden cost once locally (determinism makes its rebuild
    identical to the coordinator's), verifies the rebuild against the
    queue manifest, and then executes leases until the coordinator
    raises FINISHED.  ``reclaim_ttl`` lets a coordinator-less fleet
    expire dead peers' claims itself.
    """
    plan = Study(spec, apps=apps, fs_factory=fs_factory).plan()
    if worker_id is None:
        worker_id = f"host{os.getpid()}"
    return run_worker(queue_root, plan.sweep, worker_id,
                      poll_interval=poll_interval, reclaim_ttl=reclaim_ttl,
                      max_idle_polls=max_idle_polls)
