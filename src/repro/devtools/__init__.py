"""Developer tooling that guards the repository's invariants.

Everything under :mod:`repro.devtools` is **stdlib-only by contract**:
it must run on a bare Python interpreter before any dependency install
(the CI fast lane invokes ``repro lint`` ahead of ``pip install
numpy``).  Importing numpy -- directly or transitively -- from this
package is itself a bug.
"""
