"""Entry point: ``python -m repro.devtools.lint`` (stdlib-only)."""

from repro.devtools.lint.cli import main

raise SystemExit(main())
