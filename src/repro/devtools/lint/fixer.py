"""Exact-span autofixes for the mechanical subset of lint findings.

A fix is a tuple of :data:`Edit` spans -- ``(line, col, end_line,
end_col, replacement)`` with 1-based lines and 0-based columns --
attached to a :class:`~repro.devtools.lint.registry.Violation` by the
rule that produced it.  Only rules whose remedy is purely syntactic
carry fixes:

* **R003** -- wrap the unordered iterable in ``sorted(...)`` (two
  zero-width insertions around the exact expression span).
* **R000 unused pragma** -- delete the stale comment (the whole line
  when the pragma is the line's only content).

:func:`fix_report` applies every fix in a report bottom-up per file,
skipping overlapping spans, and returns the rewritten sources plus the
violations that remain unfixed.  Applying the fixer twice is a no-op:
each fix removes the condition its rule fires on, so the second run
finds nothing to rewrite -- the idempotence contract the tests pin.
"""

from __future__ import annotations

import difflib
from typing import Dict, List, Tuple

from repro.devtools.lint.pragmas import Pragma
from repro.devtools.lint.registry import Violation

#: One source rewrite: replace ``[(line, col), (end_line, end_col))``
#: with ``replacement``.  Lines 1-based, columns 0-based (ast's own
#: convention), so rules can mint edits straight from node positions.
Edit = Tuple[int, int, int, int, str]


def sorted_wrap_fix(node) -> Tuple[Edit, ...]:
    """Wrap the expression *node* in ``sorted(...)`` in place."""
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return ()
    return (
        (node.lineno, node.col_offset, node.lineno, node.col_offset,
         "sorted("),
        (end_line, end_col, end_line, end_col, ")"),
    )


def pragma_removal_fix(source: str, pragma: Pragma) -> Tuple[Edit, ...]:
    """Delete an unused pragma comment (or its whole line)."""
    lines = source.splitlines(keepends=True)
    if pragma.line > len(lines):
        return ()
    if pragma.own_line:
        # The comment is the line's only content: drop the line.
        return ((pragma.line, 0, pragma.line + 1, 0, ""),)
    # Trailing comment: delete it plus the whitespace separating it
    # from the code, leaving the statement (and newline) intact.
    text = lines[pragma.line - 1]
    start = pragma.col
    while start > 0 and text[start - 1] in " \t":
        start -= 1
    return ((pragma.line, start, pragma.line, pragma.end_col, ""),)


def _offset_of(line_starts: List[int], source_len: int,
               line: int, col: int) -> int:
    if line - 1 >= len(line_starts):
        return source_len
    return min(line_starts[line - 1] + col, source_len)


def apply_edits(source: str, edits: List[Edit]) -> str:
    """Apply *edits* to *source*, last-span-first, skipping overlaps."""
    line_starts = [0]
    for text_line in source.splitlines(keepends=True):
        line_starts.append(line_starts[-1] + len(text_line))
    spans = []
    for line, col, end_line, end_col, replacement in edits:
        start = _offset_of(line_starts, len(source), line, col)
        end = _offset_of(line_starts, len(source), end_line, end_col)
        if end >= start:
            spans.append((start, end, replacement))
    spans.sort(key=lambda s: (s[0], s[1]))
    result = source
    last_start = len(source) + 1
    for start, end, replacement in reversed(spans):
        if end > last_start:
            continue   # overlaps an edit already applied; leave it
        result = result[:start] + replacement + result[end:]
        last_start = start
    return result


def fix_report(report) -> Tuple[Dict[str, str], List[Violation],
                                List[Violation]]:
    """Compute the rewrites for every fixable violation in *report*.

    Returns ``(new_sources, fixed, remaining)``: repository-relative
    path -> rewritten content for each file with at least one applied
    fix, the violations whose fixes were applied, and those left for a
    human.  Nothing is written to disk here -- the CLI owns that.
    """
    by_file: Dict[str, List[Violation]] = {}
    for violation in report.violations:
        if violation.fix:
            by_file.setdefault(violation.path, []).append(violation)
    new_sources: Dict[str, str] = {}
    fixed: List[Violation] = []
    fixable = {id(v) for vs in by_file.values() for v in vs}
    for relpath, violations in sorted(by_file.items()):
        real = report.file_map.get(relpath, relpath)
        try:
            with open(real, encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            fixable.difference_update(id(v) for v in violations)
            continue
        edits = [edit for v in violations for edit in v.fix]
        rewritten = apply_edits(source, edits)
        if rewritten != source:
            new_sources[relpath] = rewritten
            fixed.extend(violations)
        else:
            fixable.difference_update(id(v) for v in violations)
    remaining = [v for v in report.violations if id(v) not in fixable]
    return new_sources, fixed, remaining


def render_diff(report, new_sources: Dict[str, str]) -> str:
    """Unified diff of the rewrites (``--fix --diff`` preview)."""
    chunks: List[str] = []
    for relpath in sorted(new_sources):
        real = report.file_map.get(relpath, relpath)
        try:
            with open(real, encoding="utf-8") as handle:
                before = handle.read()
        except OSError:
            continue
        diff = difflib.unified_diff(
            before.splitlines(keepends=True),
            new_sources[relpath].splitlines(keepends=True),
            fromfile=f"a/{relpath}", tofile=f"b/{relpath}")
        chunks.append("".join(diff))
    return "".join(chunks)


def write_fixes(report, new_sources: Dict[str, str]) -> List[str]:
    """Write the rewrites to disk; returns the files touched."""
    touched = []
    for relpath in sorted(new_sources):
        real = report.file_map.get(relpath, relpath)
        with open(real, "w", encoding="utf-8") as handle:
            handle.write(new_sources[relpath])
        touched.append(relpath)
    return touched
