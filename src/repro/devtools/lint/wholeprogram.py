"""The whole-program rule pack: R007--R010.

Where R001--R006 check one file at a time, these rules reason over the
:class:`ProjectAnalysis` -- the call graph plus propagated effect
summaries of every file in the lint run -- because the invariants they
enforce only exist across function and module boundaries:

* **R007** (fork-effect safety): a function reachable from a fork/spawn
  entry point runs in a child process, where writes to module-level
  state silently diverge from the parent.  Only the sanctioned
  capture-then-fork registries may be written there.
* **R008** (queue-protocol conformance): the lease queue's crash
  story holds only if *every* mutation of its state directories goes
  through claim-by-atomic-rename and done-file-authoritative
  completion.  A raw in-place write or an unguarded unlink anywhere --
  including through a helper the path was passed to -- reopens the
  torn-state windows the protocol closed.
* **R009** (shutdown soundness): a function that acquires a
  queue/worker/shard resource and releases it explicitly must release
  in a ``finally`` -- otherwise one raise strands the FINISHED marker
  or an unflushed shard tail, exactly the hangs the dist tests exist
  to prevent.
* **R010** (sink plan-order): record emission driven by a raw
  ``os.listdir``/``glob``/``iterdir`` enumeration writes records in
  filesystem-hash order; the record stream is only byte-stable if the
  iteration is sorted into plan order first.

All rules yield violations at the precise offending statement, in
deterministic (sorted-qualname) order, and are suppressible with the
same ``# repro: allow[R00N] reason`` pragma as per-file rules.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.devtools.lint.callgraph import CallGraph, Project, build_project
from repro.devtools.lint.dataflow import (
    Summary,
    propagate,
    state_roots,
    summarize,
)
from repro.devtools.lint.registry import (
    FileContext,
    ProjectRule,
    Scope,
    Violation,
    register,
)
from repro.devtools.lint.rules import _DEVTOOLS, _ENGINE_PATHS


@dataclasses.dataclass
class ProjectAnalysis:
    """Everything a :class:`ProjectRule` may ask about the lint run."""

    project: Project
    graph: CallGraph
    summaries: Dict[str, Summary]

    def relpath_of(self, qualname: str) -> str:
        fn = self.project.function(qualname)
        return fn.ctx.path if fn is not None else ""

    def items(self) -> Iterator[Tuple[str, Summary, str]]:
        """``(qualname, summary, relpath)`` in deterministic order."""
        for qualname in sorted(self.summaries):
            fn = self.project.function(qualname)
            if fn is not None:
                yield qualname, self.summaries[qualname], fn.ctx.path


def build_analysis(
        files: Iterable[Tuple[str, FileContext]]) -> ProjectAnalysis:
    """Call graph + fixpoint-propagated summaries for one lint run."""
    project = build_project(files)
    graph = CallGraph.build(project)
    summaries = propagate(project, graph, summarize(project))
    return ProjectAnalysis(project=project, graph=graph,
                           summaries=summaries)


@register
class ForkEffectRule(ProjectRule):
    """R007: no module-global writes reachable from a fork boundary."""

    id = "R007"
    name = "fork-effect-safety"
    rationale = ("functions reachable from a fork/spawn entry run in "
                 "child processes where module-global writes silently "
                 "diverge from the parent")
    scope = Scope(include=_ENGINE_PATHS, exclude=_DEVTOOLS)

    #: The capture-then-fork registries the executor owns; writing them
    #: from worker context is the sanctioned pattern, not a leak.
    sanctioned = frozenset({"_FORK_REGISTRY", "_WORKER_STATE"})
    #: Functions that are worker entry points by contract even when no
    #: fork edge in the analyzed files hands them to an executor (they
    #: are spawned via the CLI across hosts).
    entry_names = frozenset({"run_worker"})

    def check_project(self,
                      analysis: ProjectAnalysis) -> Iterator[Violation]:
        roots = set(analysis.graph.fork_entries)
        roots.update(q for q in analysis.project.functions
                     if q.rsplit(".", 1)[-1] in self.entry_names)
        reachable = analysis.graph.reachable_from(sorted(roots))
        for qualname, summary, relpath in analysis.items():
            if qualname not in reachable:
                continue
            for write in summary.global_writes:
                if write.name in self.sanctioned:
                    continue
                verb = "rebinds" if write.kind == "rebind" else "mutates"
                yield self.project_violation(
                    relpath, write.line, write.col,
                    f"{qualname} {verb} module-level {write.name!r} and "
                    "is reachable from a fork/spawn entry point; "
                    "child-process writes to module state diverge "
                    "silently -- pass state explicitly or use the "
                    "sanctioned capture registries")


@register
class QueueProtocolRule(ProjectRule):
    """R008: queue state dirs change only through the lease protocol."""

    id = "R008"
    name = "queue-protocol"
    rationale = ("raw filesystem mutations under pending/, leased/, "
                 "done/, or shards/ that bypass claim-by-atomic-rename "
                 "or done-file-authoritative completion reopen the "
                 "torn-state crash windows the protocol closed")
    scope = Scope(include=("*repro/core/*", "*repro/apps/*"),
                  exclude=_DEVTOOLS)

    #: Legal direct state-to-state renames: claiming, re-posting, and
    #: quarantining a damaged or poison lease.  Completion never renames
    #: into done/ directly -- it publishes a tmp sibling (detected via
    #: the ``suffixed`` provenance marker).
    legal_renames = frozenset({("pending", "leased"),
                               ("leased", "pending"),
                               ("pending", "quarantine"),
                               ("leased", "quarantine")})

    def check_project(self,
                      analysis: ProjectAnalysis) -> Iterator[Violation]:
        for qualname, summary, relpath in analysis.items():
            yield from self._check_fs_ops(summary, relpath)
            yield from self._check_helper_passes(analysis, summary,
                                                 relpath)

    def _check_fs_ops(self, summary: Summary,
                      relpath: str) -> Iterator[Violation]:
        for op in summary.fs_ops:
            if op.kind == "open_w":
                states = sorted(state_roots(op.path_roots))
                if states and not op.atomic_publish:
                    yield self.project_violation(
                        relpath, op.line, op.col,
                        "in-place write under queue state dir "
                        f"{'/'.join(states)}/: a crash mid-write leaves "
                        "a torn entry other workers will read; write a "
                        "tmp sibling and os.replace() it into place")
            elif op.kind == "rename":
                yield from self._check_rename(op, relpath)
            elif op.kind == "unlink":
                yield from self._check_unlink(op, relpath)

    def _check_rename(self, op, relpath: str) -> Iterator[Violation]:
        src = state_roots(op.src_roots)
        dst = state_roots(op.dst_roots)
        if "done" in src:
            yield self.project_violation(
                relpath, op.line, op.col,
                "moves an entry out of done/: done files are the "
                "authoritative completion record and must never be "
                "renamed away")
            return
        if "done" in dst and "suffixed" not in op.src_roots:
            yield self.project_violation(
                relpath, op.line, op.col,
                "renames directly into done/: completion must publish "
                "through a tmp sibling (write then os.replace) so a "
                "crash never leaves a torn done file")
            return
        if "suffixed" in op.src_roots:
            return   # tmp-sibling atomic publish: always sanctioned
        for s in sorted(src - {"done"}):
            for d in sorted(dst - {"done"}):
                if s != d and (s, d) not in self.legal_renames:
                    yield self.project_violation(
                        relpath, op.line, op.col,
                        f"renames {s}/ -> {d}/, which is not a lease "
                        "transition the protocol defines (legal: "
                        "pending<->leased, quarantining, tmp-sibling "
                        "publishes)")

    def _check_unlink(self, op, relpath: str) -> Iterator[Violation]:
        states = state_roots(op.path_roots)
        if "done" in states:
            yield self.project_violation(
                relpath, op.line, op.col,
                "unlinks a done/ entry: done files are the "
                "authoritative completion record; deleting one "
                "re-executes paid-for work")
        elif states & {"pending", "leased"} and not op.done_guarded:
            which = "/".join(sorted(states & {"pending", "leased"}))
            yield self.project_violation(
                relpath, op.line, op.col,
                f"unlinks a {which}/ entry without first checking its "
                "done/ record exists; an unguarded delete can discard "
                "the only copy of an unfinished lease")

    def _check_helper_passes(self, analysis: ProjectAnalysis,
                             summary: Summary,
                             relpath: str) -> Iterator[Violation]:
        for state_pass in summary.state_arg_passes:
            callee = analysis.summaries.get(state_pass.callee)
            if callee is None:
                continue
            if state_pass.param in callee.unatomic_write_params:
                states = "/".join(sorted(state_roots(state_pass.roots)))
                yield self.project_violation(
                    relpath, state_pass.line, state_pass.col,
                    f"passes a {states}/ path to {state_pass.callee}, "
                    "which opens it for writing in place (no tmp-"
                    "sibling publish); the torn-write window crosses "
                    "the call boundary but is still a protocol breach")


@register
class ShutdownSoundnessRule(ProjectRule):
    """R009: explicit releases after an acquire live in ``finally``."""

    id = "R009"
    name = "shutdown-soundness"
    rationale = ("a function that acquires queue/worker/shard resources "
                 "and releases them explicitly must release in a "
                 "finally, or one raise strands the FINISHED marker or "
                 "an unflushed shard tail")
    scope = Scope(include=_ENGINE_PATHS, exclude=_DEVTOOLS)

    def check_project(self,
                      analysis: ProjectAnalysis) -> Iterator[Violation]:
        for qualname, summary, relpath in analysis.items():
            if not summary.acquires:
                continue
            releases: List[Tuple[int, int, str, bool]] = [
                (site.line, site.col, f"{site.attr}()", site.in_finally)
                for site in summary.release_sites]
            for call in summary.call_sites:
                callee = analysis.summaries.get(call.callee)
                # A call is this function's release step only when the
                # callee purely releases (finish(), close() wrappers);
                # a callee that also acquires manages its own lifetime.
                if callee is not None and callee.releases_trans \
                        and not callee.acquires_trans:
                    releases.append((call.line, call.col,
                                     f"{call.callee}()",
                                     call.in_finally))
            if not releases or any(infin for *_x, infin in releases):
                continue   # with-block managed, or finally-dominated
            for line, col, what, _infin in sorted(set(releases)):
                yield self.project_violation(
                    relpath, line, col,
                    f"{qualname} acquires a resource but its release "
                    f"{what} is not dominated by a finally; a raise "
                    "between acquire and release strands the resource "
                    "-- move the release into try/finally")


@register
class SinkPlanOrderRule(ProjectRule):
    """R010: no record emission driven by filesystem-hash iteration."""

    id = "R010"
    name = "sink-plan-order"
    rationale = ("emitting records while iterating an unordered "
                 "filesystem enumeration writes the stream in "
                 "fs-hash order, breaking byte-identity with serial "
                 "execution; sort into plan order first")
    scope = Scope(include=("*repro/core/*", "*repro/apps/*"),
                  exclude=_DEVTOOLS)

    def check_project(self,
                      analysis: ProjectAnalysis) -> Iterator[Violation]:
        for qualname, summary, relpath in analysis.items():
            for loop in summary.loops:
                emits = loop.emits_direct or any(
                    callee in analysis.summaries
                    and analysis.summaries[callee].emits_trans
                    for callee in loop.body_callees)
                if not emits:
                    continue
                yield self.project_violation(
                    relpath, loop.line, loop.col,
                    f"{qualname} emits records while iterating an "
                    "unordered filesystem enumeration "
                    "(listdir/glob/iterdir order is hash-arbitrary); "
                    "sort the entries into plan order before emitting")
