"""Per-function effect summaries, propagated over the call graph.

Each function of the :class:`~repro.devtools.lint.callgraph.Project`
gets one :class:`Summary` describing the effects the whole-program
rules care about:

* **module-global writes** -- ``global X`` rebinding plus in-place
  mutation of module-level names (``CACHE[k] = v``, ``CACHE.append``),
  including cross-module writes through an imported module attribute.
  Each write keeps its source location so R007 can point at the
  statement, not the function.
* **filesystem mutations** with *path provenance*: ``os.rename`` /
  ``os.replace`` / ``os.unlink`` / ``open(..., "w")`` calls, each
  carrying the set of provenance roots its path expression derives
  from.  Roots include queue state directories (``state:pending`` for
  ``self.pending_dir`` or ``os.path.join(root, "pending")``),
  parameters (``param:name``), and a ``suffixed`` marker for
  tmp-sibling spellings (``path + ".tmp"``) -- enough for R008 to tell
  an atomic publish from an in-place overwrite across function
  boundaries.
* **record emission / resource acquire / release** structure: does the
  function emit records, start workers or open shards, raise the
  FINISHED marker or close a sink -- and is each release site inside a
  ``finally`` handler (R009's domination check).
* **ordered-iteration shape**: loops whose iterable comes from an
  unordered filesystem enumeration, with the body's call targets, so
  R010 can ask "does this hash-ordered loop eventually emit".

:func:`propagate` closes the reachable-effect bits (emits, acquires,
releases, parameter-to-raw-write flows) over the call graph to a
fixpoint; set union is monotone, so mutual recursion terminates.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.devtools.lint.callgraph import (
    CallGraph,
    CallResolver,
    FunctionInfo,
    Project,
)

#: Queue state directories and the attribute / path-literal spellings
#: that denote them.  ``shards`` is tracked too: shard files are the
#: record stream itself.
STATE_DIR_ATTRS = {
    "pending_dir": "pending", "leased_dir": "leased", "done_dir": "done",
    "shards_dir": "shards", "quarantine_dir": "quarantine",
}
STATE_DIR_NAMES = frozenset(STATE_DIR_ATTRS.values())

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "add", "update", "pop", "setdefault", "extend", "insert",
    "clear", "remove", "discard", "popitem", "appendleft",
})

#: Callables that enumerate a directory in filesystem (hash-arbitrary)
#: order.
_UNORDERED_FS_SOURCES = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: The injectable filesystem seam (``chaos.QueueIO``): attribute calls
#: whose receiver's *terminal* name is exactly ``io`` or ``_io`` carry
#: the same protocol obligations as their ``os.*`` spellings -- the
#: chaos layer wraps semantics, it never changes them.  The receiver
#: segment is matched exactly (not by suffix), so ``scenario.replace``
#: cannot alias ``os.replace``.
_IO_SEAM_OPS = {
    "replace": "os.replace", "rename": "os.rename",
    "unlink": "os.unlink", "exists": "os.path.exists",
    "listdir": "os.listdir", "open_w": "io.open_w",
}


def _io_seam_canonical(dotted: str) -> Optional[str]:
    """The canonical ``os.*`` spelling of an io-seam call, or None."""
    head, _, tail = dotted.rpartition(".")
    if head.rsplit(".", 1)[-1] in ("io", "_io"):
        return _IO_SEAM_OPS.get(tail)
    return None

#: Resource-acquire spellings: constructions/calls after which the
#: function owns something a crash could strand (workers to drain,
#: shard tails to flush, leases to settle).
_ACQUIRE_CLASSES = frozenset({"JsonlSink", "ProcessPoolExecutor"})
_ACQUIRE_ATTRS = frozenset({"claim"})
_ACQUIRE_NAMES = frozenset({"run_worker"})

#: Release spellings R009 requires to be finally-dominated.
_RELEASE_ATTRS = frozenset({"mark_finished", "close"})


@dataclasses.dataclass(frozen=True)
class GlobalWrite:
    """One write to a module-level binding."""

    module: str
    name: str
    line: int
    col: int
    #: "rebind" (global X; X = ...) or "mutate" (X[k] = / X.append).
    kind: str


@dataclasses.dataclass(frozen=True)
class FsOp:
    """One raw filesystem mutation with path provenance."""

    kind: str                    #: "open_w" | "rename" | "unlink"
    line: int
    col: int
    path_roots: FrozenSet[str] = frozenset()   #: open_w / unlink
    src_roots: FrozenSet[str] = frozenset()    #: rename source
    dst_roots: FrozenSet[str] = frozenset()    #: rename destination
    #: open_w only: the write targets a tmp sibling that the same
    #: function later renames into place (the sanctioned atomic
    #: publish).
    atomic_publish: bool = False
    #: unlink only: an ``os.path.exists``/``isfile`` probe of a
    #: done-derived path appears earlier in the function (the
    #: done-file-authoritative guard).
    done_guarded: bool = False


@dataclasses.dataclass(frozen=True)
class ReleaseSite:
    line: int
    col: int
    attr: str
    in_finally: bool


@dataclasses.dataclass(frozen=True)
class CallSite:
    callee: str
    line: int
    col: int
    in_finally: bool


@dataclasses.dataclass(frozen=True)
class LoopSite:
    """One ``for`` loop (or comprehension) over an unordered fs source."""

    line: int
    col: int
    emits_direct: bool           #: body calls .emit/.emit_stamped itself
    body_callees: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class StateArgPass:
    """A state-dir-derived expression handed to a project function."""

    callee: str
    param: str
    roots: FrozenSet[str]
    line: int
    col: int


@dataclasses.dataclass
class Summary:
    """Everything the whole-program rules know about one function."""

    qualname: str
    global_writes: List[GlobalWrite] = dataclasses.field(default_factory=list)
    fs_ops: List[FsOp] = dataclasses.field(default_factory=list)
    emits: bool = False
    acquires: bool = False
    release_sites: List[ReleaseSite] = dataclasses.field(default_factory=list)
    call_sites: List[CallSite] = dataclasses.field(default_factory=list)
    loops: List[LoopSite] = dataclasses.field(default_factory=list)
    #: (own param, callee qualname, callee param) positional bindings.
    param_passes: List[Tuple[str, str, str]] = dataclasses.field(
        default_factory=list)
    state_arg_passes: List[StateArgPass] = dataclasses.field(
        default_factory=list)
    #: Params that reach a raw in-place ``open(..., "w")`` (no atomic
    #: publish), here or in any callee the param is forwarded to.
    unatomic_write_params: Set[str] = dataclasses.field(default_factory=set)
    # -- closed over the call graph by propagate() -------------------------
    emits_trans: bool = False
    acquires_trans: bool = False
    releases_trans: bool = False


def state_roots(roots: FrozenSet[str]) -> Set[str]:
    """The queue state-dir tokens among *roots* (``pending``...)."""
    return {r.split(":", 1)[1] for r in roots if r.startswith("state:")}


class _FunctionScanner:
    """One ordered pass over a function body, building its Summary."""

    def __init__(self, project: Project, fn: FunctionInfo) -> None:
        self.project = project
        self.fn = fn
        self.ctx = fn.ctx
        self.module = project.modules[fn.module]
        self.summary = Summary(qualname=fn.qualname)
        self.resolver = CallResolver(project, fn)
        self.params = set(fn.params)
        #: Names the function binds locally (shadowing module globals).
        self.local_names = self._collect_local_names()
        self.global_decls = self._collect_global_decls()
        #: Simple env: local name -> the expression last assigned to it.
        self.env: Dict[str, ast.AST] = {}
        #: Lines of done-path existence probes seen so far.
        self._done_check_lines: List[int] = []
        #: Raw open_w ops pending the atomic-publish resolution.
        self._open_ops: List[Tuple[FsOp, FrozenSet[str]]] = []
        self._rename_src_roots: List[FrozenSet[str]] = []

    def _collect_local_names(self) -> Set[str]:
        names = set(self.params)
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and \
                    isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.withitem) and \
                    isinstance(node.optional_vars, ast.Name):
                names.add(node.optional_vars.id)
            elif isinstance(node, ast.comprehension) and \
                    isinstance(node.target, ast.Name):
                names.add(node.target.id)
        return names

    def _collect_global_decls(self) -> Set[str]:
        decls: Set[str] = set()
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Global):
                decls.update(node.names)
        return decls

    # -- provenance --------------------------------------------------------

    def roots_of(self, node: ast.AST, depth: int = 0) -> FrozenSet[str]:
        """Provenance roots of a path expression."""
        if depth > 12:
            return frozenset()
        if isinstance(node, ast.Attribute):
            if node.attr in STATE_DIR_ATTRS:
                return frozenset({f"state:{STATE_DIR_ATTRS[node.attr]}"})
            return frozenset({f"attr:{node.attr}"})
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            if bound is not None:
                return self.roots_of(bound, depth + 1)
            if node.id in self.params:
                return frozenset({f"param:{node.id}"})
            return frozenset({f"var:{node.id}"})
        if isinstance(node, ast.Call):
            dotted = self.ctx.resolve(node.func)
            if dotted in ("os.path.join", "posixpath.join", "ntpath.join"):
                roots: Set[str] = set()
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and \
                            isinstance(arg.value, str) and \
                            arg.value in STATE_DIR_NAMES:
                        roots.add(f"state:{arg.value}")
                    else:
                        roots |= self.roots_of(arg, depth + 1)
                return frozenset(roots)
            return frozenset()
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return (self.roots_of(node.left, depth + 1)
                    | self.roots_of(node.right, depth + 1)
                    | frozenset({"suffixed"}))
        if isinstance(node, ast.JoinedStr):
            roots = {"suffixed"}
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    roots |= self.roots_of(value.value, depth + 1)
            return frozenset(roots)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in STATE_DIR_NAMES:
                return frozenset({f"state:{node.value}"})
            return frozenset({"suffixed"})
        return frozenset()

    # -- the walk ----------------------------------------------------------

    def scan(self) -> Summary:
        self._walk(self.fn.node, in_finally=False)
        self._resolve_atomic_publish()
        return self.summary

    def _walk(self, node: ast.AST, in_finally: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue   # nested defs carry their own summaries
            if isinstance(child, ast.Try):
                for part in child.body + child.orelse:
                    self._walk_stmt(part, in_finally)
                for handler in child.handlers:
                    self._walk(handler, in_finally)
                for part in child.finalbody:
                    self._walk_stmt(part, True)
                continue
            self._walk_stmt(child, in_finally)

    def _walk_stmt(self, child: ast.AST, in_finally: bool) -> None:
        if isinstance(child, ast.Assign):
            self._scan_assign(child)
        elif isinstance(child, ast.AugAssign):
            self._scan_target(child.target, kind="mutate")
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            self._scan_loop(child)
        elif isinstance(child, (ast.ListComp, ast.SetComp,
                                ast.GeneratorExp, ast.DictComp)):
            self._scan_comprehension(child)
        if isinstance(child, ast.Call):
            self._scan_call(child, in_finally)
        self._walk(child, in_finally)

    # -- global writes -----------------------------------------------------

    def _scan_assign(self, node: ast.Assign) -> None:
        self.resolver.track_assignment(node)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if target.id in self.global_decls:
                    self.summary.global_writes.append(GlobalWrite(
                        module=self.fn.module, name=target.id,
                        line=target.lineno, col=target.col_offset + 1,
                        kind="rebind"))
                else:
                    self.env[target.id] = node.value
            else:
                self._scan_target(target, kind="mutate")

    def _scan_target(self, target: ast.AST, kind: str) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                self.summary.global_writes.append(GlobalWrite(
                    module=self.fn.module, name=target.id,
                    line=target.lineno, col=target.col_offset + 1,
                    kind="rebind"))
            return
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        base = target.value
        written = self._module_global_of(base)
        if written is not None:
            module, name = written
            self.summary.global_writes.append(GlobalWrite(
                module=module, name=name, line=target.lineno,
                col=target.col_offset + 1, kind=kind))

    def _module_global_of(self,
                          base: ast.AST) -> Optional[Tuple[str, str]]:
        """``(module, name)`` when *base* denotes a module-level binding."""
        if isinstance(base, ast.Name):
            if base.id in self.local_names and \
                    base.id not in self.global_decls:
                return None
            if base.id in self.module.module_globals:
                return (self.fn.module, base.id)
            return None
        if isinstance(base, ast.Attribute) and \
                isinstance(base.value, (ast.Name, ast.Attribute)):
            dotted = self.ctx.resolve(base.value)
            other = self.project.modules.get(dotted)
            if other is not None and base.attr in other.module_globals:
                return (dotted, base.attr)
        return None

    # -- calls -------------------------------------------------------------

    def _scan_call(self, node: ast.Call, in_finally: bool) -> None:
        dotted = self.ctx.resolve(node.func)
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else ""

        # Mutation methods on module-level names.
        if attr in _MUTATORS and isinstance(func, ast.Attribute):
            written = self._module_global_of(func.value)
            if written is not None:
                module, name = written
                self.summary.global_writes.append(GlobalWrite(
                    module=module, name=name, line=node.lineno,
                    col=node.col_offset + 1, kind="mutate"))

        # Record emission.
        if attr in ("emit", "emit_stamped"):
            self.summary.emits = True

        # Acquire / release structure.
        tail = dotted.rsplit(".", 1)[-1] if dotted else ""
        if tail in _ACQUIRE_CLASSES or tail in _ACQUIRE_NAMES or \
                attr in _ACQUIRE_ATTRS:
            self.summary.acquires = True
        if attr == "start" and isinstance(func, ast.Attribute):
            receiver = self.ctx.resolve(func.value).lower()
            if "proc" in receiver or "worker" in receiver:
                self.summary.acquires = True
        if attr in _RELEASE_ATTRS:
            self.summary.release_sites.append(ReleaseSite(
                line=node.lineno, col=node.col_offset + 1, attr=attr,
                in_finally=in_finally))

        # Filesystem mutations with provenance.  Calls through the
        # injectable QueueIO seam (``self.io.replace``, ``queue.io
        # .unlink``, ...) normalize onto their os.* spellings first so
        # the protocol rules see straight through the chaos layer.
        fs_call = _io_seam_canonical(dotted) or dotted
        if fs_call in ("os.rename", "os.replace"):
            if len(node.args) >= 2:
                src = self.roots_of(node.args[0])
                dst = self.roots_of(node.args[1])
                self.summary.fs_ops.append(FsOp(
                    kind="rename", line=node.lineno,
                    col=node.col_offset + 1, src_roots=src,
                    dst_roots=dst))
                self._rename_src_roots.append(src)
        elif fs_call in ("os.unlink", "os.remove"):
            if node.args:
                roots = self.roots_of(node.args[0])
                guarded = bool(self._done_check_lines) and \
                    min(self._done_check_lines) < node.lineno
                self.summary.fs_ops.append(FsOp(
                    kind="unlink", line=node.lineno,
                    col=node.col_offset + 1, path_roots=roots,
                    done_guarded=guarded))
        elif fs_call == "io.open_w":
            # The seam's open-for-write: no mode argument, always a
            # binary write handle.
            if node.args:
                roots = self.roots_of(node.args[0])
                op = FsOp(kind="open_w", line=node.lineno,
                          col=node.col_offset + 1, path_roots=roots)
                self._open_ops.append((op, roots))
        elif fs_call == "open" or fs_call.endswith(".open"):
            mode = self._open_mode(node)
            if mode and ("w" in mode or "a" in mode or "+" in mode):
                roots = self.roots_of(node.args[0]) if node.args \
                    else frozenset()
                op = FsOp(kind="open_w", line=node.lineno,
                          col=node.col_offset + 1, path_roots=roots)
                self._open_ops.append((op, roots))
        elif fs_call in ("os.path.exists", "os.path.isfile"):
            if node.args and \
                    "done" in state_roots(self.roots_of(node.args[0])):
                self._done_check_lines.append(node.lineno)

        # Call sites + parameter bindings into project functions.
        callee = self._resolve_callee(node)
        if callee is not None:
            self.summary.call_sites.append(CallSite(
                callee=callee, line=node.lineno,
                col=node.col_offset + 1, in_finally=in_finally))
            self._bind_arguments(node, callee)

    @staticmethod
    def _open_mode(node: ast.Call) -> str:
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            return node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, str):
                return kw.value.value
        return ""

    def _resolve_callee(self, node: ast.Call) -> Optional[str]:
        return self.resolver.resolve_callable(node.func)

    def _bind_arguments(self, node: ast.Call, callee: str) -> None:
        fn = self.project.function(callee)
        if fn is None:
            return
        params = fn.params
        if fn.class_name is not None and params and \
                params[0] in ("self", "cls") and \
                not self._is_class_receiver(node):
            params = params[1:]
        for position, arg in enumerate(node.args):
            if position >= len(params):
                break
            param = params[position]
            if isinstance(arg, ast.Name) and arg.id in self.params and \
                    arg.id not in self.env:
                self.summary.param_passes.append((arg.id, callee, param))
            roots = self.roots_of(arg)
            if state_roots(roots):
                self.summary.state_arg_passes.append(StateArgPass(
                    callee=callee, param=param, roots=roots,
                    line=node.lineno, col=node.col_offset + 1))

    def _is_class_receiver(self, node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute) or \
                not isinstance(func.value, ast.Name):
            return False
        name = func.value.id
        return any(q.rsplit(".", 1)[-1] == name
                   for q in self.project.classes)

    # -- loops -------------------------------------------------------------

    def _scan_loop(self, node) -> None:
        if not self._iter_is_unordered_fs(node.iter):
            return
        emits_direct = False
        callees: List[str] = []
        for sub in ast.walk(node):
            if sub is node or not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in ("emit", "emit_stamped"):
                emits_direct = True
            callee = self._resolve_callee(sub)
            if callee is not None:
                callees.append(callee)
        self.summary.loops.append(LoopSite(
            line=node.iter.lineno, col=node.iter.col_offset + 1,
            emits_direct=emits_direct, body_callees=tuple(callees)))

    def _scan_comprehension(self, node) -> None:
        for gen in node.generators:
            if not self._iter_is_unordered_fs(gen.iter):
                continue
            emits_direct = any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("emit", "emit_stamped")
                for sub in ast.walk(node))
            callees = [c for c in (self._resolve_callee(sub)
                       for sub in ast.walk(node)
                       if isinstance(sub, ast.Call)) if c is not None]
            self.summary.loops.append(LoopSite(
                line=gen.iter.lineno, col=gen.iter.col_offset + 1,
                emits_direct=emits_direct, body_callees=tuple(callees)))

    def _iter_is_unordered_fs(self, node: ast.AST,
                              depth: int = 0) -> bool:
        if depth > 8:
            return False
        if isinstance(node, ast.Name):
            bound = self.env.get(node.id)
            return bound is not None and \
                self._iter_is_unordered_fs(bound, depth + 1)
        if not isinstance(node, ast.Call):
            return False
        dotted = self.ctx.resolve(node.func)
        if dotted in _UNORDERED_FS_SOURCES:
            return True
        if _io_seam_canonical(dotted) == "os.listdir":
            return True
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "iterdir":
            return True
        # sorted(...) (or any other wrapper) restores a defined order.
        return False

    # -- post-pass ---------------------------------------------------------

    def _resolve_atomic_publish(self) -> None:
        """An ``open(tmp, "w")`` whose tmp-suffixed path shares a root
        with a later rename source is the sanctioned atomic publish."""
        for op, roots in self._open_ops:
            atomic = False
            if "suffixed" in roots:
                bare = {r for r in roots if r != "suffixed"}
                for src in self._rename_src_roots:
                    if bare & src or not bare:
                        atomic = True
                        break
            self.summary.fs_ops.append(dataclasses.replace(
                op, atomic_publish=atomic))


def summarize(project: Project) -> Dict[str, Summary]:
    """One direct-effect :class:`Summary` per project function."""
    return {qualname: _FunctionScanner(project, fn).scan()
            for qualname, fn in project.functions.items()}


def propagate(project: Project, graph: CallGraph,
              summaries: Dict[str, Summary]) -> Dict[str, Summary]:
    """Close transitive effects over the call graph to a fixpoint.

    All propagated facts are monotone (bools that only flip to True,
    sets that only grow), so iteration terminates even on mutual
    recursion -- the property the call-graph cycle test pins.
    """
    for summary in summaries.values():
        summary.emits_trans = summary.emits
        summary.acquires_trans = summary.acquires
        summary.releases_trans = bool(summary.release_sites)
        summary.unatomic_write_params = {
            param for op in summary.fs_ops
            if op.kind == "open_w" and not op.atomic_publish
            for root in op.path_roots if root.startswith("param:")
            for param in (root.split(":", 1)[1],)}
    changed = True
    while changed:
        changed = False
        for qualname, summary in summaries.items():
            for callee in graph.callees(qualname):
                sub = summaries.get(callee)
                if sub is None:
                    continue
                for flag in ("emits_trans", "acquires_trans",
                             "releases_trans"):
                    if getattr(sub, flag) and not getattr(summary, flag):
                        setattr(summary, flag, True)
                        changed = True
            for own_param, callee, callee_param in summary.param_passes:
                sub = summaries.get(callee)
                if sub is None:
                    continue
                if callee_param in sub.unatomic_write_params and \
                        own_param not in summary.unatomic_write_params:
                    summary.unatomic_write_params.add(own_param)
                    changed = True
    return summaries
