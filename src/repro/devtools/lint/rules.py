"""The initial rule pack: the engine's invariants, statically enforced.

Every rule here encodes a promise the runtime stack makes dynamically
-- record streams byte-identical across serial/parallel/replayed
execution -- as a property visible in the source.  See the README's
"Static analysis" section for the narrative; each rule's ``rationale``
is the one-line version.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.registry import (
    EVERYWHERE,
    FileContext,
    Rule,
    Scope,
    Violation,
    register,
)

#: Paths that execute inside (or feed) a recorded run.  The leading
#: ``*`` keeps the globs working for any lint root: ``src/repro/...``
#: from the repository root, ``repro/...`` when linting ``src`` itself,
#: and fixture trees living under a tmp directory.
_ENGINE_PATHS = ("*repro/core/*", "*repro/apps/*", "*repro/fusefs/*",
                 "*repro/mhdf5/*", "*repro/mfits/*", "*repro/study/*",
                 "*repro/experiments/*")

#: Code that orders record emission or splice decisions: iteration
#: order here IS the record stream / replay soundness.
_ORDER_SENSITIVE_PATHS = (
    "*repro/core/engine/*", "*repro/core/scenario.py",
    "*repro/core/injector.py", "*repro/core/campaign.py",
    "*repro/core/metadata_campaign.py", "*repro/fusefs/*", "*repro/apps/*")

_DEVTOOLS = ("*repro/devtools/*",)


@register
class WallClockRule(Rule):
    """R001: no wall-clock or entropy source may feed a record path."""

    id = "R001"
    name = "no-wallclock"
    rationale = ("wall-clock/entropy reads in engine, app, or record "
                 "paths break record-stream determinism across runs")
    scope = Scope(include=_ENGINE_PATHS, exclude=_DEVTOOLS)

    #: Exact qualified names that read a clock or entropy pool.  The
    #: perf counters are included deliberately: elapsed-time reporting
    #: is legitimate but must be visibly pragma-annotated so nobody
    #: promotes a duration into a record field.
    banned = frozenset({
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns", "time.localtime",
        "time.gmtime", "time.ctime", "time.asctime", "time.strftime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "os.urandom", "os.getrandom",
    })
    #: Whole modules whose every callable is an entropy source.
    banned_prefixes = ("uuid.", "secrets.", "random.")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qualified = ctx.resolve(node)
            if not qualified:
                continue
            if qualified in self.banned or \
                    qualified.startswith(self.banned_prefixes):
                yield self.violation(
                    ctx, node,
                    f"{qualified} is a wall-clock/entropy source; record "
                    "paths must be deterministic (derive randomness from "
                    "repro.util.rngstream, or pragma-annotate "
                    "reporting-only timing)")


@register
class RngDisciplineRule(Rule):
    """R002: RNGs in core/apps must come from named substreams."""

    id = "R002"
    name = "rng-discipline"
    rationale = ("a numpy Generator built outside repro.util.rngstream "
                 "is seeded by call order, not by name -- adding a "
                 "consumer would silently perturb every later draw")
    scope = Scope(include=("*repro/core/*", "*repro/apps/*"),
                  exclude=_DEVTOOLS)

    banned_call_prefixes = ("numpy.random.",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            if qualified.startswith(self.banned_call_prefixes):
                yield self.violation(
                    ctx, node,
                    f"{qualified}(...) constructs RNG state outside the "
                    "named-substream discipline; use "
                    "RngStream(seed, ...).generator() so streams derive "
                    "by name, not call order")


def _is_unordered(node: ast.AST, ctx: FileContext) -> bool:
    """Does *node* evaluate to a set (hash-ordered) collection?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return (_is_unordered(node.left, ctx)
                or _is_unordered(node.right, ctx))
    if isinstance(node, ast.Call):
        if ctx.resolve(node.func) in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference"):
            # ``a.union(b)`` only yields a set when ``a`` is one; the
            # attr name alone is strong enough signal in order-critical
            # code, and ``sorted(...)`` is the universal fix either way.
            return True
    return False


@register
class UnorderedIterationRule(Rule):
    """R003: no bare set iteration where order becomes a record."""

    id = "R003"
    name = "unordered-iteration"
    rationale = ("iterating a set in replay/sink/record-emitting code "
                 "makes the record stream depend on hash seeds and "
                 "integer interning -- wrap the iterable in sorted()")
    scope = Scope(include=_ORDER_SENSITIVE_PATHS, exclude=_DEVTOOLS)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_unordered(it, ctx):
                    from repro.devtools.lint.fixer import sorted_wrap_fix

                    yield self.violation(
                        ctx, it,
                        "iteration over an unordered set expression in "
                        "order-sensitive code; wrap it in sorted() so "
                        "the traversal is deterministic by construction",
                        fix=sorted_wrap_fix(it))


def _closure_names(tree: ast.Module) -> Set[str]:
    """Names bound to functions that cannot cross a process boundary:
    defs nested inside another function, and lambda assignments."""
    names: Set[str] = set()

    def walk(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if depth >= 1:
                    names.add(child.name)
                walk(child, depth + 1)
            else:
                if isinstance(child, ast.Assign) and \
                        isinstance(child.value, ast.Lambda):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                walk(child, depth)

    walk(tree, 0)
    return names


@register
class ForkSafetyRule(Rule):
    """R004: nothing unpicklable may be handed to a worker pool."""

    id = "R004"
    name = "fork-safety"
    rationale = ("lambdas and nested closures pickle on spawn-start "
                 "platforms only by failing at runtime -- pool tasks "
                 "and initializers must be module-level functions")
    scope = EVERYWHERE

    #: Dispatch methods whose first positional argument is a callable
    #: shipped to another process.
    dispatch_attrs = frozenset({
        "submit", "map", "map_tagged", "map_async", "apply", "apply_async",
        "imap", "imap_unordered", "starmap", "starmap_async",
    })

    def _receiver_is_pool(self, func: ast.Attribute, ctx: FileContext) -> bool:
        receiver = ctx.resolve(func.value).lower()
        return "pool" in receiver or "executor" in receiver

    def _unpicklable(self, node: ast.AST, closures: Set[str]) -> bool:
        if isinstance(node, ast.Lambda):
            return True
        return isinstance(node, ast.Name) and node.id in closures

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        closures = _closure_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "initializer" and \
                        self._unpicklable(kw.value, closures):
                    yield self.violation(
                        ctx, kw.value,
                        "pool initializer is a lambda/nested closure; it "
                        "cannot be pickled to spawn-started workers -- "
                        "hoist it to module level")
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self.dispatch_attrs and \
                    self._receiver_is_pool(node.func, ctx) and node.args:
                if self._unpicklable(node.args[0], closures):
                    yield self.violation(
                        ctx, node.args[0],
                        f"callable handed to {node.func.attr}() is a "
                        "lambda/nested closure; fork workers would run "
                        "it but spawn workers cannot unpickle it -- "
                        "hoist it to module level")


def _base_names(node: ast.ClassDef) -> Set[str]:
    names = set()
    for base in node.bases:
        if isinstance(base, ast.Attribute):
            names.add(base.attr)
        elif isinstance(base, ast.Name):
            names.add(base.id)
    return names


def _defined_in_body(node: ast.ClassDef) -> Set[str]:
    defined: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defined.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            defined.update(t.id for t in stmt.targets
                           if isinstance(t, ast.Name))
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            defined.add(stmt.target.id)
    return defined


@register
class ReplaySoundnessRule(Rule):
    """R005: scenarios and apps must opt into replay *explicitly*."""

    id = "R005"
    name = "replay-soundness"
    rationale = ("a FaultScenario without replay_constraint (or an "
                 "HpcApplication without steps) silently falls back to "
                 "cold execution -- correct but quietly forfeiting the "
                 "replay speedup; the opt-out must be visible")
    scope = EVERYWHERE

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            defined = _defined_in_body(node)
            if "FaultScenario" in bases and \
                    "replay_constraint" not in defined:
                yield self.violation(
                    ctx, node,
                    f"{node.name} subclasses FaultScenario but does not "
                    "define replay_constraint(); every run would fall "
                    "back to cold execution -- declare the constraint "
                    "(or return None with a pragma explaining why "
                    "replay is unsound for this scenario)")
            if "HpcApplication" in bases and "steps" not in defined:
                yield self.violation(
                    ctx, node,
                    f"{node.name} subclasses HpcApplication but does not "
                    "define steps(); it is invisible to prefix replay "
                    "and every campaign against it runs cold -- "
                    "implement the step protocol (or pragma-annotate "
                    "the intentional opt-out)")


#: Frozen value types of the planning layer.  Mutating one after
#: construction would desynchronize the plan from its checkpoint
#: identity (and frozen dataclasses make it a runtime error anyway --
#: this rule moves the failure to commit time).
_FROZEN_SPECS = frozenset({
    "StudySpec", "RunSpec", "SweepCell", "TargetSpec", "ModelSpec",
    "ScenarioSpec", "CellSpec", "SweepPlan", "RunPlan", "ReplayConstraint",
    "RunStep", "StepTrace", "ReplayImage",
})

#: Methods allowed to touch not-yet-published instances.
_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__setstate__",
                           "__new__"})


def _annotation_name(node: Optional[ast.AST]) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1]
    return ""


class _FrozenTracker(ast.NodeVisitor):
    """Per-function tracking of names bound to frozen-spec instances."""

    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.violations: List[Violation] = []
        #: Stack of (function name, {var -> spec class}) scopes.
        self.scopes: List[Tuple[str, Dict[str, str]]] = [("<module>", {})]

    # -- scope maintenance ------------------------------------------------

    def _enter_function(self, node) -> None:
        bound: Dict[str, str] = {}
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            cls = _annotation_name(arg.annotation)
            if cls in _FROZEN_SPECS:
                bound[arg.arg] = cls
        self.scopes.append((node.name, bound))
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    def _track(self, name: str, cls: str) -> None:
        self.scopes[-1][1][name] = cls

    def _lookup(self, name: str) -> str:
        for _, bound in reversed(self.scopes):
            if name in bound:
                return bound[name]
        return ""

    def _in_constructor(self) -> bool:
        return self.scopes[-1][0] in _CONSTRUCTORS

    # -- bindings ---------------------------------------------------------

    def _spec_class_of(self, value: ast.AST) -> str:
        if isinstance(value, ast.Call):
            name = _annotation_name(value.func)
            if name in _FROZEN_SPECS:
                return name
        return ""

    def visit_Assign(self, node: ast.Assign) -> None:
        cls = self._spec_class_of(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name) and cls:
                self._track(target.id, cls)
            elif isinstance(target, ast.Attribute):
                self._flag_attribute_write(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            cls = _annotation_name(node.annotation)
            if cls in _FROZEN_SPECS:
                self._track(node.target.id, cls)
        elif isinstance(node.target, ast.Attribute):
            self._flag_attribute_write(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            self._flag_attribute_write(node.target)
        self.generic_visit(node)

    # -- the actual checks ------------------------------------------------

    def _flag_attribute_write(self, target: ast.Attribute) -> None:
        if not isinstance(target.value, ast.Name):
            return
        cls = self._lookup(target.value.id)
        if cls and not self._in_constructor():
            self.violations.append(self.rule.violation(
                self.ctx, target,
                f"attribute assignment on frozen {cls} instance "
                f"{target.value.id!r}; build a new instance "
                "(dataclasses.replace / with_knobs) instead of mutating "
                "a published spec"))

    def visit_Call(self, node: ast.Call) -> None:
        qualified = _annotation_name(node.func)
        dotted = self.ctx.resolve(node.func)
        is_setattr = (qualified == "setattr" and dotted == "setattr") or \
            dotted == "object.__setattr__"
        if is_setattr and node.args and isinstance(node.args[0], ast.Name):
            cls = self._lookup(node.args[0].id)
            if cls and not self._in_constructor():
                self.violations.append(self.rule.violation(
                    self.ctx, node,
                    f"setattr on frozen {cls} instance "
                    f"{node.args[0].id!r} outside a constructor; frozen "
                    "specs are immutable identities -- derive a new one"))
        self.generic_visit(node)


@register
class FrozenSpecMutationRule(Rule):
    """R006: planning specs are immutable once constructed."""

    id = "R006"
    name = "frozen-spec-mutation"
    rationale = ("StudySpec/RunSpec/SweepCell are hashable identities "
                 "(checkpoint keys, cache keys); mutation after "
                 "construction desynchronizes plans from their "
                 "checkpoints")
    scope = EVERYWHERE

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        tracker = _FrozenTracker(self, ctx)
        tracker.visit(ctx.tree)
        return tracker.violations
