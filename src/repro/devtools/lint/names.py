"""Import-aware name resolution for AST nodes.

Rules reason about *fully qualified* names (``numpy.random.default_rng``,
``time.time``) so they fire regardless of how a module spells its
imports (``import numpy as np``, ``from time import time``, ...).
"""

from __future__ import annotations

import ast
from typing import Dict


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Map every locally bound import alias to its qualified name.

    * ``import numpy as np``            -> ``{"np": "numpy"}``
    * ``import numpy.random``           -> ``{"numpy": "numpy"}``
    * ``from numpy import random``      -> ``{"random": "numpy.random"}``
    * ``from time import time as now``  -> ``{"now": "time.time"}``

    Conditional or function-local imports are included too (the walk is
    whole-tree): resolution is about *what a name can mean*, and a
    false negative from a skipped local import would hide a violation.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the root name ``a``.
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:      # relative imports never alias stdlib/3p
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def dotted(node: ast.AST) -> str:
    """The literal dotted path of a Name/Attribute chain, or ``""``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve(node: ast.AST, imports: Dict[str, str]) -> str:
    """Fully qualify a Name/Attribute chain through the import map.

    Unimported roots resolve to themselves (``set`` stays ``set``), so
    builtins are matchable too.
    """
    path = dotted(node)
    if not path:
        return ""
    root, _, rest = path.partition(".")
    qualified = imports.get(root, root)
    return f"{qualified}.{rest}" if rest else qualified
