"""SARIF 2.1.0 output: lint findings as a standard interchange report.

SARIF (Static Analysis Results Interchange Format) is what code hosts
ingest to surface findings as inline PR annotations -- CI uploads the
file produced here via ``github/codeql-action/upload-sarif``.  The
emitter writes the minimal conforming subset: one run, one tool driver
listing every rule that executed (id, name, one-line help), and one
result per violation with a physical location.  Stdlib ``json`` only;
the bare-interpreter contract of the linter holds.

Determinism: the report is built from an already-sorted
:class:`~repro.devtools.lint.engine.LintReport` and serialized with
sorted keys, so identical trees produce byte-identical SARIF.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.devtools.lint.engine import LintReport
from repro.devtools.lint.registry import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Rule ids violations may carry that are not in the registry (pragma
#: grammar and parse failures), with the help text SARIF requires.
_SYNTHETIC_RULES = {
    "R000": ("pragma-hygiene",
             "repro: pragmas must parse, carry a reason, and suppress "
             "something"),
    "E001": ("parse-error", "the file could not be read or parsed"),
}


def _rule_descriptor(rule_id: str) -> Dict[str, object]:
    rule = RULES.get(rule_id)
    if rule is not None:
        name, help_text = rule.name, rule.rationale
    else:
        name, help_text = _SYNTHETIC_RULES.get(
            rule_id, (rule_id.lower(), "repro lint rule"))
    return {
        "id": rule_id,
        "name": name,
        "shortDescription": {"text": name},
        "fullDescription": {"text": help_text},
        "defaultConfiguration": {"level": "error"},
    }


def to_sarif(report: LintReport) -> Dict[str, object]:
    """The report as a SARIF 2.1.0 ``log`` object (JSON-ready dict)."""
    rule_ids = sorted(set(report.rules)
                      | {v.rule for v in report.violations})
    results: List[Dict[str, object]] = []
    for violation in report.violations:
        results.append({
            "ruleId": violation.rule,
            "ruleIndex": rule_ids.index(violation.rule),
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col,
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": [_rule_descriptor(rule_id)
                              for rule_id in rule_ids],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
        }],
    }


def render_sarif(report: LintReport) -> str:
    """The SARIF log serialized deterministically (sorted keys)."""
    return json.dumps(to_sarif(report), indent=2, sort_keys=True) + "\n"
