"""The ``# repro: allow[RULE] reason`` suppression grammar.

One pragma, one spelling::

    x = time.time()  # repro: allow[R001] wall clock feeds the report only

* ``allow[R001]`` or ``allow[R001,R004]`` names the rule(s) suppressed.
* The trailing free text is the **mandatory** reason; a pragma without
  one is itself a violation (``R000``) -- an unexplained suppression is
  exactly the kind of silent invariant erosion the linter exists to
  stop.
* A pragma sharing a line with code suppresses that line.  A pragma on
  a line of its own suppresses the **next** line (for statements too
  long to annotate in place).

Anything that starts with ``# repro:`` but does not parse is reported
as ``R000`` rather than ignored: a typo like ``alow[R001]`` must not
silently re-arm the rule it meant to suppress.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Dict, List, Tuple

from repro.devtools.lint.registry import Violation

#: The id under which pragma-grammar problems are reported.  R000 is not
#: itself suppressible -- a broken suppression cannot excuse itself.
PRAGMA_RULE_ID = "R000"

_PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(
    r"^allow\[(?P<rules>[A-Za-z]\d{3}(?:\s*,\s*[A-Za-z]\d{3})*)\]"
    r"(?:\s+(?P<reason>\S.*))?$")


@dataclasses.dataclass
class Pragma:
    """One parsed ``allow`` pragma."""

    line: int                  #: line the pragma comment sits on
    target_line: int           #: line whose violations it suppresses
    rules: Tuple[str, ...]
    reason: str
    used: bool = False         #: did it suppress at least one violation?
    col: int = 0               #: 0-based column the comment starts at
    end_col: int = 0           #: 0-based column just past the comment
    own_line: bool = False     #: the comment is the line's only content


@dataclasses.dataclass
class PragmaSet:
    """All pragmas of one file plus the grammar problems found."""

    pragmas: List[Pragma]
    problems: List[Violation]

    def suppresses(self, rule_id: str, line: int) -> bool:
        """Consume a suppression for *rule_id* at *line*, if any."""
        return self.suppresses_span(rule_id, line, line, line)

    def suppresses_span(self, rule_id: str, line: int,
                        start: int, end: int) -> bool:
        """Consume a suppression for *rule_id* anywhere on the
        violating statement.

        *line* is the violating node's own line; ``[start, end]`` is
        the full physical extent of the (possibly multi-line) statement
        containing it.  A pragma targeting any of those lines
        suppresses -- so annotating a multi-line ``executor.submit(...)``
        works on the statement's first physical line, on the violating
        argument's line, or on the closing-paren line alike.
        """
        hit = False
        for pragma in self.pragmas:
            if rule_id not in pragma.rules:
                continue
            if pragma.target_line == line or \
                    start <= pragma.target_line <= end:
                pragma.used = True
                hit = True
        return hit

    def unused(self) -> List[Pragma]:
        return [p for p in self.pragmas if not p.used]


def parse_pragmas(path: str, source: str) -> PragmaSet:
    """Extract every ``# repro:`` pragma from *source*.

    Tokenization (rather than a per-line regex) keeps the parser honest
    about what is a comment: ``"# repro: allow[R001]"`` inside a string
    literal is data, not a pragma.
    """
    pragmas: List[Pragma] = []
    problems: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        # The engine reports unparsable files separately; no pragmas.
        return PragmaSet([], [])
    code_lines = {tok.start[0]
                  for tok in tokens
                  if tok.type not in (tokenize.COMMENT, tokenize.NL,
                                      tokenize.NEWLINE, tokenize.INDENT,
                                      tokenize.DEDENT, tokenize.ENDMARKER)}
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        line, col = tok.start
        body = match.group("body").strip()
        parsed = _ALLOW_RE.match(body)
        if parsed is None:
            problems.append(Violation(
                path=path, line=line, col=col + 1, rule=PRAGMA_RULE_ID,
                message=f"unparsable pragma {body!r}: expected "
                        "'allow[R00N[,R00M...]] reason'"))
            continue
        if not parsed.group("reason"):
            problems.append(Violation(
                path=path, line=line, col=col + 1, rule=PRAGMA_RULE_ID,
                message="pragma is missing its reason: every suppression "
                        "must say why the rule does not apply"))
            continue
        rules = tuple(r.strip().upper()
                      for r in parsed.group("rules").split(","))
        own_line = line not in code_lines
        target = line + 1 if own_line else line
        pragmas.append(Pragma(line=line, target_line=target, rules=rules,
                              reason=parsed.group("reason").strip(),
                              col=col, end_col=tok.end[1],
                              own_line=own_line))
    return PragmaSet(pragmas, problems)


def unknown_rule_problems(path: str, pragmas: PragmaSet,
                          known: Dict[str, object]) -> List[Violation]:
    """R000 violations for pragmas naming rules that do not exist."""
    problems = []
    for pragma in pragmas.pragmas:
        for rule_id in pragma.rules:
            if rule_id not in known:
                problems.append(Violation(
                    path=path, line=pragma.line, col=1, rule=PRAGMA_RULE_ID,
                    message=f"pragma allows unknown rule {rule_id}"))
    return problems
