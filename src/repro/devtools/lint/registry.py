"""Rule registry: violations, file scopes, and the rule base class.

A rule is a small :class:`Rule` subclass registered under a stable id
(``R001``...).  Each rule carries a default :class:`Scope` -- the set of
repository paths its invariant governs -- which a :class:`LintConfig`
may override per rule without touching the rule itself (the engine owns
path discovery; rules only ever see files already inside their scope).
"""

from __future__ import annotations

import ast
import dataclasses
from fnmatch import fnmatch
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One rule hit, pointing at a source location.

    Ordered by location so reports are stable regardless of the order
    rules ran in.  ``fix`` optionally carries exact-span rewrites (see
    :mod:`repro.devtools.lint.fixer`) for the mechanical subset of
    rules; it never participates in ordering, JSON, or equality.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    fix: Optional[Tuple] = dataclasses.field(
        default=None, compare=False, repr=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


@dataclasses.dataclass(frozen=True)
class Scope:
    """Which repository-relative paths a rule applies to.

    Patterns are :func:`fnmatch.fnmatch` globs matched against POSIX
    relative paths (``src/repro/core/engine/replay.py``); ``**`` in a
    pattern matches across directory separators because fnmatch treats
    ``*`` that way already.  A file is in scope when it matches at least
    one ``include`` pattern and no ``exclude`` pattern.
    """

    include: Tuple[str, ...]
    exclude: Tuple[str, ...] = ()

    def matches(self, relpath: str) -> bool:
        if not any(fnmatch(relpath, pat) for pat in self.include):
            return False
        return not any(fnmatch(relpath, pat) for pat in self.exclude)


EVERYWHERE = Scope(include=("*",))


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 imports: Dict[str, str]) -> None:
        self.path = path          #: repository-relative POSIX path
        self.source = source
        self.tree = tree
        self.imports = imports    #: local alias -> fully qualified name

    def resolve(self, node: ast.AST) -> str:
        """The fully qualified dotted name *node* refers to, or ``""``.

        ``np.random.default_rng`` resolves through ``import numpy as
        np`` to ``numpy.random.default_rng``; expressions that are not a
        plain attribute/name chain resolve to the empty string.
        """
        from repro.devtools.lint.names import resolve

        return resolve(node, self.imports)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Violation` objects for one already-parsed file.
    Rules never do path filtering -- the engine calls them only for
    files inside their (possibly config-overridden) scope.
    """

    id: str = ""
    name: str = ""          #: short kebab-case slug
    rationale: str = ""     #: one line: why the invariant exists
    scope: Scope = EVERYWHERE

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str, fix: Optional[Tuple] = None) -> Violation:
        return Violation(path=ctx.path, line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0) + 1,
                         rule=self.id, message=message, fix=fix)


class ProjectRule(Rule):
    """Base class for whole-program rules.

    A project rule sees every parsed file of the run at once -- wrapped
    in a :class:`~repro.devtools.lint.wholeprogram.ProjectAnalysis`
    (call graph + effect summaries) -- and yields violations anywhere
    in the tree.  The engine still applies the rule's :class:`Scope`
    and the target file's pragmas to each violation, so suppression
    works identically to per-file rules.
    """

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        return ()    # the per-file phase is a no-op for project rules

    def check_project(self, analysis) -> Iterable[Violation]:
        raise NotImplementedError

    def project_violation(self, path: str, line: int, col: int,
                          message: str) -> Violation:
        return Violation(path=path, line=line, col=col, rule=self.id,
                         message=message)


#: All registered rules by id, in registration order.
RULES: Dict[str, Rule] = {}


def register(cls: Callable[[], Rule]) -> Callable[[], Rule]:
    """Class decorator adding one instance of *cls* to :data:`RULES`."""
    rule = cls()
    if not rule.id or rule.id in RULES:
        raise ValueError(f"rule id {rule.id!r} missing or duplicate")
    RULES[rule.id] = rule
    return cls


def iter_rules(select: Iterable[str] = ()) -> Iterator[Rule]:
    """The selected rules (all when *select* is empty), in id order.

    Raises :class:`KeyError` naming the first unknown id.
    """
    wanted = list(select)
    for rule_id in wanted:
        if rule_id not in RULES:
            raise KeyError(rule_id)
    for rule_id in sorted(RULES):
        if not wanted or rule_id in wanted:
            yield RULES[rule_id]


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Engine configuration: rule selection and per-rule scope overrides.

    ``scope_overrides`` maps a rule id to the :class:`Scope` to use
    instead of the rule's default -- the seam that lets a repository (or
    a test fixture tree) re-scope an invariant without editing the rule.
    """

    select: Tuple[str, ...] = ()
    scope_overrides: Dict[str, Scope] = dataclasses.field(default_factory=dict)
    #: Report allow pragmas that suppressed nothing (stale suppressions).
    flag_unused_pragmas: bool = True

    def scope_for(self, rule: Rule) -> Scope:
        return self.scope_overrides.get(rule.id, rule.scope)

    def rules(self) -> List[Rule]:
        return list(iter_rules(self.select))
