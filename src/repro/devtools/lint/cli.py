"""``repro lint`` -- the command-line face of the static analyzer.

Also runnable without the main CLI (``python -m repro.devtools.lint``),
which is what the CI fast lane does before any dependency install.

Exit-code contract:

* ``0`` -- clean: no violations anywhere in the scanned tree
* ``1`` -- at least one violation (including pragma-grammar problems)
* ``2`` -- usage error: unknown rule id, nonexistent path
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.devtools.lint.engine import PARSE_ERROR_ID, lint_paths
from repro.devtools.lint.pragmas import PRAGMA_RULE_ID
from repro.devtools.lint.registry import RULES, LintConfig

DEFAULT_PATHS = ["src", "scripts"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options (shared with the ``repro`` CLI)."""
    parser.add_argument("paths", nargs="*", default=None, metavar="PATH",
                        help="files or directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="report format (default text; sarif emits "
                             "SARIF 2.1.0 for code-host annotation)")
    parser.add_argument("--fix", action="store_true",
                        help="apply the mechanical autofixes (sorted() "
                             "wrapping, stale-pragma removal) and "
                             "report what remains")
    parser.add_argument("--diff", action="store_true",
                        help="with --fix: print the rewrites as a "
                             "unified diff instead of writing files")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="repository root that rule scopes match "
                             "against (default: the working directory)")
    parser.add_argument("--keep-unused-pragmas", action="store_true",
                        help="do not flag allow[...] pragmas that "
                             "suppressed nothing")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe the registered rules and exit")


def _render_rules() -> str:
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule.id} {rule.name}")
        lines.append(f"     {rule.rationale}")
        lines.append(f"     scope: {', '.join(rule.scope.include)}")
    lines.append(f"{PRAGMA_RULE_ID} pragma-hygiene")
    lines.append("     malformed/reason-less/stale '# repro: allow[...]' "
                 "pragmas (not suppressible)")
    lines.append(f"{PARSE_ERROR_ID} parse-error")
    lines.append("     files the linter cannot read or parse "
                 "(not suppressible)")
    return "\n".join(lines)


def run(args: argparse.Namespace, out=None) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    out = out if out is not None else sys.stdout
    if args.list_rules:
        print(_render_rules(), file=out)
        return 0
    select = tuple(s.strip().upper() for s in args.select.split(",")
                   if s.strip()) if args.select else ()
    config = LintConfig(select=select,
                        flag_unused_pragmas=not args.keep_unused_pragmas)
    paths = args.paths or DEFAULT_PATHS
    import os

    for path in paths:
        if not os.path.exists(path):
            print(f"repro lint: no such path: {path}", file=sys.stderr)
            return 2
    if args.diff and not args.fix:
        print("repro lint: --diff requires --fix", file=sys.stderr)
        return 2
    try:
        report = lint_paths(paths, config, root=args.root)
    except KeyError as exc:
        print(f"repro lint: unknown rule id {exc.args[0]!r} "
              f"(known: {', '.join(sorted(RULES))})", file=sys.stderr)
        return 2
    if args.fix:
        return _run_fix(report, args, out)
    if args.format == "json":
        json.dump(report.to_json(), out, indent=2, sort_keys=True)
        out.write("\n")
    elif args.format == "sarif":
        from repro.devtools.lint.sarif import render_sarif

        out.write(render_sarif(report))
    else:
        print(report.render_text(), file=out)
    return 0 if report.ok else 1


def _run_fix(report, args: argparse.Namespace, out) -> int:
    """``--fix``: apply (or preview) rewrites, then report the rest."""
    from repro.devtools.lint.fixer import (
        fix_report,
        render_diff,
        write_fixes,
    )

    new_sources, fixed, remaining = fix_report(report)
    if args.diff:
        out.write(render_diff(report, new_sources))
        print(f"repro lint: {len(fixed)} violation(s) fixable in "
              f"{len(new_sources)} file(s) (diff only, nothing written)",
              file=out)
    else:
        touched = write_fixes(report, new_sources)
        print(f"repro lint: fixed {len(fixed)} violation(s) in "
              f"{len(touched)} file(s)", file=out)
    for violation in remaining:
        print(violation.render(), file=out)
    if remaining:
        print(f"repro lint: {len(remaining)} violation(s) need a human",
              file=out)
    return 0 if not remaining else 1


def main(argv: Optional[List[str]] = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism/fork-safety/replay-soundness "
                    "checks (stdlib-only; see README 'Static analysis')")
    add_arguments(parser)
    return run(parser.parse_args(argv), out=out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
