"""A project-wide call graph for the whole-program rules.

The per-file rules (R001--R006) see one ``ast.Module`` at a time; the
whole-program rules (R007--R010) reason about properties that span
functions, modules, and processes -- "is this function reachable from a
fork entry point", "does this loop's body eventually emit a record".
This module builds the structure those questions are asked against:

* :class:`Project` -- every parsed module, indexed by dotted module
  name, with its top-level functions, classes, methods, and
  module-level bindings.
* :class:`CallGraph` -- ``caller qualname -> callee qualnames`` edges,
  resolving direct calls, ``self`` method calls, class-attribute
  method calls (``FileQueue.create``, ``queue.claim()`` through an
  annotation or a visible construction), decorated defs,
  ``functools.partial`` references, and -- specially marked -- the
  callables handed to executor ``submit``/``map``/``initializer`` and
  ``Process(target=...)``, which are the **fork entry points** the
  fork-effect rule starts its reachability walk from.

Resolution is deliberately conservative-by-name: an edge the builder
cannot resolve is dropped, never guessed, so whole-program rules may
under-report but do not hallucinate paths.  Everything here is stdlib
``ast``; the bare-interpreter CI contract of the linter holds.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.devtools.lint.registry import FileContext

#: Dispatch attributes whose first positional argument crosses a
#: process boundary (mirrors the R004 rule's table).
FORK_DISPATCH_ATTRS = frozenset({
    "submit", "map", "map_tagged", "map_async", "apply", "apply_async",
    "imap", "imap_unordered", "starmap", "starmap_async",
})


def module_name_for(relpath: str) -> str:
    """The dotted module name a repository-relative path imports as.

    ``src/repro/core/engine/queue.py`` -> ``repro.core.engine.queue``;
    paths outside a ``src/`` root fall back to the path itself with
    slashes swapped for dots, which keeps qualnames unique.
    """
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = path.split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclasses.dataclass
class FunctionInfo:
    """One function or method the project defines."""

    qualname: str                 #: ``module.func`` / ``module.Cls.meth``
    module: str
    node: ast.AST                 #: FunctionDef or AsyncFunctionDef
    ctx: FileContext
    class_name: Optional[str] = None   #: owning class, if a method
    parent: Optional[str] = None       #: enclosing function, if nested

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> List[str]:
        args = self.node.args
        return [a.arg for a in (args.posonlyargs + args.args
                                + args.kwonlyargs)]


@dataclasses.dataclass
class ClassInfo:
    """One class: its methods and the names of its declared bases."""

    qualname: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, str]        #: method name -> function qualname
    bases: Tuple[str, ...]         #: base names as written (last attr)


@dataclasses.dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str                      #: dotted module name
    relpath: str
    ctx: FileContext
    functions: Dict[str, str]      #: local top-level name -> qualname
    classes: Dict[str, ClassInfo]  #: local class name -> info
    #: Names bound at module level by plain/annotated assignment -- the
    #: "module-level mutables" the fork-effect rule protects.
    module_globals: Set[str]


class Project:
    """Every parsed file of one lint run, cross-indexed for resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> class qualnames defining it (for base lookups)
        self._methods_by_name: Dict[str, List[str]] = {}

    def add_module(self, relpath: str, ctx: FileContext) -> None:
        name = module_name_for(relpath)
        info = ModuleInfo(name=name, relpath=relpath, ctx=ctx,
                          functions={}, classes={}, module_globals=set())
        self._collect(info, ctx.tree, prefix=name, class_name=None,
                      parent=None, top_level=True)
        self.modules[name] = info

    def _collect(self, info: ModuleInfo, node: ast.AST, prefix: str,
                 class_name: Optional[str], parent: Optional[str],
                 top_level: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                fn = FunctionInfo(qualname=qualname, module=info.name,
                                  node=child, ctx=info.ctx,
                                  class_name=class_name, parent=parent)
                self.functions[qualname] = fn
                if top_level and class_name is None:
                    info.functions[child.name] = qualname
                self._collect(info, child, prefix=qualname,
                              class_name=None, parent=qualname,
                              top_level=False)
            elif isinstance(child, ast.ClassDef):
                qualname = f"{prefix}.{child.name}"
                methods: Dict[str, str] = {}
                bases = tuple(
                    b.attr if isinstance(b, ast.Attribute) else b.id
                    for b in child.bases
                    if isinstance(b, (ast.Attribute, ast.Name)))
                cls = ClassInfo(qualname=qualname, module=info.name,
                                node=child, methods=methods, bases=bases)
                self.classes[qualname] = cls
                if top_level:
                    info.classes[child.name] = cls
                for stmt in child.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        mq = f"{qualname}.{stmt.name}"
                        methods[stmt.name] = mq
                        self.functions[mq] = FunctionInfo(
                            qualname=mq, module=info.name, node=stmt,
                            ctx=info.ctx, class_name=child.name)
                        self._methods_by_name.setdefault(
                            stmt.name, []).append(qualname)
                        self._collect(info, stmt, prefix=mq,
                                      class_name=None, parent=mq,
                                      top_level=False)
            elif top_level and isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        info.module_globals.add(target.id)
            elif top_level and isinstance(child, ast.AnnAssign):
                if isinstance(child.target, ast.Name):
                    info.module_globals.add(child.target.id)

    # -- lookups -----------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def class_method(self, class_qualname: str,
                     method: str) -> Optional[str]:
        """Resolve *method* on a class, walking declared bases that the
        project also defines (single inheritance depth-first)."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            qualname = stack.pop(0)
            if qualname in seen:
                continue
            seen.add(qualname)
            cls = self.classes.get(qualname)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            for base in cls.bases:
                stack.extend(self._classes_named(base))
        return None

    def _classes_named(self, name: str) -> List[str]:
        return [q for q in self.classes
                if q.rsplit(".", 1)[-1] == name]

    def resolve_qualified(self, dotted: str) -> Optional[str]:
        """Map a fully qualified dotted name onto a project function.

        Accepts ``module.func``, ``module.Cls.meth``, and ``module.Cls``
        (resolved to ``module.Cls.__init__`` when defined).
        """
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:
            return self.classes[dotted].methods.get("__init__")
        return None


@dataclasses.dataclass(frozen=True)
class Edge:
    """One resolved call edge."""

    caller: str
    callee: str
    kind: str        #: "call" | "fork" (crosses a process boundary)
    line: int


class CallGraph:
    """Resolved call edges plus the fork/spawn entry-point set."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: Dict[str, Set[str]] = {}
        self.edge_list: List[Edge] = []
        #: Functions handed to an executor/pool/Process boundary -- the
        #: roots of the fork-effect reachability walk.
        self.fork_entries: Set[str] = set()

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls(project)
        for fn in project.functions.values():
            CallResolver(project, fn).resolve_into(graph)
        return graph

    def _add(self, caller: str, callee: str, kind: str, line: int) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.edge_list.append(Edge(caller, callee, kind, line))
        if kind == "fork":
            self.fork_entries.add(callee)

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable over call edges from *roots*."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.project.functions]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            stack.extend(self.edges.get(qualname, ()))
        return seen


class CallResolver:
    """Resolve the callables referenced inside one function body.

    Used two ways: :meth:`resolve_into` walks the whole body to build
    :class:`CallGraph` edges, while the dataflow scanner drives one
    resolver incrementally (:meth:`track_assignment` +
    :meth:`resolve_callable`) during its own ordered pass.
    """

    def __init__(self, project: Project, fn: FunctionInfo) -> None:
        self.graph: Optional[CallGraph] = None
        self.project = project
        self.fn = fn
        self.module = project.modules[fn.module]
        #: Local variable -> class qualname, from visible constructions
        #: (``q = FileQueue(root)``) and parameter annotations.
        self.var_classes: Dict[str, str] = {}
        self._seed_annotations()

    def _seed_annotations(self) -> None:
        args = self.fn.node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            cls = self._class_from_annotation(arg.annotation)
            if cls is not None:
                self.var_classes[arg.arg] = cls

    def _class_from_annotation(self,
                               node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return None
        name = ""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value.rsplit(".", 1)[-1]
        return self._class_named(name)

    def _class_named(self, name: str) -> Optional[str]:
        if not name:
            return None
        local = self.module.classes.get(name)
        if local is not None:
            return local.qualname
        dotted = self.module.ctx.imports.get(name)
        if dotted and dotted in self.project.classes:
            return dotted
        matches = self.project._classes_named(name)
        return matches[0] if len(matches) == 1 else None

    # -- the walk ----------------------------------------------------------

    def resolve_into(self, graph: CallGraph) -> None:
        self.graph = graph
        self._walk(self.fn.node)

    def _walk(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue   # nested defs resolve as their own functions
            if isinstance(child, ast.Assign):
                self.track_assignment(child)
            if isinstance(child, ast.Call):
                self._resolve_call(child)
            self._walk(child)

    def track_assignment(self, node: ast.Assign) -> None:
        if not isinstance(node.value, ast.Call):
            return
        cls = self._class_of_call(node.value)
        if cls is None:
            return
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.var_classes[target.id] = cls

    def _class_of_call(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._class_named(func.id)
        if isinstance(func, ast.Attribute):
            return self._class_named(func.attr)
        return None

    def _resolve_call(self, call: ast.Call) -> None:
        line = call.lineno
        callee = self.resolve_callable(call.func)
        if callee is not None:
            self.graph._add(self.fn.qualname, callee, "call", line)
        # functools.partial(f, ...) references f as surely as calling it.
        dotted = self.fn.ctx.resolve(call.func)
        if dotted in ("functools.partial", "partial") and call.args:
            target = self.resolve_callable(call.args[0])
            if target is not None:
                self.graph._add(self.fn.qualname, target, "call", line)
        self._resolve_fork_edges(call, dotted, line)

    def _resolve_fork_edges(self, call: ast.Call, dotted: str,
                            line: int) -> None:
        # initializer=f on any call (pool constructors).
        for kw in call.keywords:
            if kw.arg in ("initializer", "target"):
                target = self.resolve_callable(kw.value)
                if target is not None:
                    self.graph._add(self.fn.qualname, target, "fork", line)
        func = call.func
        if isinstance(func, ast.Attribute) and \
                func.attr in FORK_DISPATCH_ATTRS and call.args:
            receiver = self.fn.ctx.resolve(func.value).lower()
            if "pool" in receiver or "executor" in receiver:
                target = self.resolve_callable(call.args[0])
                if target is not None:
                    self.graph._add(self.fn.qualname, target, "fork", line)

    def resolve_callable(self, node: ast.AST) -> Optional[str]:
        """The project function a callable expression denotes, if any."""
        if isinstance(node, ast.Call):
            # functools.partial(f, ...) used inline as the callable.
            dotted = self.fn.ctx.resolve(node.func)
            if dotted in ("functools.partial", "partial") and node.args:
                return self.resolve_callable(node.args[0])
            return None
        if isinstance(node, ast.Name):
            return self._resolve_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._resolve_attribute(node)
        return None

    def _resolve_name(self, name: str) -> Optional[str]:
        # Innermost first: a sibling nested def inside this function.
        nested = f"{self.fn.qualname}.{name}"
        if nested in self.project.functions:
            return nested
        if self.fn.parent is not None:
            sibling = f"{self.fn.parent}.{name}"
            if sibling in self.project.functions:
                return sibling
        local = self.module.functions.get(name)
        if local is not None:
            return local
        cls = self.module.classes.get(name)
        if cls is not None:
            return cls.methods.get("__init__")
        dotted = self.module.ctx.imports.get(name)
        if dotted is not None:
            return self.project.resolve_qualified(dotted)
        return None

    def _resolve_attribute(self, node: ast.Attribute) -> Optional[str]:
        method = node.attr
        value = node.value
        # self.method() -> the enclosing class (and its bases).
        if isinstance(value, ast.Name):
            if value.id in ("self", "cls") and self.fn.class_name:
                owner = f"{self.fn.module}.{self.fn.class_name}"
                return self.project.class_method(owner, method)
            # ClassName.method(...) through a local or imported class.
            cls = self._class_named(value.id) \
                if value.id not in self.var_classes else None
            if cls is not None and value.id not in self.var_classes:
                resolved = self.project.class_method(cls, method)
                if resolved is not None:
                    return resolved
            # instance.method() through a visible construction or
            # annotation.
            instance_cls = self.var_classes.get(value.id)
            if instance_cls is not None:
                return self.project.class_method(instance_cls, method)
        # module.func() through the import map.
        dotted = self.fn.ctx.resolve(node)
        if dotted:
            return self.project.resolve_qualified(dotted)
        return None


def build_project(files: Iterable[Tuple[str, FileContext]]) -> Project:
    """Assemble a :class:`Project` from ``(relpath, context)`` pairs."""
    project = Project()
    for relpath, ctx in files:
        project.add_module(relpath, ctx)
    return project
