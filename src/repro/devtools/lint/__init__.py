"""``repro lint``: AST-based static analysis of the repo's invariants.

The runtime stack guarantees record streams are byte-identical across
serial, parallel, and prefix-replayed execution; the dynamic guards
(golden fixtures, the replay-determinism CI step) catch violations only
once a test exercises them.  This package enforces the statically
visible half of those invariants at commit time, with zero third-party
imports so it runs before any dependency install:

* ``R001`` no-wallclock          -- no clock/entropy reads in record paths
* ``R002`` rng-discipline        -- RNGs flow through named substreams
* ``R003`` unordered-iteration   -- no bare set iteration where order
  becomes a record or a splice decision
* ``R004`` fork-safety           -- no lambdas/closures into worker pools
* ``R005`` replay-soundness      -- scenarios/apps opt into replay
  explicitly (no silent cold fallback)
* ``R006`` frozen-spec-mutation  -- planning specs are immutable values

Suppression grammar (reason mandatory)::

    expr  # repro: allow[R001] elapsed-time report only, never recorded

Rules live in :mod:`repro.devtools.lint.rules`; adding one is a
:class:`~repro.devtools.lint.registry.Rule` subclass plus the
``@register`` decorator (see the README's "Static analysis" section).
"""

from repro.devtools.lint import rules as _rules  # populate the registry
from repro.devtools.lint.engine import LintReport, lint_file, lint_paths
from repro.devtools.lint.pragmas import PRAGMA_RULE_ID, parse_pragmas
from repro.devtools.lint.registry import (
    RULES,
    FileContext,
    LintConfig,
    Rule,
    Scope,
    Violation,
    register,
)

del _rules

__all__ = [
    "FileContext",
    "LintConfig",
    "LintReport",
    "PRAGMA_RULE_ID",
    "RULES",
    "Rule",
    "Scope",
    "Violation",
    "lint_file",
    "lint_paths",
    "parse_pragmas",
    "register",
]
