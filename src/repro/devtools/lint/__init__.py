"""``repro lint``: AST-based static analysis of the repo's invariants.

The runtime stack guarantees record streams are byte-identical across
serial, parallel, and prefix-replayed execution; the dynamic guards
(golden fixtures, the replay-determinism CI step) catch violations only
once a test exercises them.  This package enforces the statically
visible half of those invariants at commit time, with zero third-party
imports so it runs before any dependency install:

* ``R001`` no-wallclock          -- no clock/entropy reads in record paths
* ``R002`` rng-discipline        -- RNGs flow through named substreams
* ``R003`` unordered-iteration   -- no bare set iteration where order
  becomes a record or a splice decision
* ``R004`` fork-safety           -- no lambdas/closures into worker pools
* ``R005`` replay-soundness      -- scenarios/apps opt into replay
  explicitly (no silent cold fallback)
* ``R006`` frozen-spec-mutation  -- planning specs are immutable values

The whole-program pack (call graph + effect summaries over every file
in the run; :mod:`repro.devtools.lint.wholeprogram`):

* ``R007`` fork-effect-safety    -- no module-global writes reachable
  from a fork/spawn entry point (outside the sanctioned registries)
* ``R008`` queue-protocol        -- lease-queue state dirs change only
  through claim-by-rename / done-file-authoritative transitions
* ``R009`` shutdown-soundness    -- explicit releases after an acquire
  (FINISHED marker, shard close) are finally-dominated
* ``R010`` sink-plan-order       -- no record emission driven by a raw
  listdir/glob/iterdir enumeration

Suppression grammar (reason mandatory)::

    expr  # repro: allow[R001] elapsed-time report only, never recorded

Rules live in :mod:`repro.devtools.lint.rules` and
:mod:`repro.devtools.lint.wholeprogram`; adding one is a
:class:`~repro.devtools.lint.registry.Rule` (or ``ProjectRule``)
subclass plus the ``@register`` decorator (see the README's "Static
analysis" section).  ``--format sarif`` emits SARIF 2.1.0
(:mod:`repro.devtools.lint.sarif`); ``--fix`` applies the mechanical
rewrites (:mod:`repro.devtools.lint.fixer`).
"""

from repro.devtools.lint import rules as _rules  # populate the registry
from repro.devtools.lint import wholeprogram as _wholeprogram  # noqa: F401
from repro.devtools.lint.engine import LintReport, lint_file, lint_paths
from repro.devtools.lint.pragmas import PRAGMA_RULE_ID, parse_pragmas
from repro.devtools.lint.registry import (
    RULES,
    FileContext,
    LintConfig,
    ProjectRule,
    Rule,
    Scope,
    Violation,
    register,
)

del _rules, _wholeprogram

__all__ = [
    "FileContext",
    "LintConfig",
    "LintReport",
    "PRAGMA_RULE_ID",
    "ProjectRule",
    "RULES",
    "Rule",
    "Scope",
    "Violation",
    "lint_file",
    "lint_paths",
    "parse_pragmas",
    "register",
]
