"""The lint driver: file discovery, rule dispatch, pragma filtering.

Deterministic by construction (files sorted, violations sorted): the
linter is itself record-emitting code and practices what it enforces.

Two phases.  Every file is parsed once into a :class:`FileEntry`; the
per-file rules (R001--R006) then run file by file, and the
whole-program rules (R007--R010) run once against the
:class:`~repro.devtools.lint.wholeprogram.ProjectAnalysis` assembled
from all parsed trees -- call graph plus effect summaries.  Both kinds
of violation flow through the same scope and pragma machinery, so a
``# repro: allow[R008] reason`` suppresses a cross-module finding
exactly like a local one.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.devtools.lint.names import import_map
from repro.devtools.lint.pragmas import (
    PRAGMA_RULE_ID,
    PragmaSet,
    parse_pragmas,
    unknown_rule_problems,
)
from repro.devtools.lint.registry import (
    RULES,
    FileContext,
    LintConfig,
    ProjectRule,
    Violation,
)

#: Rule id for files the linter cannot parse at all.  Not suppressible:
#: a file that does not parse cannot host a pragma either.
PARSE_ERROR_ID = "E001"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              ".benchmarks", "node_modules"}

#: Compound statements are excluded from the pragma-extent map: a
#: pragma deep inside a class or loop body must not suppress a
#: violation reported on the compound's header line far above it.
_COMPOUND_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.For, ast.AsyncFor, ast.While, ast.If, ast.With,
                   ast.AsyncWith, ast.Try)


@dataclasses.dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: List[Violation]
    files_scanned: int
    rules: List[str]
    #: repository-relative path -> filesystem path actually read; what
    #: the autofixer uses to write rewrites back.
    file_map: Dict[str, str] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_json(self) -> Dict[str, object]:
        """The stable JSON schema (``--format json``)."""
        return {
            "version": 1,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "counts": self.counts(),
            "violations": [v.to_json() for v in self.violations],
        }

    def render_text(self) -> str:
        lines = [v.render() for v in self.violations]
        if self.ok:
            lines.append("repro lint: clean "
                         f"({self.files_scanned} files, "
                         f"{len(self.rules)} rules)")
        else:
            lines.append(f"repro lint: {len(self.violations)} violation(s) "
                         f"in {self.files_scanned} files scanned")
        return "\n".join(lines)


def discover(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    found = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS
                                 and not d.startswith("."))
            found.extend(os.path.join(dirpath, name)
                         for name in filenames if name.endswith(".py"))
    return iter(sorted(dict.fromkeys(found)))


def _relpath(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    rel = rel.replace(os.sep, "/")
    return path.replace(os.sep, "/") if rel.startswith("..") else rel


def statement_extents(tree: ast.Module) -> Dict[int, Tuple[int, int]]:
    """Innermost *simple*-statement line span containing each line.

    This is what lets a pragma anywhere on a multi-line statement
    suppress a violation reported on one of its inner lines.  Compound
    statements are skipped so the map never stretches a suppression
    across a whole class or loop body.
    """
    extents: Dict[int, Tuple[int, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt) or \
                isinstance(node, _COMPOUND_STMTS):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        span = (node.lineno, end)
        for line in range(node.lineno, end + 1):
            prev = extents.get(line)
            if prev is None or (span[1] - span[0]) < (prev[1] - prev[0]):
                extents[line] = span
    return extents


@dataclasses.dataclass
class FileEntry:
    """One discovered file, parsed (or not) and ready for rules."""

    path: str                      #: filesystem path as read
    relpath: str                   #: repository-relative POSIX path
    source: str
    ctx: Optional[FileContext]     #: ``None`` when the file failed to parse
    pragmas: PragmaSet
    extents: Dict[int, Tuple[int, int]]
    violations: List[Violation]


def parse_file(path: str, relpath: str) -> FileEntry:
    """Read and parse one file; parse failures become E001 violations."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return FileEntry(
            path=path, relpath=relpath, source="", ctx=None,
            pragmas=PragmaSet([], []), extents={},
            violations=[Violation(path=relpath, line=1, col=1,
                                  rule=PARSE_ERROR_ID,
                                  message=f"cannot read file: {exc}")])
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return FileEntry(
            path=path, relpath=relpath, source=source, ctx=None,
            pragmas=PragmaSet([], []), extents={},
            violations=[Violation(path=relpath, line=exc.lineno or 1,
                                  col=(exc.offset or 0) + 1,
                                  rule=PARSE_ERROR_ID,
                                  message=f"syntax error: {exc.msg}")])
    ctx = FileContext(relpath, source, tree, import_map(tree))
    pragmas = parse_pragmas(relpath, source)
    violations: List[Violation] = list(pragmas.problems)
    violations.extend(unknown_rule_problems(relpath, pragmas, RULES))
    return FileEntry(path=path, relpath=relpath, source=source, ctx=ctx,
                     pragmas=pragmas, extents=statement_extents(tree),
                     violations=violations)


def _admit(entry: FileEntry, violation: Violation) -> None:
    """Append *violation* unless a pragma on its statement suppresses it."""
    start, end = entry.extents.get(violation.line,
                                   (violation.line, violation.line))
    if not entry.pragmas.suppresses_span(violation.rule, violation.line,
                                         start, end):
        entry.violations.append(violation)


def _run_file_rules(entry: FileEntry, config: LintConfig) -> None:
    for rule in config.rules():
        if isinstance(rule, ProjectRule):
            continue
        if not config.scope_for(rule).matches(entry.relpath):
            continue
        for violation in rule.check(entry.ctx):
            _admit(entry, violation)


def _run_project_rules(entries: List[FileEntry],
                       config: LintConfig) -> None:
    project_rules = [rule for rule in config.rules()
                     if isinstance(rule, ProjectRule)]
    if not project_rules:
        return
    parsed = [entry for entry in entries if entry.ctx is not None]
    if not parsed:
        return
    from repro.devtools.lint.wholeprogram import build_analysis

    analysis = build_analysis([(e.relpath, e.ctx) for e in parsed])
    by_relpath = {entry.relpath: entry for entry in parsed}
    for rule in project_rules:
        scope = config.scope_for(rule)
        for violation in rule.check_project(analysis):
            entry = by_relpath.get(violation.path)
            if entry is None or not scope.matches(violation.path):
                continue
            _admit(entry, violation)


def _flag_unused_pragmas(entry: FileEntry, config: LintConfig) -> None:
    selected = {rule.id for rule in config.rules()}
    for pragma in entry.pragmas.unused():
        # Only flag when every rule the pragma names actually ran;
        # a partial --select must not call live pragmas stale.
        if all(rule_id in selected for rule_id in pragma.rules):
            from repro.devtools.lint.fixer import pragma_removal_fix

            entry.violations.append(Violation(
                path=entry.relpath, line=pragma.line, col=1,
                rule=PRAGMA_RULE_ID,
                message="unused pragma: "
                        f"allow[{','.join(pragma.rules)}] suppressed "
                        "nothing -- remove it (stale suppressions "
                        "hide future violations)",
                fix=pragma_removal_fix(entry.source, pragma)))


def lint_file(path: str, relpath: str, config: LintConfig) -> List[Violation]:
    """All violations for one file under *config*.

    Whole-program rules see a single-file project here; this is the
    fixture-sized entry point the tests drive.  :func:`lint_paths` is
    the multi-file public surface.
    """
    entry = parse_file(path, relpath)
    if entry.ctx is not None:
        _run_file_rules(entry, config)
        _run_project_rules([entry], config)
        if config.flag_unused_pragmas:
            _flag_unused_pragmas(entry, config)
    return entry.violations


def lint_paths(paths: Iterable[str], config: Optional[LintConfig] = None,
               root: str = ".") -> LintReport:
    """Lint every Python file under *paths*; the public entry point.

    *root* anchors the repository-relative paths that rule scopes match
    against (and that reports print); pass the repository root when
    linting from elsewhere.  Whole-program rules (R007--R010) analyze
    all discovered files as one project, so *paths* should cover the
    package top (``--root``/default paths do) for cross-module edges to
    resolve.
    """
    config = config or LintConfig()
    rules = config.rules()     # validates --select before any I/O
    entries: List[FileEntry] = []
    for path in discover(paths):
        entries.append(parse_file(path, _relpath(path, root)))
    for entry in entries:
        if entry.ctx is not None:
            _run_file_rules(entry, config)
    _run_project_rules(entries, config)
    if config.flag_unused_pragmas:
        for entry in entries:
            if entry.ctx is not None:
                _flag_unused_pragmas(entry, config)
    violations = [v for entry in entries for v in entry.violations]
    return LintReport(violations=sorted(violations),
                      files_scanned=len(entries),
                      rules=[rule.id for rule in rules],
                      file_map={entry.relpath: entry.path
                                for entry in entries})
