"""The lint driver: file discovery, rule dispatch, pragma filtering.

Deterministic by construction (files sorted, violations sorted): the
linter is itself record-emitting code and practices what it enforces.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, Iterable, Iterator, List, Optional

from repro.devtools.lint.names import import_map
from repro.devtools.lint.pragmas import (
    PRAGMA_RULE_ID,
    parse_pragmas,
    unknown_rule_problems,
)
from repro.devtools.lint.registry import (
    RULES,
    FileContext,
    LintConfig,
    Violation,
)

#: Rule id for files the linter cannot parse at all.  Not suppressible:
#: a file that does not parse cannot host a pragma either.
PARSE_ERROR_ID = "E001"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              ".benchmarks", "node_modules"}


@dataclasses.dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: List[Violation]
    files_scanned: int
    rules: List[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_json(self) -> Dict[str, object]:
        """The stable JSON schema (``--format json``)."""
        return {
            "version": 1,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "counts": self.counts(),
            "violations": [v.to_json() for v in self.violations],
        }

    def render_text(self) -> str:
        lines = [v.render() for v in self.violations]
        if self.ok:
            lines.append("repro lint: clean "
                         f"({self.files_scanned} files, "
                         f"{len(self.rules)} rules)")
        else:
            lines.append(f"repro lint: {len(self.violations)} violation(s) "
                         f"in {self.files_scanned} files scanned")
        return "\n".join(lines)


def discover(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    found = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS
                                 and not d.startswith("."))
            found.extend(os.path.join(dirpath, name)
                         for name in filenames if name.endswith(".py"))
    return iter(sorted(dict.fromkeys(found)))


def _relpath(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    rel = rel.replace(os.sep, "/")
    return path.replace(os.sep, "/") if rel.startswith("..") else rel


def lint_file(path: str, relpath: str, config: LintConfig) -> List[Violation]:
    """All violations for one file under *config*."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [Violation(path=relpath, line=1, col=1, rule=PARSE_ERROR_ID,
                          message=f"cannot read file: {exc}")]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path=relpath, line=exc.lineno or 1,
                          col=(exc.offset or 0) + 1, rule=PARSE_ERROR_ID,
                          message=f"syntax error: {exc.msg}")]

    ctx = FileContext(relpath, source, tree, import_map(tree))
    pragmas = parse_pragmas(relpath, source)
    violations: List[Violation] = list(pragmas.problems)
    violations.extend(unknown_rule_problems(relpath, pragmas, RULES))

    for rule in config.rules():
        if not config.scope_for(rule).matches(relpath):
            continue
        for violation in rule.check(ctx):
            if not pragmas.suppresses(violation.rule, violation.line):
                violations.append(violation)

    if config.flag_unused_pragmas:
        selected = {rule.id for rule in config.rules()}
        for pragma in pragmas.unused():
            # Only flag when every rule the pragma names actually ran;
            # a partial --select must not call live pragmas stale.
            if all(rule_id in selected for rule_id in pragma.rules):
                violations.append(Violation(
                    path=relpath, line=pragma.line, col=1,
                    rule=PRAGMA_RULE_ID,
                    message="unused pragma: "
                            f"allow[{','.join(pragma.rules)}] suppressed "
                            "nothing -- remove it (stale suppressions "
                            "hide future violations)"))
    return violations


def lint_paths(paths: Iterable[str], config: Optional[LintConfig] = None,
               root: str = ".") -> LintReport:
    """Lint every Python file under *paths*; the public entry point.

    *root* anchors the repository-relative paths that rule scopes match
    against (and that reports print); pass the repository root when
    linting from elsewhere.
    """
    config = config or LintConfig()
    rules = config.rules()     # validates --select before any I/O
    violations: List[Violation] = []
    scanned = 0
    for path in discover(paths):
        scanned += 1
        violations.extend(lint_file(path, _relpath(path, root), config))
    return LintReport(violations=sorted(violations),
                      files_scanned=scanned,
                      rules=[rule.id for rule in rules])
