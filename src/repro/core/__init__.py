"""FFIS: the fault-injection framework (the paper's primary contribution)."""

from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.core.fault_models import (
    BitFlipFault,
    DroppedWriteFault,
    FaultModel,
    ReadCorruptionFault,
    SECTOR_SIZE,
    ShornWriteFault,
    make_fault_model,
)
from repro.core.signature import FaultSignature
from repro.core.config import CampaignConfig
from repro.core.generator import FaultGenerator
from repro.core.profiler import IOProfiler, ProfileResult
from repro.core.injector import FaultInjector, InjectionHook
from repro.core.engine import (
    ExecutionContext,
    Executor,
    JsonlSink,
    ParallelExecutor,
    ProfileGoldenCache,
    ResultSink,
    RunPlan,
    RunSpec,
    SerialExecutor,
    SweepCell,
    SweepPlan,
    SweepResult,
    TallySink,
    execute_plan,
    execute_run_spec,
    execute_sweep,
    load_records,
    load_records_by_campaign,
    make_executor,
)
from repro.core.campaign import Campaign, CampaignResult, InjectionContext
from repro.core.metadata_campaign import (
    ByteCorruptionContext,
    MetadataCampaign,
    MetadataCampaignResult,
    MetadataWriteInfo,
)

__all__ = [
    "Outcome",
    "OutcomeTally",
    "RunRecord",
    "BitFlipFault",
    "DroppedWriteFault",
    "FaultModel",
    "ReadCorruptionFault",
    "SECTOR_SIZE",
    "ShornWriteFault",
    "make_fault_model",
    "FaultSignature",
    "CampaignConfig",
    "FaultGenerator",
    "IOProfiler",
    "ProfileResult",
    "FaultInjector",
    "InjectionHook",
    "Campaign",
    "CampaignResult",
    "MetadataCampaign",
    "MetadataCampaignResult",
    "MetadataWriteInfo",
    "ByteCorruptionContext",
    "ExecutionContext",
    "Executor",
    "InjectionContext",
    "JsonlSink",
    "ParallelExecutor",
    "ProfileGoldenCache",
    "ResultSink",
    "RunPlan",
    "RunSpec",
    "SerialExecutor",
    "SweepCell",
    "SweepPlan",
    "SweepResult",
    "TallySink",
    "execute_plan",
    "execute_run_spec",
    "execute_sweep",
    "load_records",
    "load_records_by_campaign",
    "make_executor",
]
