"""FFIS: the fault-injection framework (the paper's primary contribution).

Names are resolved lazily (PEP 562): importing a leaf module (e.g.
:mod:`repro.core.outcomes` from an application definition) no longer
executes the whole framework import graph, which both keeps startup
cheap and breaks the ``apps <-> core`` import cycle that an eager
package init would re-introduce.
"""

from typing import Dict, Tuple

from repro.util.lazy import lazy_exports

#: Exported name -> (module, attribute), resolved on first access.
_EXPORTS: Dict[str, Tuple[str, str]] = {
    "Outcome": ("repro.core.outcomes", "Outcome"),
    "OutcomeTally": ("repro.core.outcomes", "OutcomeTally"),
    "RunRecord": ("repro.core.outcomes", "RunRecord"),
    "BitFlipFault": ("repro.core.fault_models", "BitFlipFault"),
    "DroppedWriteFault": ("repro.core.fault_models", "DroppedWriteFault"),
    "FaultModel": ("repro.core.fault_models", "FaultModel"),
    "ReadCorruptionFault": ("repro.core.fault_models", "ReadCorruptionFault"),
    "SECTOR_SIZE": ("repro.core.fault_models", "SECTOR_SIZE"),
    "ShornWriteFault": ("repro.core.fault_models", "ShornWriteFault"),
    "make_fault_model": ("repro.core.fault_models", "make_fault_model"),
    "FaultSignature": ("repro.core.signature", "FaultSignature"),
    "CampaignConfig": ("repro.core.config", "CampaignConfig"),
    "FaultGenerator": ("repro.core.generator", "FaultGenerator"),
    "IOProfiler": ("repro.core.profiler", "IOProfiler"),
    "ProfileResult": ("repro.core.profiler", "ProfileResult"),
    "FaultInjector": ("repro.core.injector", "FaultInjector"),
    "InjectionHook": ("repro.core.injector", "InjectionHook"),
    "MultiShotHook": ("repro.core.injector", "MultiShotHook"),
    "AtRestDecay": ("repro.core.scenario", "AtRestDecay"),
    "BurstFault": ("repro.core.scenario", "BurstFault"),
    "FaultScenario": ("repro.core.scenario", "FaultScenario"),
    "KFaults": ("repro.core.scenario", "KFaults"),
    "SingleFault": ("repro.core.scenario", "SingleFault"),
    "parse_scenario": ("repro.core.scenario", "parse_scenario"),
    "Campaign": ("repro.core.campaign", "Campaign"),
    "CampaignResult": ("repro.core.campaign", "CampaignResult"),
    "InjectionContext": ("repro.core.campaign", "InjectionContext"),
    "MetadataCampaign": ("repro.core.metadata_campaign", "MetadataCampaign"),
    "MetadataCampaignResult": ("repro.core.metadata_campaign",
                               "MetadataCampaignResult"),
    "MetadataWriteInfo": ("repro.core.metadata_campaign", "MetadataWriteInfo"),
    "ByteCorruptionContext": ("repro.core.metadata_campaign",
                              "ByteCorruptionContext"),
    "ExecutionContext": ("repro.core.engine", "ExecutionContext"),
    "Executor": ("repro.core.engine", "Executor"),
    "JsonlSink": ("repro.core.engine", "JsonlSink"),
    "ParallelExecutor": ("repro.core.engine", "ParallelExecutor"),
    "ProfileGoldenCache": ("repro.core.engine", "ProfileGoldenCache"),
    "ResultSink": ("repro.core.engine", "ResultSink"),
    "RunPlan": ("repro.core.engine", "RunPlan"),
    "RunSpec": ("repro.core.engine", "RunSpec"),
    "SerialExecutor": ("repro.core.engine", "SerialExecutor"),
    "SweepCell": ("repro.core.engine", "SweepCell"),
    "SweepPlan": ("repro.core.engine", "SweepPlan"),
    "SweepResult": ("repro.core.engine", "SweepResult"),
    "TallySink": ("repro.core.engine", "TallySink"),
    "execute_plan": ("repro.core.engine", "execute_plan"),
    "execute_run_spec": ("repro.core.engine", "execute_run_spec"),
    "execute_sweep": ("repro.core.engine", "execute_sweep"),
    "load_records": ("repro.core.engine", "load_records"),
    "load_records_by_campaign": ("repro.core.engine",
                                 "load_records_by_campaign"),
    "make_executor": ("repro.core.engine", "make_executor"),
}

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = lazy_exports(__name__, globals(), _EXPORTS)
