"""Fault signatures: the (model, primitive, feature) triple of Fig. 4."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fault_models import FaultModel
from repro.errors import ConfigError
from repro.fusefs.vfs import PRIMITIVES


@dataclass(frozen=True)
class FaultSignature:
    """What to inject: produced by the fault generator, consumed by the
    I/O profiler (which counts the primitive) and the fault injector
    (which applies the model at the chosen dynamic instance)."""

    model: FaultModel
    primitive: str = "ffis_write"

    def __post_init__(self) -> None:
        if self.primitive not in PRIMITIVES:
            raise ConfigError(
                f"unknown FUSE primitive {self.primitive!r} "
                f"(choose from {PRIMITIVES})")

    @property
    def feature(self) -> str:
        return self.model.describe()

    def __str__(self) -> str:
        return f"{self.model.name} on {self.primitive} ({self.feature})"
