"""The three FFIS fault models (paper Table I and Sec. IV-B).

Each model rewrites one dynamic execution of a FUSE-style primitive:

* **BIT_FLIP** -- flip ``n_bits`` consecutive bits (default 2; the paper's
  footnote-3 ablation uses 4) at a uniformly random position of the write
  buffer.  On ``ffis_mknod``/``ffis_chmod`` the flip lands in the
  ``mode``/``dev`` integers instead (Fig. 3b).
* **SHORN_WRITE** -- the device only persists the first 3/8 or 7/8 of the
  write at 512-byte sector granularity; the tail of the buffer becomes
  *undefined data*.  The tail policy models what "undefined" physically
  is: ``stale`` (previous sector's bytes, the common manifestation and
  the one matching the paper's observation that shorn Nyx data stayed
  "within an order of magnitude" of the original), ``zeros``, or
  ``random``.
* **DROPPED_WRITE** -- the write never reaches the device but success (the
  full size) is reported to the application.

Models mutate the in-flight :class:`PrimitiveCall`; they never touch the
file system directly, so they compose with any primitive the interposer
routes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.fusefs.interposer import CallDecision, PrimitiveCall
from repro.util.bitops import flip_consecutive_bits

SECTOR_SIZE = 512


class FaultModel(ABC):
    """A storage-fault transformation applied to one primitive call."""

    #: Canonical name used in configs and reports ("BF", "SW", "DW").
    name: str = "?"

    @abstractmethod
    def apply(self, call: PrimitiveCall, rng: np.random.Generator) -> Optional[CallDecision]:
        """Corrupt *call* in place; return SUPPRESS to elide the operation."""

    def describe(self) -> str:
        """Human-readable feature description (Table I's Features column)."""
        return self.name


class BitFlipFault(FaultModel):
    """Flip ``n_bits`` consecutive bits at a random buffer position."""

    name = "BF"

    def __init__(self, n_bits: int = 2) -> None:
        if n_bits < 1:
            raise ConfigError(f"BIT_FLIP needs n_bits >= 1, got {n_bits}")
        self.n_bits = n_bits

    def apply(self, call: PrimitiveCall, rng: np.random.Generator) -> Optional[CallDecision]:
        if call.primitive in ("ffis_mknod", "ffis_chmod"):
            # Fig. 3b: the flip lands at a uniformly random position of
            # the whole 32-bit mode/dev integer -- sampling fewer bits
            # would shelter the high half of the field from corruption.
            fields = [name for name in ("mode", "dev") if name in call.args]
            if len(fields) == 1:
                field = fields[0]
            else:
                field = fields[int(rng.integers(0, len(fields)))]
            value = int(call.args[field])
            start = int(rng.integers(0, 32))
            for k in range(self.n_bits):
                value ^= 1 << ((start + k) % 32)
            call.args[field] = value
            call.notes.append(f"BF: flipped {self.n_bits} bits of {field}")
            return None
        buf = call.args.get("buf")
        if not isinstance(buf, (bytes, bytearray)) or len(buf) == 0:
            call.notes.append("BF: empty buffer, nothing to corrupt")
            return None
        nbits = 8 * len(buf)
        start = int(rng.integers(0, nbits))
        call.args["buf"] = flip_consecutive_bits(bytes(buf), start, self.n_bits)
        call.notes.append(f"BF: flipped bits [{start}, {start + self.n_bits})")
        return None

    def describe(self) -> str:
        return f"flip {self.n_bits} consecutive bits"


class ShornWriteFault(FaultModel):
    """Persist only the leading sectors of a write; the tail is undefined."""

    name = "SW"

    POLICIES = ("stale", "zeros", "random")

    def __init__(self, fraction: float = 7 / 8, sector_size: int = SECTOR_SIZE,
                 tail_policy: str = "stale") -> None:
        if not 0.0 < fraction < 1.0:
            raise ConfigError(f"SHORN_WRITE fraction must be in (0, 1), got {fraction}")
        if tail_policy not in self.POLICIES:
            raise ConfigError(f"unknown tail policy {tail_policy!r}")
        self.fraction = fraction
        self.sector_size = sector_size
        self.tail_policy = tail_policy

    def shear_point(self, size: int) -> int:
        """Bytes that actually land, rounded down to sector granularity."""
        kept = int(size * self.fraction) // self.sector_size * self.sector_size
        if kept == 0:
            kept = max(int(size * self.fraction), 1) if size > 1 else 0
        return min(kept, size)

    def apply(self, call: PrimitiveCall, rng: np.random.Generator) -> Optional[CallDecision]:
        buf = call.args.get("buf")
        if not isinstance(buf, (bytes, bytearray)) or len(buf) == 0:
            call.notes.append("SW: empty buffer, nothing to shear")
            return None
        buf = bytes(buf)
        kept = self.shear_point(len(buf))
        tail_len = len(buf) - kept
        if tail_len <= 0:
            call.notes.append("SW: buffer smaller than one sector remainder")
            return None
        if self.tail_policy == "zeros":
            tail = b"\x00" * tail_len
        elif self.tail_policy == "random":
            tail = rng.integers(0, 256, size=tail_len, dtype=np.uint8).tobytes()
        else:  # stale: the previous sector's bytes, repeated over the tail
            src_start = max(kept - self.sector_size, 0)
            stale = buf[src_start:kept] or b"\x00"
            reps = -(-tail_len // len(stale))
            tail = (stale * reps)[:tail_len]
        call.args["buf"] = buf[:kept] + tail
        call.notes.append(
            f"SW: kept {kept}/{len(buf)} bytes, tail={self.tail_policy}")
        return None

    def describe(self) -> str:
        num = int(self.fraction * 8)
        return (f"completely write the first {num}/8th of the block "
                f"({self.sector_size}B granularity); tail undefined "
                f"({self.tail_policy})")


class ReadCorruptionFault(FaultModel):
    """CORDS-style *read-path* corruption (Sec. VI, Ganesan et al.).

    Flips bits in the buffer a read **returns** instead of what a write
    persists.  The corruption is transient: a re-read of the same range
    observes clean data, which is the fundamental contrast with FFIS's
    write-path models the paper draws in Related Work ("they randomly
    modify the content of a read buffer").  Included as an extension so
    the two methodologies can be compared on the same applications.
    """

    name = "RC"

    def __init__(self, n_bits: int = 2) -> None:
        if n_bits < 1:
            raise ConfigError(f"READ_CORRUPTION needs n_bits >= 1, got {n_bits}")
        self.n_bits = n_bits

    def apply(self, call: PrimitiveCall, rng: np.random.Generator) -> Optional[CallDecision]:
        if call.primitive != "ffis_read":
            call.notes.append("RC: not a read, nothing to corrupt")
            return None
        n_bits = self.n_bits

        def corrupt(data: bytes) -> bytes:
            if not data:
                return data
            start = int(rng.integers(0, 8 * len(data)))
            return flip_consecutive_bits(data, start, n_bits)

        call.result_transform = corrupt
        call.notes.append(f"RC: will flip {self.n_bits} bits of the read result")
        return None

    def describe(self) -> str:
        return f"flip {self.n_bits} consecutive bits of the returned read buffer"


class DroppedWriteFault(FaultModel):
    """Silently discard the write while reporting success."""

    name = "DW"

    def apply(self, call: PrimitiveCall, rng: np.random.Generator) -> Optional[CallDecision]:
        call.notes.append("DW: write ignored")
        return CallDecision.SUPPRESS

    def describe(self) -> str:
        return "the write operation is ignored"


_REGISTRY = {
    "BF": BitFlipFault,
    "BIT_FLIP": BitFlipFault,
    "SW": ShornWriteFault,
    "SHORN_WRITE": ShornWriteFault,
    "DW": DroppedWriteFault,
    "DROPPED_WRITE": DroppedWriteFault,
    "RC": ReadCorruptionFault,
    "READ_CORRUPTION": ReadCorruptionFault,
}


def make_fault_model(name: str, **params) -> FaultModel:
    """Instantiate a fault model by canonical or long name."""
    try:
        cls = _REGISTRY[name.upper()]
    except KeyError:
        raise ConfigError(
            f"unknown fault model {name!r} (choose from "
            f"{sorted(set(_REGISTRY))})") from None
    return cls(**params)
