"""The fault injector: arm corruptions at chosen dynamic instances.

:class:`InjectionHook` is the paper's single-fault-per-run model -- the
fault model fires at exactly one dynamic instance.  :class:`MultiShotHook`
generalizes it for composable scenarios (:mod:`repro.core.scenario`):
one hook, a *set* of instances, and a per-point RNG substream derived by
name from the run's seed so serial, parallel, and fused-sweep execution
stay record-identical.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.signature import FaultSignature
from repro.errors import FFISError
from repro.fusefs.interposer import CallDecision, PrimitiveCall
from repro.fusefs.vfs import FFISFileSystem
from repro.util.rngstream import RngStream


def _applied_notes(call: PrimitiveCall, before: int) -> str:
    """Every note the model appended during one application, joined.

    Joining *all* new notes (not just the last one) keeps multi-note
    corruptions fully described in the run record.
    """
    return "; ".join(call.notes[before:])


class InjectionHook:
    """Hook that fires the fault model at exactly one dynamic instance.

    The hook stays silent for every other invocation, so a run differs
    from fault-free execution in precisely one corrupted call -- the
    paper's single-fault-per-run model.
    """

    def __init__(self, signature: FaultSignature, instance: int,
                 rng: np.random.Generator) -> None:
        if instance < 0:
            raise FFISError(f"instance must be >= 0, got {instance}")
        self.signature = signature
        self.instance = instance
        self.rng = rng
        self.fired = False
        self.note: str = ""

    def __call__(self, call: PrimitiveCall) -> Optional[CallDecision]:
        if call.seqno != self.instance or self.fired:
            return None
        self.fired = True
        before = len(call.notes)
        decision = self.signature.model.apply(call, self.rng)
        self.note = _applied_notes(call, before)
        return decision


class MultiShotHook:
    """Hook that fires the fault model at a *set* of dynamic instances.

    Point ``j`` -- in ascending-seqno order, which is the firing order
    within a mount session -- draws its model RNG from a stream derived
    by name from the run's seed: ``RngStream(seed)`` for point 0 (the
    exact single-fault stream, so a one-point scenario is bit-identical
    to :class:`InjectionHook`) and ``RngStream(seed, "point", j)`` for
    later points.  Derivation by name keeps every point's draws
    independent of execution backend and of how many points fired.
    """

    def __init__(self, signature: FaultSignature, instances: Sequence[int],
                 seed: int) -> None:
        points = tuple(sorted(set(int(i) for i in instances or ())))
        if not points:
            raise FFISError("MultiShotHook needs at least one instance")
        if points[0] < 0:
            raise FFISError(f"instances must be >= 0, got {points[0]}")
        self.signature = signature
        self.instances = points
        self.seed = seed
        self._point_index = {inst: j for j, inst in enumerate(points)}
        self._remaining = set(points)
        self.fired = False
        self.fired_count = 0
        self._notes: list = []

    @property
    def note(self) -> str:
        return "; ".join(self._notes)

    def _point_rng(self, j: int) -> np.random.Generator:
        stream = RngStream(self.seed)
        if j > 0:
            stream = stream.child("point", j)
        return stream.generator()

    def __call__(self, call: PrimitiveCall) -> Optional[CallDecision]:
        if call.seqno not in self._remaining:
            return None
        self._remaining.discard(call.seqno)
        j = self._point_index[call.seqno]
        before = len(call.notes)
        decision = self.signature.model.apply(call, self._point_rng(j))
        applied = _applied_notes(call, before)
        if applied:
            self._notes.append(applied)
        self.fired = True
        self.fired_count += 1
        return decision


class FaultInjector:
    """Arms injection hooks on a file system's interposer."""

    def __init__(self, signature: FaultSignature) -> None:
        self.signature = signature

    def arm(self, fs: FFISFileSystem, instance: int,
            rng: np.random.Generator) -> InjectionHook:
        """Attach a one-shot hook for *instance*; returns it for inspection."""
        hook = InjectionHook(self.signature, instance, rng)
        fs.interposer.add_hook(self.signature.primitive, hook)
        return hook

    def arm_many(self, fs: FFISFileSystem, instances: Sequence[int],
                 seed: int) -> MultiShotHook:
        """Attach one multi-shot hook covering every instance in *instances*."""
        hook = MultiShotHook(self.signature, instances, seed)
        fs.interposer.add_hook(self.signature.primitive, hook)
        return hook
