"""The fault injector: arm a one-shot corruption at a chosen instance."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.signature import FaultSignature
from repro.errors import FFISError
from repro.fusefs.interposer import CallDecision, PrimitiveCall
from repro.fusefs.vfs import FFISFileSystem


class InjectionHook:
    """Hook that fires the fault model at exactly one dynamic instance.

    The hook stays silent for every other invocation, so a run differs
    from fault-free execution in precisely one corrupted call -- the
    paper's single-fault-per-run model.
    """

    def __init__(self, signature: FaultSignature, instance: int,
                 rng: np.random.Generator) -> None:
        if instance < 0:
            raise FFISError(f"instance must be >= 0, got {instance}")
        self.signature = signature
        self.instance = instance
        self.rng = rng
        self.fired = False
        self.note: str = ""

    def __call__(self, call: PrimitiveCall) -> Optional[CallDecision]:
        if call.seqno != self.instance or self.fired:
            return None
        self.fired = True
        decision = self.signature.model.apply(call, self.rng)
        self.note = "; ".join(call.notes[-1:])
        return decision


class FaultInjector:
    """Arms injection hooks on a file system's interposer."""

    def __init__(self, signature: FaultSignature) -> None:
        self.signature = signature

    def arm(self, fs: FFISFileSystem, instance: int,
            rng: np.random.Generator) -> InjectionHook:
        """Attach a one-shot hook for *instance*; returns it for inspection."""
        hook = InjectionHook(self.signature, instance, rng)
        fs.interposer.add_hook(self.signature.primitive, hook)
        return hook
