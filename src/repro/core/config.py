"""User configuration of a fault-injection campaign (Fig. 4's input)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.core.fault_models import make_fault_model
from repro.core.scenario import FaultScenario, as_scenario
from repro.core.signature import FaultSignature
from repro.errors import ConfigError


@dataclass
class CampaignConfig:
    """Everything a user specifies to launch a campaign.

    ``fault_model`` accepts the short or long names ("BF"/"BIT_FLIP", ...)
    and ``model_params`` the model's keyword arguments (``n_bits``,
    ``fraction``, ``tail_policy``).  ``phase`` restricts injection to one
    named application phase (Montage MT1..MT4); ``None`` targets every
    dynamic instance of the primitive uniformly (requirement R4).

    ``scenario`` selects how many injection points each run plans: a
    :class:`repro.core.scenario.FaultScenario` instance or a spec string
    (``"single"``, ``"k=3,window=16"``, ``"burst=4"``,
    ``"decay:bytes=8"``).  ``None``/``"single"`` is the paper's
    single-fault model, bit-identical to the pre-scenario engine.

    The execution knobs map onto the campaign engine: ``workers`` > 1
    fans the runs out over a process pool (bit-identical to serial),
    ``chunk_size`` sets how many runs each pool task spans (``None``
    picks ``max(1, n_runs // (workers * 4))``, capped), ``results_path``
    streams each record to a JSONL checkpoint, and ``resume`` skips run
    indices already present in that file.
    """

    fault_model: str = "BF"
    model_params: Dict[str, Any] = field(default_factory=dict)
    primitive: str = "ffis_write"
    n_runs: int = 1000
    seed: int = 0
    phase: Optional[str] = None
    scenario: Union[None, str, FaultScenario] = None
    workers: int = 1
    chunk_size: Optional[int] = None
    results_path: Optional[str] = None
    resume: bool = False
    #: Prefix-replay switch: ``None`` defers to the engine default
    #: (on, unless ``REPRO_NO_REPLAY`` is set), ``False`` forces every
    #: run to execute cold from an empty file system.
    replay: Optional[bool] = None

    def __post_init__(self) -> None:
        self.scenario = as_scenario(self.scenario)
        if self.n_runs < 1:
            raise ConfigError(f"n_runs must be >= 1, got {self.n_runs}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}")
        if self.resume and self.results_path is None:
            raise ConfigError("resume=True requires results_path")

    def signature(self) -> FaultSignature:
        model = make_fault_model(self.fault_model, **self.model_params)
        primitive = self.primitive
        if model.name == "RC" and primitive == "ffis_write":
            # Read-path corruption targets reads; steer the default there
            # so `fault_model="RC"` alone does the expected thing.
            primitive = "ffis_read"
        return FaultSignature(model=model, primitive=primitive)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "CampaignConfig":
        known = {"fault_model", "model_params", "primitive", "n_runs",
                 "seed", "phase", "scenario", "workers", "chunk_size",
                 "results_path", "resume", "replay"}
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(f"unknown configuration keys: {sorted(unknown)}")
        return cls(**raw)
