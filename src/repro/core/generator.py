"""The fault generator: user configuration → fault signature (Fig. 4)."""

from __future__ import annotations

from repro.core.config import CampaignConfig
from repro.core.signature import FaultSignature


class FaultGenerator:
    """Reads the user configuration and produces the fault signature.

    Deliberately thin -- the architecture keeps signature *production*
    (here), primitive *counting* (the I/O profiler), and fault
    *application* (the injector) as the three separate components of the
    paper's Fig. 4 workflow, so each can be exercised and tested alone.
    """

    def generate(self, config: CampaignConfig) -> FaultSignature:
        return config.signature()
