"""The I/O profiler: fault-free dynamic counts of the target primitive.

Runs the application once with a counting hook attached and reports how
many times the fault signature's primitive executed, plus the per-phase
windows.  That count defines the uniform distribution the fault injector
samples instances from (paper requirement R4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.apps.base import HpcApplication, PhaseSpan
from repro.core.signature import FaultSignature
from repro.errors import FFISError
from repro.fusefs.mount import mount
from repro.fusefs.profiler_hooks import CountingHook
from repro.fusefs.vfs import FFISFileSystem

FsFactory = Callable[[], FFISFileSystem]


@dataclass
class ProfileResult:
    """Fault-free dynamic execution profile of one primitive."""

    primitive: str
    total_count: int
    bytes_written: int
    phases: List[PhaseSpan] = field(default_factory=list)

    def window(self, phase: Optional[str]) -> range:
        """Instance range to sample from (whole run or one phase)."""
        if phase is None:
            return range(self.total_count)
        for span in self.phases:
            if span.name == phase:
                return range(span.start, span.end)
        raise FFISError(f"application recorded no phase named {phase!r}")


class IOProfiler:
    """Counts dynamic executions of a signature's primitive."""

    def __init__(self, fs_factory: FsFactory = FFISFileSystem) -> None:
        self.fs_factory = fs_factory

    def profile(self, app: HpcApplication, signature: FaultSignature) -> ProfileResult:
        fs = self.fs_factory()
        hook = CountingHook()
        fs.interposer.add_hook(signature.primitive, hook)
        with mount(fs) as mp:
            app.execute(mp)
        if hook.count == 0:
            raise FFISError(
                f"{app.name} never executed {signature.primitive}; "
                "nothing to inject into")
        return ProfileResult(primitive=signature.primitive,
                             total_count=hook.count,
                             bytes_written=hook.bytes_written,
                             phases=app.recorded_phases)
