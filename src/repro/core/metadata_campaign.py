"""Byte-by-byte HDF5-metadata fault injection (paper Sec. IV-D).

The paper keys on how the HDF5 library creates a file: raw data writes
first, then one packed metadata write (the **penultimate** ``fwrite``),
then the close/unlock.  The campaign:

1. traces a fault-free run to find the penultimate ``ffis_write`` and its
   buffer extent,
2. for every byte offset in that buffer (from the write's file offset to
   the end of the buffer), runs the application with exactly that byte
   corrupted (one bit flipped, or every bit in ``all-bits`` mode),
3. classifies each run and annotates it with the metadata field owning
   the byte (via the writer's :class:`FieldMap`), reproducing Table III
   and the per-field symptom analysis of Table IV.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.base import GoldenRecord, HpcApplication
from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.errors import FFISError
from repro.fusefs.interposer import PrimitiveCall
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.mhdf5.fieldmap import FieldMap
from repro.util.bitops import flip_bit
from repro.util.rngstream import RngStream

FsFactory = Callable[[], FFISFileSystem]


@dataclass(frozen=True)
class MetadataWriteInfo:
    """Location of the metadata blob write in the dynamic write sequence."""

    write_index: int      # dynamic seqno of the penultimate ffis_write
    file_offset: int
    size: int


class _ByteCorruptionHook:
    """Flips one bit of one byte of one specific write."""

    def __init__(self, write_index: int, byte_offset: int, bit: int) -> None:
        self.write_index = write_index
        self.byte_offset = byte_offset
        self.bit = bit
        self.fired = False

    def __call__(self, call: PrimitiveCall) -> None:
        if call.primitive != "ffis_write" or call.seqno != self.write_index:
            return None
        buf = bytes(call.args["buf"])
        if self.byte_offset >= len(buf):
            return None
        self.fired = True
        call.args["buf"] = flip_bit(buf, 8 * self.byte_offset + self.bit)
        return None


@dataclass
class MetadataCampaignResult:
    app_name: str
    mode: str
    records: List[RunRecord] = field(default_factory=list)
    metadata: Optional[MetadataWriteInfo] = None
    fieldmap: Optional[FieldMap] = None
    elapsed_seconds: float = 0.0

    @property
    def tally(self) -> OutcomeTally:
        return OutcomeTally.from_records(self.records)

    def fields_by_outcome(self) -> Dict[Outcome, List[str]]:
        """Distinct field names observed per outcome, in frequency order
        (Table III's 'Example Metadata Fields' column)."""
        buckets: Dict[Outcome, Dict[str, int]] = {o: {} for o in Outcome}
        for record in self.records:
            name = record.field_name or "?"
            counts = buckets[record.outcome]
            counts[name] = counts.get(name, 0) + 1
        return {o: [name for name, _ in
                    sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]
                for o, counts in buckets.items()}

    def records_for_field(self, substring: str) -> List[RunRecord]:
        return [r for r in self.records
                if r.field_name and substring in r.field_name]


class MetadataCampaign:
    """Exhaustive per-byte corruption of an app's HDF5 metadata write."""

    def __init__(self, app: HpcApplication, fieldmap: Optional[FieldMap] = None,
                 fs_factory: FsFactory = FFISFileSystem, seed: int = 0,
                 mode: str = "random-bit") -> None:
        if mode not in ("random-bit", "all-bits"):
            raise FFISError(f"unknown metadata campaign mode {mode!r}")
        self.app = app
        self.fieldmap = fieldmap
        self.fs_factory = fs_factory
        self.seed = seed
        self.mode = mode

    # -- discovery ---------------------------------------------------------------

    def locate_metadata_write(self) -> Tuple[MetadataWriteInfo, GoldenRecord]:
        """Trace a fault-free run and identify the penultimate write."""
        fs = self.fs_factory()
        writes: List[Tuple[int, int, int]] = []   # (seqno, offset, size)

        def tracer(call: PrimitiveCall) -> None:
            writes.append((call.seqno, call.args["offset"], call.args["size"]))
            return None

        fs.interposer.add_hook("ffis_write", tracer)
        with mount(fs) as mp:
            golden = self.app.capture_golden(mp)
        if len(writes) < 2:
            raise FFISError(
                f"{self.app.name} performed {len(writes)} writes; the "
                "penultimate-write heuristic needs at least 2")
        seqno, offset, size = writes[-2]
        return MetadataWriteInfo(write_index=seqno, file_offset=offset,
                                 size=size), golden

    # -- one case ---------------------------------------------------------------

    def run_case(self, info: MetadataWriteInfo, golden: GoldenRecord,
                 byte_offset: int, bit: int, run_index: int) -> RunRecord:
        fs = self.fs_factory()
        hook = _ByteCorruptionHook(info.write_index, byte_offset, bit)
        fs.interposer.add_hook("ffis_write", hook)
        record = RunRecord(run_index=run_index, outcome=Outcome.BENIGN,
                           target_instance=info.write_index,
                           byte_offset=byte_offset, bit_index=bit)
        if self.fieldmap is not None:
            span = self.fieldmap.field_at(info.file_offset + byte_offset)
            record.field_name = span.qualified_name if span else "unmapped"
        try:
            with mount(fs) as mp:
                self.app.execute(mp)
                outcome, detail = self.app.classify(golden, mp)
            record.outcome = outcome
            record.detail = detail
        except FFISError:
            raise
        except Exception as exc:  # noqa: BLE001 - crash taxonomy by design
            record.outcome = Outcome.CRASH
            record.detail = f"{type(exc).__name__}: {exc}"
        if not hook.fired:
            record.detail += " [warning: corruption never applied]"
        return record

    # -- the sweep -----------------------------------------------------------------

    def run(self, byte_stride: int = 1,
            progress: Optional[Callable[[int, int], None]] = None) -> MetadataCampaignResult:
        """Sweep the metadata bytes (every ``byte_stride``-th byte).

        ``random-bit`` flips one seed-derived bit per byte (one case per
        byte, the paper's case count); ``all-bits`` runs all 8 bits.
        """
        start = time.perf_counter()
        info, golden = self.locate_metadata_write()
        result = MetadataCampaignResult(app_name=self.app.name, mode=self.mode,
                                        metadata=info, fieldmap=self.fieldmap)
        offsets = range(0, info.size, byte_stride)
        total = len(offsets) * (8 if self.mode == "all-bits" else 1)
        stream = RngStream(self.seed, "metadata", self.app.name)
        done = 0
        for byte_offset in offsets:
            if self.mode == "all-bits":
                bits = range(8)
            else:
                bits = [int(stream.child(byte_offset).generator().integers(0, 8))]
            for bit in bits:
                record = self.run_case(info, golden, byte_offset, bit, done)
                result.records.append(record)
                done += 1
                if progress is not None:
                    progress(done, total)
        result.elapsed_seconds = time.perf_counter() - start
        return result
