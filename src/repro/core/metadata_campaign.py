"""Byte-by-byte HDF5-metadata fault injection (paper Sec. IV-D).

The paper keys on how the HDF5 library creates a file: raw data writes
first, then one packed metadata write (the **penultimate** ``fwrite``),
then the close/unlock.  The campaign:

1. traces a fault-free run to find the penultimate ``ffis_write`` and its
   buffer extent,
2. for every byte offset in that buffer (from the write's file offset to
   the end of the buffer), runs the application with exactly that byte
   corrupted (one bit flipped, or every bit in ``all-bits`` mode),
3. classifies each run and annotates it with the metadata field owning
   the byte (via the writer's :class:`FieldMap`), reproducing Table III
   and the per-field symptom analysis of Table IV.

Like :class:`repro.core.campaign.Campaign`, this is a *planner* over the
campaign engine: the byte/bit sweep becomes a declarative spec list, so
the exhaustive ~2,500-run Table III sweep parallelizes across worker
processes and checkpoints to a resumable JSONL file.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.base import GoldenRecord, HpcApplication
from repro.core.engine import (
    ExecutionContext,
    ProfileGoldenCache,
    RunPlan,
    RunSpec,
    SweepCell,
    execute_plan,
    execute_run_spec,
    golden_digest,
)
from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.errors import FFISError
from repro.fusefs.interposer import PrimitiveCall
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.mhdf5.fieldmap import FieldMap
from repro.util.bitops import flip_bit
from repro.util.rngstream import RngStream

FsFactory = Callable[[], FFISFileSystem]


@dataclass(frozen=True)
class MetadataWriteInfo:
    """Location of the metadata blob write in the dynamic write sequence."""

    write_index: int      # dynamic seqno of the penultimate ffis_write
    file_offset: int
    size: int


class _ByteCorruptionHook:
    """Flips one bit of one byte of one specific write."""

    def __init__(self, write_index: int, byte_offset: int, bit: int) -> None:
        self.write_index = write_index
        self.byte_offset = byte_offset
        self.bit = bit
        self.fired = False
        self.note = ""

    def __call__(self, call: PrimitiveCall) -> None:
        if call.primitive != "ffis_write" or call.seqno != self.write_index:
            return None
        buf = bytes(call.args["buf"])
        if self.byte_offset >= len(buf):
            return None
        self.fired = True
        call.args["buf"] = flip_bit(buf, 8 * self.byte_offset + self.bit)
        return None


class ByteCorruptionContext(ExecutionContext):
    """Arms the single-byte corruption named by the spec."""

    not_fired_note = "[warning: corruption never applied]"

    def __init__(self, app: HpcApplication, golden: GoldenRecord,
                 write_index: int,
                 fs_factory: FsFactory = FFISFileSystem) -> None:
        super().__init__(app, golden, fs_factory)
        self.write_index = write_index

    def arm(self, fs: FFISFileSystem, spec: RunSpec) -> _ByteCorruptionHook:
        hook = _ByteCorruptionHook(self.write_index, spec.byte_offset,
                                   spec.bit_index)
        fs.interposer.add_hook("ffis_write", hook)
        return hook

    def replay_constraint(self, spec: RunSpec):
        from repro.core.engine.replay import ReplayConstraint

        return ReplayConstraint(primitive="ffis_write",
                                points=(self.write_index,))


@dataclass
class MetadataCampaignResult:
    app_name: str
    mode: str
    records: List[RunRecord] = field(default_factory=list)
    metadata: Optional[MetadataWriteInfo] = None
    fieldmap: Optional[FieldMap] = None
    elapsed_seconds: float = 0.0

    @property
    def tally(self) -> OutcomeTally:
        return OutcomeTally.from_records(self.records)

    def summary(self) -> str:
        return (f"{self.app_name}/metadata[{self.mode}]: {self.tally} "
                f"({len(self.records)} runs)")

    def fields_by_outcome(self) -> Dict[Outcome, List[str]]:
        """Distinct field names observed per outcome, in frequency order
        (Table III's 'Example Metadata Fields' column)."""
        buckets: Dict[Outcome, Dict[str, int]] = {o: {} for o in Outcome}
        for record in self.records:
            name = record.field_name or "?"
            counts = buckets[record.outcome]
            counts[name] = counts.get(name, 0) + 1
        return {o: [name for name, _ in
                    sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]
                for o, counts in buckets.items()}

    def records_for_field(self, substring: str) -> List[RunRecord]:
        return [r for r in self.records
                if r.field_name and substring in r.field_name]


class MetadataCampaign:
    """Exhaustive per-byte corruption of an app's HDF5 metadata write."""

    def __init__(self, app: HpcApplication, fieldmap: Optional[FieldMap] = None,
                 fs_factory: FsFactory = FFISFileSystem, seed: int = 0,
                 mode: str = "random-bit", workers: int = 1) -> None:
        if mode not in ("random-bit", "all-bits", "targeted"):
            raise FFISError(f"unknown metadata campaign mode {mode!r}")
        if workers < 1:
            raise FFISError(f"workers must be >= 1, got {workers}")
        self.app = app
        self.fieldmap = fieldmap
        self.fs_factory = fs_factory
        self.seed = seed
        self.mode = mode
        self.workers = workers

    # -- discovery ---------------------------------------------------------------

    def locate_metadata_write(self) -> Tuple[MetadataWriteInfo, GoldenRecord]:
        """Trace a fault-free run and identify the penultimate write."""
        fs = self.fs_factory()
        writes: List[Tuple[int, int, int]] = []   # (seqno, offset, size)

        def tracer(call: PrimitiveCall) -> None:
            writes.append((call.seqno, call.args["offset"], call.args["size"]))
            return None

        fs.interposer.add_hook("ffis_write", tracer)
        with mount(fs) as mp:
            golden = self.app.capture_golden(mp)
        if len(writes) < 2:
            raise FFISError(
                f"{self.app.name} performed {len(writes)} writes; the "
                "penultimate-write heuristic needs at least 2")
        seqno, offset, size = writes[-2]
        return MetadataWriteInfo(write_index=seqno, file_offset=offset,
                                 size=size), golden

    # -- one case ---------------------------------------------------------------

    def _spec(self, info: MetadataWriteInfo, byte_offset: int, bit: int,
              run_index: int) -> RunSpec:
        field_name: Optional[str] = None
        if self.fieldmap is not None:
            span = self.fieldmap.field_at(info.file_offset + byte_offset)
            field_name = span.qualified_name if span else "unmapped"
        return RunSpec(run_index=run_index, target_instance=info.write_index,
                       byte_offset=byte_offset, bit_index=bit,
                       field_name=field_name)

    def run_case(self, info: MetadataWriteInfo, golden: GoldenRecord,
                 byte_offset: int, bit: int, run_index: int) -> RunRecord:
        context = ByteCorruptionContext(self.app, golden, info.write_index,
                                        self.fs_factory)
        return execute_run_spec(
            context, self._spec(info, byte_offset, bit, run_index))

    # -- planning ---------------------------------------------------------------

    def plan(self, byte_stride: int = 1,
             located: Optional[Tuple[MetadataWriteInfo, GoldenRecord]] = None,
             ) -> RunPlan:
        """The sweep as a declarative spec list (every ``byte_stride``-th
        byte; one seed-derived bit per byte in ``random-bit`` mode, all 8
        in ``all-bits``)."""
        if self.mode == "targeted":
            raise FFISError(
                "a targeted campaign names its own (field, byte, bit) "
                "sites; plan it with plan_targets, not a byte sweep")
        info, golden = located if located is not None \
            else self.locate_metadata_write()
        stream = RngStream(self.seed, "metadata", self.app.name)
        specs: List[RunSpec] = []
        for byte_offset in range(0, info.size, byte_stride):
            if self.mode == "all-bits":
                bits = range(8)
            else:
                bits = [int(stream.child(byte_offset).generator()
                            .integers(0, 8))]
            for bit in bits:
                specs.append(self._spec(info, byte_offset, bit, len(specs)))
        context = ByteCorruptionContext(self.app, golden, info.write_index,
                                        self.fs_factory)
        return RunPlan(context=context, specs=tuple(specs))

    def plan_targets(self, targets,
                     located: Optional[Tuple[MetadataWriteInfo, GoldenRecord]] = None,
                     ) -> RunPlan:
        """Targeted per-field corruption (Table IV's study shape): one
        spec per ``(field-substring, byte-in-field, bit)`` triplet,
        resolved against the writer's field map."""
        if self.fieldmap is None:
            raise FFISError("targeted metadata planning needs a field map")
        info, golden = located if located is not None \
            else self.locate_metadata_write()
        specs: List[RunSpec] = []
        for substring, byte_in_field, bit in targets:
            spans = [s for s in self.fieldmap if substring in s.name]
            if not spans:
                raise FFISError(f"field {substring!r} not found in field map")
            byte_offset = spans[0].start + byte_in_field - info.file_offset
            specs.append(self._spec(info, byte_offset, bit, len(specs)))
        context = ByteCorruptionContext(self.app, golden, info.write_index,
                                        self.fs_factory)
        return RunPlan(context=context, specs=tuple(specs))

    def targeted_campaign_id(self, targets, golden: GoldenRecord) -> str:
        """Checkpoint identity of a targeted per-field plan (run index
        *i* names a different field under a different target list)."""
        stamp = ",".join(f"{name}+{byte}:{bit}"
                         for name, byte, bit in targets)
        return (f"{self.app.name}/metadata[targeted]"
                f"/bits={stamp}/seed={self.seed}"
                f"/golden={golden_digest(golden)}")

    def campaign_id(self, byte_stride: int, golden: GoldenRecord) -> str:
        """Identity stamped on checkpoint lines; includes the stride
        (run index *i* names a different byte under a different stride)
        and the golden-output digest (the app name can't distinguish two
        differently-configured instances)."""
        return (f"{self.app.name}/metadata[{self.mode}]"
                f"/stride={byte_stride}/seed={self.seed}"
                f"/golden={golden_digest(golden)}")

    def plan_cell(self, key: str, cache: ProfileGoldenCache,
                  byte_stride: int = 1) -> SweepCell:
        """This sweep as one cell of a fused multi-campaign sweep.

        The metadata-write trace (which doubles as the golden capture)
        comes from the sweep's shared cache, so many cells over the
        same application -- different modes or strides, or alongside
        instance-targeted campaign cells -- trace it exactly once.
        """
        info, golden = cache.locate(self.app, self.fs_factory,
                                    self.locate_metadata_write)
        plan = self.plan(byte_stride, located=(info, golden))
        return SweepCell(key=key, plan=plan,
                         campaign_id=self.campaign_id(byte_stride, golden))

    # -- the sweep -----------------------------------------------------------------

    def run(self, byte_stride: int = 1,
            progress: Optional[Callable[[int, int], None]] = None,
            workers: Optional[int] = None,
            results_path: Optional[str] = None,
            resume: bool = False,
            located: Optional[Tuple[MetadataWriteInfo, GoldenRecord]] = None,
            ) -> MetadataCampaignResult:
        """Sweep the metadata bytes (every ``byte_stride``-th byte).

        ``random-bit`` flips one seed-derived bit per byte (one case per
        byte, the paper's case count); ``all-bits`` runs all 8 bits.
        Pass ``located`` to reuse an earlier :meth:`locate_metadata_write`
        (e.g. after harvesting the writer's field map from that run)
        instead of tracing the application again.
        """
        # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
        start = time.perf_counter()
        info, golden = located if located is not None \
            else self.locate_metadata_write()
        plan = self.plan(byte_stride, located=(info, golden))
        records = execute_plan(
            plan,
            workers=self.workers if workers is None else workers,
            results_path=results_path,
            resume=resume,
            campaign_id=self.campaign_id(byte_stride, golden),
            progress=progress)
        result = MetadataCampaignResult(app_name=self.app.name, mode=self.mode,
                                        records=records,
                                        metadata=info, fieldmap=self.fieldmap)
        # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
        result.elapsed_seconds = time.perf_counter() - start
        return result
