"""Streaming result sinks: tally, JSONL persistence, checkpoint/resume.

Records leave the executor one at a time; sinks consume them as a
stream so a million-run campaign never needs its records resident to be
tabulated or persisted.  The JSONL schema (one record per line, schema
version stamped on every line) is the stable on-disk contract: a
checkpointed campaign resumes by reading the completed run indices back
out of the file and executing only the remainder.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.errors import FFISError

#: Bump when a RunRecord field changes meaning; readers reject newer
#: schemas instead of misinterpreting them.  v1 is the single-fault
#: schema; v2 adds the multi-fault ``scenario``/``instances`` stamp.
SCHEMA_VERSION = 2

_RECORD_KEYS = ("v", "run_index", "outcome", "target_instance", "phase",
                "detail", "byte_offset", "bit_index", "field_name",
                "fault_fired", "instances", "scenario")


def record_to_json(record: RunRecord) -> Dict[str, Any]:
    """The stable JSONL representation of one run record.

    Each line is stamped with the *minimal* schema version able to
    represent it: legacy single-fault records keep the exact v1 layout
    (byte-identical to pre-scenario checkpoints, which is what lets the
    golden-fixture compatibility tests compare whole files), and only
    scenario-stamped records carry the v2 keys.
    """
    raw = {
        "v": 1,
        "run_index": record.run_index,
        "outcome": record.outcome.value,
        "target_instance": record.target_instance,
        "phase": record.phase,
        "detail": record.detail,
        "byte_offset": record.byte_offset,
        "bit_index": record.bit_index,
        "field_name": record.field_name,
        "fault_fired": record.fault_fired,
    }
    if record.scenario is not None or record.instances is not None:
        raw["v"] = 2
        raw["scenario"] = record.scenario
        raw["instances"] = (None if record.instances is None
                            else list(record.instances))
    return raw


def format_stamped_line(record: RunRecord,
                        campaign_id: Optional[str]) -> str:
    """The canonical JSONL line for one (record, campaign stamp) pair.

    Every writer -- the streaming sink, the distributed workers'
    segment files, the shard merge publisher -- formats lines through
    this one function, which is what makes "merged output is
    byte-identical to serial output" a property of construction rather
    than of luck.
    """
    raw = record_to_json(record)
    if campaign_id is not None:
        raw["campaign"] = campaign_id
    return json.dumps(raw, sort_keys=True) + "\n"


def record_from_json(raw: Dict[str, Any]) -> RunRecord:
    version = raw.get("v", SCHEMA_VERSION)
    if version > SCHEMA_VERSION:
        raise FFISError(
            f"results file uses schema v{version}; this build reads up to "
            f"v{SCHEMA_VERSION}")
    instances = raw.get("instances")
    return RunRecord(
        run_index=int(raw["run_index"]),
        outcome=Outcome(raw["outcome"]),
        target_instance=int(raw.get("target_instance", -1)),
        phase=raw.get("phase"),
        detail=raw.get("detail", ""),
        byte_offset=raw.get("byte_offset"),
        bit_index=raw.get("bit_index"),
        field_name=raw.get("field_name"),
        fault_fired=bool(raw.get("fault_fired", True)),
        instances=None if instances is None
        else tuple(int(i) for i in instances),
        scenario=raw.get("scenario"),
    )


def _iter_stamped_records(path: str) -> Iterator[Tuple[int, Optional[str], RunRecord]]:
    """Yield ``(lineno, campaign_stamp, record)`` for every results line.

    The file is streamed line by line -- this is the module's O(1)-in-
    file-size contract, and what keeps million-run resumes (and shard
    merges) from loading a whole checkpoint into memory at once.

    A truncated final line is dropped only when the file lacks a
    trailing newline -- that is the one case where the writer was
    provably killed mid-``emit``.  Iterating the file in binary mode
    makes that rule local: every line except possibly the last carries
    its own ``\\n``, so an unterminated line *is* the final line.  A
    final line that is newline-terminated was fully written, so failing
    to decode it means the checkpoint is genuinely corrupt: that
    raises, like corruption anywhere else, instead of silently
    shrinking a resumed campaign.
    """
    with open(path, "rb") as f:
        for lineno, raw_line in enumerate(f):
            terminated = raw_line.endswith(b"\n")
            if not raw_line.strip():
                continue
            try:
                raw = json.loads(raw_line.decode("utf-8"))
                record = record_from_json(raw)
            except (json.JSONDecodeError, KeyError, ValueError,
                    UnicodeDecodeError) as exc:
                if not terminated:
                    break  # partial final write from a killed campaign
                raise FFISError(
                    f"{path}:{lineno + 1}: undecodable results line: {exc}"
                ) from exc
            yield lineno, raw.get("campaign"), record


def iter_stamped_records(path: str) -> Iterator[Tuple[int, Optional[str], RunRecord]]:
    """Public streaming reader over a stamped JSONL results file.

    Yields ``(lineno, campaign_stamp, record)`` without ever holding
    more than one line in memory; the building block the distributed
    shard merger and both ``load_records`` variants share.
    """
    return _iter_stamped_records(path)


def load_records(path: str, campaign_id: Optional[str] = None) -> List[RunRecord]:
    """Read a JSONL results file back into records.

    An unterminated final line (the run in flight when a campaign was
    killed) is silently dropped; corruption anywhere else is an error.
    When *campaign_id* is given, any line stamped with a *different*
    campaign identity is rejected -- resuming run 17 of a BF campaign
    from a DW checkpoint would silently merge unrelated science.
    Unstamped lines (written by bare sinks) are accepted as-is.
    """
    records: List[RunRecord] = []
    for lineno, stamped, record in _iter_stamped_records(path):
        if campaign_id is not None and stamped is not None \
                and stamped != campaign_id:
            raise FFISError(
                f"{path}:{lineno + 1}: checkpoint belongs to campaign "
                f"{stamped!r}, not {campaign_id!r}; refusing to merge "
                "unrelated results (use a different --out file)")
        records.append(record)
    return records


def load_records_by_campaign(path: str) -> Dict[Optional[str], List[RunRecord]]:
    """Records of a multiplexed sweep checkpoint, grouped by their
    per-line campaign stamp (``None`` groups unstamped legacy lines)."""
    groups: Dict[Optional[str], List[RunRecord]] = {}
    for _, stamped, record in _iter_stamped_records(path):
        groups.setdefault(stamped, []).append(record)
    return groups


def merge_shard_records(
    paths: Sequence[str],
) -> Tuple[Dict[Optional[str], Dict[int, RunRecord]], int]:
    """Merge per-worker shard checkpoints, deduplicating re-executions.

    A lease re-assigned after a worker died mid-range is re-executed
    whole, so two shards can legitimately both carry the same
    ``(campaign stamp, run index)`` pair; runs are deterministic in
    their spec, so the copies are identical and the *first* one (in
    sorted shard order, for stable merges) is kept.  Returns the merged
    ``{stamp: {run_index: record}}`` groups plus the number of
    duplicate lines dropped.  Each shard is streamed line by line; a
    shard file that was never created (its worker claimed no lease) is
    skipped.
    """
    groups: Dict[Optional[str], Dict[int, RunRecord]] = {}
    duplicates = 0
    for path in sorted(paths):
        if not os.path.exists(path):
            continue
        for _, stamped, record in _iter_stamped_records(path):
            cell = groups.setdefault(stamped, {})
            if record.run_index in cell:
                duplicates += 1
            else:
                cell[record.run_index] = record
    return groups, duplicates


def completed_indices(path: str) -> Set[int]:
    """Run indices already present in a results file."""
    return {record.run_index for record in load_records(path)}


def _trim_partial_tail(path: str) -> None:
    """Drop an unterminated final line before appending to a checkpoint.

    A campaign killed mid-``emit`` leaves a partial record with no
    trailing newline; appending straight after it would weld two records
    onto one undecodable line and poison every later resume.  The
    partial record is the run that was in flight -- re-executing it is
    exactly what resume does anyway.

    The scan works backwards from the end of the file in bounded
    chunks, so the cost is O(partial line), not O(checkpoint) -- part
    of the module's contract that resuming a million-run campaign never
    loads its checkpoint into memory.
    """
    try:
        f = open(path, "rb+")
    except FileNotFoundError:
        return
    with f:
        pos = f.seek(0, os.SEEK_END)
        if pos == 0:
            return
        f.seek(pos - 1)
        if f.read(1) == b"\n":
            return
        chunk = 4096
        while pos > 0:
            step = min(chunk, pos)
            pos -= step
            f.seek(pos)
            data = f.read(step)
            cut = data.rfind(b"\n")
            if cut != -1:
                f.truncate(pos + cut + 1)
                return
        f.truncate(0)


class ResultSink(ABC):
    """Consumer of the executor's record stream."""

    @abstractmethod
    def emit(self, record: RunRecord) -> None:
        """Consume one completed record."""

    def close(self) -> None:
        """Flush/release resources; called exactly once by the engine."""


class TallySink(ResultSink):
    """Streaming outcome tally -- statistics without retaining records."""

    def __init__(self) -> None:
        self.tally = OutcomeTally()

    def emit(self, record: RunRecord) -> None:
        self.tally.add_record(record)


class JsonlSink(ResultSink):
    """Appends each record to a JSONL file the moment it completes.

    Every line is flushed immediately: the file is the campaign's
    checkpoint, so durability per record matters more than throughput
    (the application runs dwarf the write cost).
    """

    def __init__(self, path: str, append: bool = False,
                 campaign_id: Optional[str] = None) -> None:
        self.path = path
        self.campaign_id = campaign_id
        if append:
            _trim_partial_tail(path)
        self._f = open(path, "a" if append else "w", encoding="utf-8")

    def emit(self, record: RunRecord) -> None:
        self.emit_stamped(record, self.campaign_id)

    def emit_stamped(self, record: RunRecord,
                     campaign_id: Optional[str]) -> None:
        """Append one record under an explicit per-record stamp.

        This is the multiplexing primitive: a fused sweep writes every
        cell's records to one file, each line stamped with its own
        campaign identity, so resume can split the stream back apart.
        """
        self._f.write(format_stamped_line(record, campaign_id))
        self._f.flush()

    def close(self) -> None:
        if not self._f.closed:
            self._f.close()
