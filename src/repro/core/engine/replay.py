"""Prefix-replay execution: restore golden state, run only what a fault
can actually change.

By design (requirement R1 transparency plus by-name RNG substreams),
every faulty run is byte-identical to the golden run up to the instant
its first injection point fires -- yet the classic engine re-executes
the whole deterministic application from an empty file system for every
run.  This module exploits the equivalence in both directions:

* **Prefix restore** -- the golden capture snapshots the file system at
  every step boundary (:class:`repro.apps.base.ReplayImage`); a run is
  *binned* to the last boundary at or before its first injection point
  and starts there via :meth:`FFISFileSystem.restore` instead of
  executing the prefix.

* **Suffix fast-forward** -- once every injection point is in the past,
  a pending step whose golden-observed inputs (and write targets) are
  bit-identical to the golden boundary state *must* reproduce the
  golden writes; the engine splices the step's golden delta onto the
  live file system (copy-on-write, O(files touched)) instead of
  re-executing it.  Fault-point awareness is exactly this check: a QMC
  fault confined to ``He.s000.scalar.dat`` never re-runs the DMC
  projection, while one that corrupted the walker file does.

Safety is conservative and checked per run, per boundary:

* the dynamic primitive counters (plus inode/fd allocation cursors)
  must equal the golden boundary's -- any control-flow divergence
  (an absorbed ``FormatError``, a skipped tile) fails this and the run
  continues live;
* the carry dict must equal the golden boundary carry;
* scenarios declare their own :class:`ReplayConstraint`; a scenario
  without one (or an application without steps, a backend without
  snapshots, ``--no-replay``) falls back to cold execution.

Logical inode timestamps are the one deliberate exception: a suppressed
write skips its ``mtime`` tick, so a spliced run's timestamps may
differ from a cold run's.  Nothing in the experiment stack observes
them (classification reads bytes), and the record streams are asserted
byte-identical by the determinism guard in CI.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.apps.base import ReplayImage, StepTrace
from repro.fusefs.vfs import FFISFileSystem


@dataclasses.dataclass(frozen=True)
class ReplayConstraint:
    """What a scenario requires of a replayed execution.

    ``points`` are the dynamic instances of ``primitive`` that must
    execute live (the injection hook fires on exact sequence numbers);
    ``notify_phase`` names a phase whose end notification must be
    emitted (at-rest decay listens for it).  An empty constraint means
    the run is fault-free until the engine's post-execute seam -- it
    may be restored from the final boundary outright.
    """

    primitive: Optional[str] = None
    points: Tuple[int, ...] = ()
    notify_phase: Optional[str] = None


def choose_boundary(image: ReplayImage, constraint: ReplayConstraint) -> int:
    """The latest golden boundary a run under *constraint* may start at.

    Binning rule: the restored counters must not have passed the first
    injection point (the hook must see it dispatch), and the step that
    ends ``notify_phase`` must still be ahead (its notification must
    fire).  0 means a cold start.
    """
    hi = len(image.steps)
    if constraint.notify_phase is not None:
        for i, trace in enumerate(image.steps):
            if trace.ends_phase and trace.phase == constraint.notify_phase:
                hi = min(hi, i)
                break
    if constraint.points:
        first = min(constraint.points)
        primitive = constraint.primitive
        while hi > 0 and image.boundaries[hi].counters.get(primitive, 0) > first:
            hi -= 1
    return hi


def replay_boundary(context, spec) -> int:
    """The boundary index *spec* would restore from, or ``-1`` for cold.

    A pure scheduling hint: it mirrors :func:`try_replay_execute`'s
    gating without mounting a file system (planners call this per spec,
    and instantiating backends here would be charged as executions by
    instrumented factories).  The one gate it cannot check --
    ``fs.supports_snapshots`` -- only turns every run cold, where the
    ordering is harmless.
    """
    if not context.replay_enabled:
        return -1
    image = getattr(context.golden, "replay", None)
    if image is None:
        return -1
    steps = context.app.steps()
    if steps is None or len(steps) != len(image.steps):
        return -1
    constraint = context.replay_constraint(spec)
    if constraint is None:
        return -1
    if constraint.points and constraint.primitive is None:
        return -1
    return choose_boundary(image, constraint)


def _values_equal(a, b) -> bool:
    """Structural equality that tolerates numpy arrays and dataclasses."""
    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return (a.shape == b.shape and a.dtype == b.dtype
                and bool(np.array_equal(a, b)))
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        if a.keys() != b.keys():
            return False
        return all(_values_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(map(_values_equal, a, b))
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        return all(_values_equal(getattr(a, f.name), getattr(b, f.name))
                   for f in dataclasses.fields(a))
    try:
        return bool(a == b)
    except Exception:  # noqa: BLE001 - unknown carry types stay conservative
        return False


class _Splicer:
    """Per-run fast-forward state: decides and applies step splices."""

    def __init__(self, fs: FFISFileSystem, image: ReplayImage,
                 constraint: ReplayConstraint,
                 carry: Dict[str, object]) -> None:
        self.fs = fs
        self.image = image
        self.constraint = constraint
        self.carry = carry
        #: Steps this run skipped via golden-delta application.
        self.spliced = 0

    # -- guards ---------------------------------------------------------------

    def _exhausted(self) -> bool:
        """No injection point can fire in any step we might skip."""
        points = self.constraint.points
        if not points:
            return True
        count = self.fs.interposer.count(self.constraint.primitive)
        return max(points) < count

    def _cursors_match(self, j: int) -> bool:
        """Live dynamic counters and allocation cursors equal golden's.

        This is the control-flow-divergence guard: a faulty prefix that
        absorbed an error (fewer reads, a skipped write, a suppressed
        create) cannot line up with the golden boundary and stays live.
        """
        boundary = self.image.boundaries[j]
        return (self.fs.interposer.counters_snapshot() == dict(boundary.counters)
                and self.fs.inodes.next_ino == boundary.next_ino
                and self.fs.next_fd == boundary.next_fd)

    def _carry_matches(self, j: int) -> bool:
        return _values_equal(self.carry, dict(self.image.carries[j]))

    def _state_clean(self, j: int, trace: StepTrace) -> bool:
        """Every inode the step observes or writes is bit-identical to
        the golden boundary state (timestamps excluded)."""
        boundary = self.image.boundaries[j]
        backend = self.fs.backend
        # sorted(): the guard's probe order must not depend on set
        # hashing -- any divergence path (first mismatching inode wins)
        # has to be the same inode on every interpreter.
        for ino in sorted(set(trace.observed) | set(trace.written)):
            golden_ext = boundary.extents.get(ino)
            live_ext = backend.extent_object(ino)
            if (golden_ext is None) != (live_ext is None):
                return False
            if golden_ext is not None and live_ext is not golden_ext \
                    and live_ext != golden_ext:
                return False
            golden_node = boundary.inodes.get(ino)
            live_node = self.fs.inodes.get_or_none(ino)
            if (golden_node is None) != (live_node is None):
                return False
            if golden_node is not None:
                kind, mode, nlink, size, rdev, _, _, entries = golden_node
                if (live_node.kind, live_node.mode, live_node.nlink,
                        live_node.size, live_node.rdev,
                        tuple(sorted(live_node.entries.items()))) != \
                        (kind, mode, nlink, size, rdev, entries):
                    return False
        return True

    # -- application ----------------------------------------------------------

    def _apply(self, j: int, trace: StepTrace) -> None:
        """Overlay step *j*'s golden delta onto the live file system."""
        after = self.image.boundaries[j + 1]
        backend = self.fs.backend
        for ino in trace.removed:
            backend.delete(ino)
            self.fs.inodes.drop(ino)
        for ino in trace.written:
            ext = after.extents.get(ino)
            if ext is not None:
                backend.adopt_extent(ino, ext)
            else:
                backend.delete(ino)
            image = after.inodes.get(ino)
            if image is not None:
                self.fs.inodes.set_image(ino, image)
        self.fs.interposer.set_counters(dict(after.counters))
        self.fs.inodes.set_scalars(next_ino=after.next_ino, clock=after.clock)
        self.fs.set_next_fd(after.next_fd)
        self.carry.clear()
        self.carry.update(self.image.carries[j + 1])
        self.spliced += 1
        if trace.ends_phase:
            # The skipped step would have ended its phase; listeners
            # (at-rest decay) fire against the spliced state, which is
            # exactly the state a live execution would have produced.
            self.fs.interposer.notify_phase_end(trace.phase)

    # -- the driver callback --------------------------------------------------

    def next_step(self, i: int) -> int:
        j = i + 1
        n = len(self.image.steps)
        while j < n:
            if not self._exhausted():
                break
            trace = self.image.steps[j]
            if not self._cursors_match(j):
                break
            if not self._carry_matches(j):
                break
            if not self._state_clean(j, trace):
                break
            self._apply(j, trace)
            j += 1
        return j


def try_replay_execute(context, spec, fs: FFISFileSystem, mp) -> bool:
    """Execute *spec* with prefix restore + suffix fast-forward.

    Returns ``False`` (without touching any state) when the run cannot
    be replayed safely -- no step protocol, no snapshot support, no
    replay image on the golden record, no scenario constraint, or
    replay disabled -- in which case the caller runs cold.
    """
    if not context.replay_enabled:
        return False
    image = getattr(context.golden, "replay", None)
    if image is None:
        return False
    app = context.app
    steps = app.steps()
    if steps is None or len(steps) != len(image.steps):
        return False
    if not fs.supports_snapshots:
        return False
    constraint = context.replay_constraint(spec)
    if constraint is None:
        return False
    if constraint.points and constraint.primitive is None:
        return False
    start = choose_boundary(image, constraint)
    carry: Dict[str, object] = {}
    if start > 0:
        fs.restore(image.boundaries[start])
        carry.update(image.carries[start])
    splicer = _Splicer(fs, image, constraint, carry)
    app.execute_from(mp, carry, start=start, next_step=splicer.next_step)
    return True
