"""Pluggable executors: how a run plan's specs actually get executed.

The :class:`Executor` ABC is the swappable backend seam (one plan, many
execution strategies).  :class:`SerialExecutor` is the reference
implementation -- a plain in-process loop.  :class:`ParallelExecutor`
fans the same specs out over a :class:`concurrent.futures.\
ProcessPoolExecutor` using a **capture-then-fork** discipline: the
parent finishes all fault-free work (profiles, golden captures, replay
images) *before* the pool exists, publishes the execution payload --
contexts plus the full materialized work list -- in a process-global
registry, and spawns the workers with the ``fork`` start method so they
inherit it through copy-on-write page sharing.  Task submissions are
then just ``(start, stop)`` index ranges into the inherited work list:
per-task IPC cost is a few dozen bytes regardless of how large the
golden ``ReplayImage``\\ s are.

Where ``fork`` is unavailable (spawn-only platforms), the payload ships
once per worker through the pool initializer -- amortized O(workers),
not O(chunks) -- and the range-based submissions stay identical.
``map`` always yields records in plan order, so every backend is
record-for-record interchangeable.

Both backends also speak the fused-sweep protocol: ``map_tagged`` runs
``(cell key, spec)`` pairs against a *dictionary* of execution contexts,
which is how many campaigns share one worker pool (one pool
initialization, interleaved dispatch) instead of running back to back.
"""

from __future__ import annotations

import itertools
import multiprocessing
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.outcomes import RunRecord
from repro.errors import ConfigError

#: Parent-side registry of published payloads, keyed by a small integer
#: token.  A pool created with the ``fork`` start method inherits this
#: module global through the fork's copy-on-write address space, so the
#: worker initializer receives only the token and resolves the payload
#: -- contexts, golden records, replay images, and the materialized work
#: list -- without a single pickle byte crossing the pipe.
_FORK_REGISTRY: dict = {}
_fork_tokens = itertools.count(1)

#: Worker-side state installed by :func:`_init_worker`:
#: ``(contexts, items, tagged)``.
_WORKER_STATE = None


def _init_worker(token, shipped) -> None:
    """Install the worker's payload.

    ``fork`` pools pass only *token* (the payload is inherited via
    :data:`_FORK_REGISTRY`); spawn pools pass the payload itself as
    *shipped*, pickled exactly once per worker by the initializer
    machinery rather than once per task.
    """
    global _WORKER_STATE
    _WORKER_STATE = shipped if shipped is not None else _FORK_REGISTRY[token]


def _run_span(start: int, stop: int) -> list:
    """Execute work items ``[start, stop)`` against the worker state."""
    from repro.core.engine.runner import execute_run_spec

    contexts, items, tagged = _WORKER_STATE
    if tagged:
        return [(key, execute_run_spec(contexts[key], spec))
                for key, spec in items[start:stop]]
    return [execute_run_spec(contexts, spec) for spec in items[start:stop]]


class Executor(ABC):
    """Strategy for executing the specs of a :class:`RunPlan`."""

    @abstractmethod
    def map(self, plan) -> Iterator[RunRecord]:
        """Yield one record per spec, in plan order, as they complete."""

    @abstractmethod
    def map_tagged(self, contexts: Mapping[str, object],
                   items: Iterable[tuple]) -> Iterator[Tuple[str, RunRecord]]:
        """Yield ``(key, record)`` per ``(key, spec)`` item, in item order.

        Each item's spec executes under ``contexts[key]``; one executor
        (and, for the parallel backend, one worker pool) serves every
        cell of a fused sweep.
        """


class SerialExecutor(Executor):
    """The reference backend: execute specs one after another."""

    def map(self, plan) -> Iterator[RunRecord]:
        from repro.core.engine.runner import execute_run_spec

        for spec in plan.specs:
            yield execute_run_spec(plan.context, spec)

    def map_tagged(self, contexts, items) -> Iterator[Tuple[str, RunRecord]]:
        from repro.core.engine.runner import execute_run_spec

        for key, spec in items:
            yield key, execute_run_spec(contexts[key], spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Capture-then-fork process pool for embarrassingly parallel runs.

    The parent must finish golden capture before calling ``map``/
    ``map_tagged`` (planners already guarantee this: a plan carries its
    golden record).  The full payload -- execution contexts plus the
    materialized work list -- is published to :data:`_FORK_REGISTRY`
    before the pool starts:

    * ``fork`` start method (preferred): workers inherit the payload by
      page-sharing; the initializer receives a registry token only.
    * spawn/forkserver: the payload ships through the initializer
      arguments, pickled once per worker (O(workers), not O(chunks)).

    Either way, a task submission is a ``(start, stop)`` index range --
    its pickle size is independent of the golden image size, which is
    what makes prefix-replayed sub-millisecond runs worth distributing.

    Dispatch is **chunked**: ``chunk_size`` specs per future amortize
    queue wakeups and future bookkeeping.  ``chunk_size=None`` adapts to
    the plan: ``max(1, n_specs // (workers * 4))``, so tiny plans spread
    across all workers instead of serializing onto one.  Records stream
    back per chunk and are yielded in plan order, so chunking is
    invisible to every consumer.

    Submission is windowed: at most ``workers * IN_FLIGHT_PER_WORKER``
    chunk futures exist at any moment, keeping resident futures
    O(workers) for arbitrarily long plans.
    """

    #: In-flight futures allowed per worker.  Enough to keep every
    #: worker busy while the parent consumes results; small enough that
    #: resident futures stay O(workers) for arbitrarily long plans.
    IN_FLIGHT_PER_WORKER = 4

    #: Ceiling for the adaptive chunk size: a killed sweep's checkpoint
    #: loses at most the in-flight chunks, so runaway chunk sizes on
    #: huge plans would turn kill/resume into a blunt instrument.
    MAX_ADAPTIVE_CHUNK_SIZE = 64

    def __init__(self, workers: int,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        if start_method is not None and \
                start_method not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                f"start method {start_method!r} not available here "
                f"(have {multiprocessing.get_all_start_methods()})")
        self.workers = workers
        self.chunk_size = chunk_size
        self.start_method = start_method

    def _mp_context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _chunk_for(self, n_items: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, min(self.MAX_ADAPTIVE_CHUNK_SIZE,
                          n_items // (self.workers * 4)))

    def map(self, plan) -> Iterator[RunRecord]:
        if not plan.specs:
            return
        yield from self._stream(plan.context, list(plan.specs), tagged=False)

    def map_tagged(self, contexts, items) -> Iterator[Tuple[str, RunRecord]]:
        yield from self._stream(dict(contexts), list(items), tagged=True)

    def _stream(self, contexts, items, tagged: bool) -> Iterator:
        if not items:
            return
        mp_context = self._mp_context()
        payload = (contexts, items, tagged)
        token = next(_fork_tokens)
        if mp_context.get_start_method() == "fork":
            # Publish before the pool exists: workers fork at first
            # submission and inherit the registry as it stands then.
            _FORK_REGISTRY[token] = payload
            initargs = (token, None)
        else:
            initargs = (None, payload)
        chunk = self._chunk_for(len(items))
        pool = ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=mp_context,
                                   initializer=_init_worker,
                                   initargs=initargs)
        window = self.workers * self.IN_FLIGHT_PER_WORKER
        pending = deque()
        try:
            for start in range(0, len(items), chunk):
                stop = min(start + chunk, len(items))
                pending.append(pool.submit(_run_span, start, stop))
                if len(pending) >= window:
                    yield from pending.popleft().result()
            while pending:
                yield from pending.popleft().result()
        finally:
            # An abandoned iteration (Ctrl-C, sink failure) must not
            # block on -- or silently discard -- the not-yet-started
            # runs: cancel them and return as soon as the in-flight
            # ones finish.  Resume re-executes whatever was cancelled.
            pool.shutdown(wait=False, cancel_futures=True)
            _FORK_REGISTRY.pop(token, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ParallelExecutor(workers={self.workers}, "
                f"chunk_size={self.chunk_size}, "
                f"start_method={self.start_method})")


def make_executor(workers: int,
                  chunk_size: Optional[int] = None) -> Executor:
    """The default backend for a worker count (1 == serial)."""
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return SerialExecutor()
    return ParallelExecutor(workers, chunk_size=chunk_size)
