"""Pluggable executors: how a run plan's specs actually get executed.

The :class:`Executor` ABC is the swappable backend seam (one plan, many
execution strategies).  :class:`SerialExecutor` is the reference
implementation -- a plain in-process loop.  :class:`ParallelExecutor`
fans the same specs out over a :class:`concurrent.futures.\
ProcessPoolExecutor`; the pool is initialized once per worker with the
plan's (picklable) execution context, after which only the tiny specs
travel over the queue.  ``map`` always yields records in plan order, so
the two backends are record-for-record interchangeable.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Iterator

from repro.core.outcomes import RunRecord
from repro.errors import ConfigError

# Set once per pool worker by _init_worker; holds the plan's context so
# work items stay spec-sized instead of shipping the application and
# golden record with every run.
_WORKER_CONTEXT = None


def _init_worker(context) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_in_worker(spec) -> RunRecord:
    from repro.core.engine.runner import execute_run_spec

    return execute_run_spec(_WORKER_CONTEXT, spec)


class Executor(ABC):
    """Strategy for executing the specs of a :class:`RunPlan`."""

    @abstractmethod
    def map(self, plan) -> Iterator[RunRecord]:
        """Yield one record per spec, in plan order, as they complete."""


class SerialExecutor(Executor):
    """The reference backend: execute specs one after another."""

    def map(self, plan) -> Iterator[RunRecord]:
        from repro.core.engine.runner import execute_run_spec

        for spec in plan.specs:
            yield execute_run_spec(plan.context, spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Process-pool backend for embarrassingly parallel campaigns.

    Requires the plan's context (application, golden record, fault
    signature) to be picklable.  ``fork`` is preferred where available
    so the workers inherit the parent's loaded numpy state cheaply;
    determinism does not depend on the start method because every run
    re-derives its generator from the spec's seed.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def _mp_context(self):
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def map(self, plan) -> Iterator[RunRecord]:
        if not plan.specs:
            return
        pool = ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=self._mp_context(),
                                   initializer=_init_worker,
                                   initargs=(plan.context,))
        try:
            futures = [pool.submit(_run_in_worker, spec)
                       for spec in plan.specs]
            for future in futures:
                yield future.result()
        finally:
            # An abandoned iteration (Ctrl-C, sink failure) must not
            # block on -- or silently discard -- the not-yet-started
            # runs: cancel them and return as soon as the in-flight
            # ones finish.  Resume re-executes whatever was cancelled.
            pool.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(workers={self.workers})"


def make_executor(workers: int) -> Executor:
    """The default backend for a worker count (1 == serial)."""
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return SerialExecutor() if workers == 1 else ParallelExecutor(workers)
