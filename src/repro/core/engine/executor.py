"""Pluggable executors: how a run plan's specs actually get executed.

The :class:`Executor` ABC is the swappable backend seam (one plan, many
execution strategies).  :class:`SerialExecutor` is the reference
implementation -- a plain in-process loop.  :class:`ParallelExecutor`
fans the same specs out over a :class:`concurrent.futures.\
ProcessPoolExecutor`; the pool is initialized once per worker with the
plan's (picklable) execution context, after which only the tiny specs
travel over the queue.  ``map`` always yields records in plan order, so
the two backends are record-for-record interchangeable.

Both backends also speak the fused-sweep protocol: ``map_tagged`` runs
``(cell key, spec)`` pairs against a *dictionary* of execution contexts,
which is how many campaigns share one worker pool (one pool
initialization, interleaved dispatch) instead of running back to back.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.outcomes import RunRecord
from repro.errors import ConfigError

# Set once per pool worker by _init_worker; holds the plan's context (or
# a sweep's key -> context mapping) so work items stay spec-sized
# instead of shipping the application and golden record with every run.
_WORKER_CONTEXT = None


def _init_worker(context) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_in_worker(specs) -> list:
    """Execute one chunk of specs against the worker's context."""
    from repro.core.engine.runner import execute_run_spec

    return [execute_run_spec(_WORKER_CONTEXT, spec) for spec in specs]


def _run_tagged_in_worker(items) -> list:
    """Execute one chunk of ``(cell key, spec)`` pairs."""
    from repro.core.engine.runner import execute_run_spec

    return [(key, execute_run_spec(_WORKER_CONTEXT[key], spec))
            for key, spec in items]


class Executor(ABC):
    """Strategy for executing the specs of a :class:`RunPlan`."""

    @abstractmethod
    def map(self, plan) -> Iterator[RunRecord]:
        """Yield one record per spec, in plan order, as they complete."""

    @abstractmethod
    def map_tagged(self, contexts: Mapping[str, object],
                   items: Iterable[tuple]) -> Iterator[Tuple[str, RunRecord]]:
        """Yield ``(key, record)`` per ``(key, spec)`` item, in item order.

        Each item's spec executes under ``contexts[key]``; one executor
        (and, for the parallel backend, one worker pool) serves every
        cell of a fused sweep.
        """


class SerialExecutor(Executor):
    """The reference backend: execute specs one after another."""

    def map(self, plan) -> Iterator[RunRecord]:
        from repro.core.engine.runner import execute_run_spec

        for spec in plan.specs:
            yield execute_run_spec(plan.context, spec)

    def map_tagged(self, contexts, items) -> Iterator[Tuple[str, RunRecord]]:
        from repro.core.engine.runner import execute_run_spec

        for key, spec in items:
            yield key, execute_run_spec(contexts[key], spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Process-pool backend for embarrassingly parallel campaigns.

    Requires the plan's context (application, golden record, fault
    signature) to be picklable.  ``fork`` is preferred where available
    so the workers inherit the parent's loaded numpy state cheaply;
    determinism does not depend on the start method because every run
    re-derives its generator from the spec's seed.

    Dispatch is **chunked**: ``chunk_size`` specs travel per future, so
    the per-task IPC overhead (pickle, queue wakeups, future
    bookkeeping) is amortized over a batch -- prefix-replayed runs are
    often sub-millisecond, where per-spec dispatch would dominate.
    Records stream back per chunk and are yielded in plan order, so
    chunking is invisible to every consumer.

    Submission is windowed: at most ``workers * IN_FLIGHT_PER_WORKER``
    chunk futures exist at any moment, so a million-run plan streams
    through in constant memory instead of materializing O(n) futures
    upfront.
    """

    #: In-flight futures allowed per worker.  Enough to keep every
    #: worker busy while the parent consumes results; small enough that
    #: resident futures stay O(workers) for arbitrarily long plans.
    IN_FLIGHT_PER_WORKER = 4

    #: Specs per future.  Large enough to amortize dispatch overhead,
    #: small enough that a killed sweep's checkpoint loses at most a
    #: few chunks of in-flight work per worker.
    DEFAULT_CHUNK_SIZE = 8

    def __init__(self, workers: int,
                 chunk_size: Optional[int] = None) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        chunk = self.DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size
        if chunk < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk}")
        self.workers = workers
        self.chunk_size = chunk

    def _mp_context(self):
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def map(self, plan) -> Iterator[RunRecord]:
        if not plan.specs:
            return
        yield from self._stream(plan.context, _run_in_worker, plan.specs)

    def map_tagged(self, contexts, items) -> Iterator[Tuple[str, RunRecord]]:
        yield from self._stream(dict(contexts), _run_tagged_in_worker, items)

    def _chunks(self, items) -> Iterator[list]:
        chunk: list = []
        for item in items:
            chunk.append(item)
            if len(chunk) >= self.chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def _stream(self, payload, worker_fn, items) -> Iterator:
        pool = ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=self._mp_context(),
                                   initializer=_init_worker,
                                   initargs=(payload,))
        window = self.workers * self.IN_FLIGHT_PER_WORKER
        pending = deque()
        try:
            for chunk in self._chunks(items):
                pending.append(pool.submit(worker_fn, chunk))
                if len(pending) >= window:
                    yield from pending.popleft().result()
            while pending:
                yield from pending.popleft().result()
        finally:
            # An abandoned iteration (Ctrl-C, sink failure) must not
            # block on -- or silently discard -- the not-yet-started
            # runs: cancel them and return as soon as the in-flight
            # ones finish.  Resume re-executes whatever was cancelled.
            pool.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ParallelExecutor(workers={self.workers}, "
                f"chunk_size={self.chunk_size})")


def make_executor(workers: int) -> Executor:
    """The default backend for a worker count (1 == serial)."""
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return SerialExecutor() if workers == 1 else ParallelExecutor(workers)
