"""Fused multi-campaign sweeps: many cells, one engine execution.

The paper's headline results are *grids* of campaigns -- Fig. 7 alone is
18 cells ({NYX, QMC, MT1..MT4} x {BF, SW, DW}) -- yet neighbouring cells
share almost all of their fault-free work: every cell over the same
application re-profiles the same primitive counts and re-captures the
same golden outputs for bit-identical results.  A :class:`SweepPlan`
fuses many campaign plans into one execution:

* a shared :class:`ProfileGoldenCache` keyed by application identity,
  so each distinct app configuration is profiled and golden-captured
  exactly once per sweep -- the same amortization FFIS applies to its
  one fault-free profile across all injections, lifted to the grid;
* one **multiplexed JSONL checkpoint**: every line carries its cell's
  campaign stamp, so a killed sweep resumes by re-executing only the
  missing ``(cell, run index)`` pairs, and a checkpoint from an
  unrelated sweep is refused rather than merged;
* **interleaved dispatch** of all cells' specs through a single
  executor (and, for ``workers > 1``, a single worker pool) instead of
  one sequential pool per cell.

A single-cell sweep is exactly a classic campaign execution --
:func:`repro.core.engine.runner.execute_plan` is implemented on top of
this module -- so campaign- and sweep-level checkpoints share one
on-disk format and one resume implementation.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.engine.executor import Executor, make_executor
from repro.core.engine.plan import RunPlan, RunSpec
from repro.core.engine.sink import (
    JsonlSink,
    ResultSink,
    load_records_by_campaign,
)
from repro.core.outcomes import RunRecord
from repro.errors import FFISError

Progress = Callable[[int, int], None]


class ProfileGoldenCache:
    """Shared fault-free work across the cells of one sweep.

    Cells are keyed by the *identity* of their application object (and
    file-system factory): two cells planned over the same application
    instance -- e.g. the twelve Montage stage x model cells of Fig. 7 --
    compute the I/O profile, the golden record, and the metadata-write
    location at most once each, however many cells share them.  The
    ``*_runs`` counters report how many fault-free executions the sweep
    actually paid for.

    The cached golden record carries the prefix-replay snapshot set
    (:attr:`repro.apps.base.GoldenRecord.replay`), so all cells over
    one application also share a single step-boundary snapshot capture
    -- the replay engine's restore sources are amortized exactly like
    the fault-free runs themselves.
    """

    def __init__(self) -> None:
        self._profiles: Dict[tuple, Any] = {}
        self._goldens: Dict[tuple, Any] = {}
        self._located: Dict[tuple, Any] = {}
        # Pin keyed objects so id()-based keys stay unique for the
        # cache's lifetime.
        self._pinned: List[Any] = []
        self.profile_runs = 0
        self.golden_runs = 0
        self.locate_runs = 0

    def _key(self, app: Any, fs_factory: Any, *extra: Any) -> tuple:
        self._pinned.append((app, fs_factory))
        return (id(app), id(fs_factory)) + extra

    def profile(self, app: Any, fs_factory: Any, primitive: str,
                compute: Callable[[], Any]) -> Any:
        """The app's fault-free I/O profile for *primitive* (one run)."""
        key = self._key(app, fs_factory, primitive)
        if key not in self._profiles:
            self._profiles[key] = compute()
            self.profile_runs += 1
        return self._profiles[key]

    def derived_profile(self, app: Any, fs_factory: Any, primitive: str,
                        compute: Callable[[], Any]) -> Any:
        """Like :meth:`profile`, but *compute* derives the profile from
        an already-captured golden record instead of executing the
        application -- so a miss costs no fault-free run and the
        ``profile_runs`` counter stays untouched.  A profile primed
        through :meth:`profile` (same key) is still honoured."""
        key = self._key(app, fs_factory, primitive)
        if key not in self._profiles:
            self._profiles[key] = compute()
        return self._profiles[key]

    def golden(self, app: Any, fs_factory: Any,
               compute: Callable[[], Any]) -> Any:
        """The app's golden record (one fault-free run)."""
        key = self._key(app, fs_factory)
        if key not in self._goldens:
            self._goldens[key] = compute()
            self.golden_runs += 1
        return self._goldens[key]

    def locate(self, app: Any, fs_factory: Any,
               compute: Callable[[], Tuple[Any, Any]]) -> Tuple[Any, Any]:
        """The app's ``(metadata write info, golden)`` trace (one run).

        The locate run *is* a golden capture with a tracer attached, so
        its golden also primes :meth:`golden` -- a sweep mixing
        instance-targeted and metadata cells over one app still
        captures that app's golden exactly once.
        """
        key = self._key(app, fs_factory)
        if key not in self._located:
            info, golden = compute()
            self._located[key] = (info, golden)
            self.locate_runs += 1
            self._goldens.setdefault(key, golden)
        return self._located[key]

    def fault_free_runs(self) -> int:
        """Total fault-free application executions this cache paid for."""
        return self.profile_runs + self.golden_runs + self.locate_runs


@dataclass(frozen=True)
class SweepCell:
    """One campaign of a fused sweep: a key, its plan, its identity.

    ``campaign_id`` stamps the cell's checkpoint lines; ``None`` means
    unstamped (legacy bare plans), which is only unambiguous in a
    single-cell sweep.
    """

    key: str
    plan: RunPlan
    campaign_id: Optional[str] = None

    def __len__(self) -> int:
        return len(self.plan)


@dataclass(frozen=True)
class SweepPlan:
    """Many campaign plans fused into one declarative execution."""

    cells: Tuple[SweepCell, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.cells, tuple):
            object.__setattr__(self, "cells", tuple(self.cells))
        if not self.cells:
            raise FFISError("a sweep needs at least one cell")
        keys = [cell.key for cell in self.cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise FFISError(f"duplicate sweep cell keys: {dupes}")
        ids = [cell.campaign_id for cell in self.cells
               if cell.campaign_id is not None]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise FFISError(
                f"two sweep cells share a campaign identity: {dupes}; "
                "their checkpoint lines would be indistinguishable")

    def __len__(self) -> int:
        return sum(len(cell) for cell in self.cells)

    def __iter__(self) -> Iterator[SweepCell]:
        return iter(self.cells)


@dataclass
class SweepResult:
    """Per-cell records of one sweep execution, plus bookkeeping."""

    records: Dict[str, List[RunRecord]] = field(default_factory=dict)
    #: Runs actually executed by this invocation (the rest were resumed
    #: from the checkpoint).
    executed: int = 0
    elapsed_seconds: float = 0.0
    #: How a distributed execution finished: ``None`` for the normal
    #: path (and always for in-process sweeps), else the coordinator's
    #: :class:`~repro.core.engine.dist.coordinator.DegradationReport`
    #: naming each fallback taken and every hole left behind.
    degradation: Optional[Any] = None

    @property
    def total(self) -> int:
        return sum(len(records) for records in self.records.values())


def _interleaved(pending: Sequence[Tuple[str, Sequence[RunSpec]]]
                 ) -> Iterator[Tuple[str, RunSpec]]:
    """Round-robin the cells' pending specs: one spec per live cell per
    round, in cell declaration order.  Every cell makes progress from
    the first scheduling round, so a killed sweep's checkpoint holds a
    usable prefix of *every* cell rather than all of cell one."""
    live = [(key, iter(specs)) for key, specs in pending if specs]
    while live:
        survivors = []
        for key, specs in live:
            spec = next(specs, None)
            if spec is not None:
                yield key, spec
                survivors.append((key, specs))
        live = survivors


#: Boundary sorting happens within consecutive windows of this many
#: specs, not across the whole cell.  Records are *emitted* in plan
#: order, so a full-cell sort would let execution race arbitrarily far
#: ahead of emission: the streaming checkpoint could still be empty
#: thousands of runs into a campaign (everything a kill would lose) and
#: the reorder buffer would grow O(cell).  A window keeps both the
#: emission lag and the buffer O(window) while same-boundary runs still
#: land back to back within it -- sized to the executor's adaptive
#: chunk ceiling so a window maps onto whole pool chunks.
BOUNDARY_SORT_WINDOW = 64


def _boundary_sorted(context, specs: Sequence[RunSpec]) -> List[RunSpec]:
    """Specs reordered for replay locality: runs binning to the same
    golden boundary become consecutive (within a bounded window), so
    the splicer restores the same snapshot back to back (warm extent
    tables, warm page cache) instead of ping-ponging across the
    boundary set.  The sort is stable, so runs sharing a boundary keep
    their plan order."""
    from repro.core.engine.replay import replay_boundary

    specs = list(specs)
    if len(specs) < 2:
        return specs
    out: List[RunSpec] = []
    for start in range(0, len(specs), BOUNDARY_SORT_WINDOW):
        window = specs[start:start + BOUNDARY_SORT_WINDOW]
        out.extend(sorted(window,
                          key=lambda spec: replay_boundary(context, spec)))
    return out


def _assign_existing(plan: SweepPlan, results_path: str
                     ) -> Tuple[Dict[str, List[RunRecord]], bool]:
    """Split a multiplexed checkpoint back into per-cell records.

    Lines stamped with an identity no cell of this sweep owns are
    refused -- resuming would otherwise silently merge unrelated
    science.  Unstamped lines are accepted only when the sweep has a
    single cell (the legacy bare-sink format); in a multi-cell sweep
    they are ambiguous and refused.
    """
    by_id = {cell.campaign_id: cell.key for cell in plan.cells
             if cell.campaign_id is not None}
    sole = plan.cells[0] if len(plan.cells) == 1 else None
    existing: Dict[str, List[RunRecord]] = {cell.key: [] for cell in plan.cells}
    had_records = False
    for stamp, records in load_records_by_campaign(results_path).items():
        had_records = had_records or bool(records)
        if stamp is not None and stamp in by_id:
            key = by_id[stamp]
        elif sole is not None and (stamp is None or sole.campaign_id is None):
            # A single-cell sweep accepts unstamped legacy lines; a
            # bare (unstamped) single-cell plan accepts any stamp, like
            # load_records(path) without an identity.
            key = sole.key
        elif stamp is None:
            raise FFISError(
                f"{results_path}: checkpoint contains unstamped lines, "
                "which cannot be attributed to a cell of a multi-cell "
                "sweep; refusing to merge (use a different --out file)")
        elif sole is not None:
            raise FFISError(
                f"{results_path}: checkpoint belongs to campaign "
                f"{stamp!r}, not {sole.campaign_id!r}; refusing to merge "
                "unrelated results (use a different --out file)")
        else:
            raise FFISError(
                f"{results_path}: checkpoint contains campaign {stamp!r}, "
                "which is not a cell of this sweep; refusing to merge "
                "unrelated results (use a different --out file)")
        existing[key].extend(records)
    return existing, had_records


def execute_sweep(plan: SweepPlan, *,
                  executor: Optional[Executor] = None,
                  workers: int = 1,
                  chunk_size: Optional[int] = None,
                  results_path: Optional[str] = None,
                  resume: bool = False,
                  progress: Optional[Progress] = None,
                  sinks: Sequence[ResultSink] = ()) -> SweepResult:
    """Execute every cell of *plan* through one executor.

    * ``workers`` selects the executor (``>1`` forks a single process
      pool serving every cell) unless an explicit ``executor`` is given;
      ``chunk_size`` tunes its dispatch granularity (``None`` adapts to
      the plan size).
    * ``results_path`` streams each record to one multiplexed JSONL
      checkpoint, each line stamped with its cell's campaign identity.
    * ``resume=True`` reads the checkpoint first and re-executes only
      the missing ``(cell, run index)`` pairs; the per-cell merges are
      record-for-record identical to an uninterrupted sweep.
    * ``progress(completed, total)`` counts runs across the whole sweep.
    * extra ``sinks`` consume the merged record stream (all cells).

    Dispatch order is a private optimization: within each cell, specs
    execute in replay-boundary order (consecutive runs restore the same
    golden snapshot), but records are **emitted** -- to the checkpoint,
    the sinks, and ``progress`` -- in the cells' interleaved plan order
    through a reorder buffer, so checkpoints stay byte-identical to the
    unsorted engine's and kill/resume semantics are unchanged.
    """
    # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
    start = time.perf_counter()
    if resume and results_path is None:
        raise FFISError("resume=True requires results_path")
    if results_path is not None and not resume and \
            os.path.exists(results_path) and os.path.getsize(results_path):
        # Opening with mode "w" here would silently discard a file full
        # of paid-for runs -- hours of campaign time gone to a missing
        # flag.  Only an empty file may be (re)started in place.
        raise FFISError(
            f"{results_path} already contains results; resume it "
            "(--resume / resume=True) or write to a fresh --out path "
            "instead of overwriting completed runs")
    if results_path is not None and len(plan.cells) > 1:
        unstamped = [cell.key for cell in plan.cells
                     if cell.campaign_id is None]
        if unstamped:
            # Refuse before any run executes: the checkpoint would be
            # written but unresumable (unstamped lines are ambiguous in
            # a multi-cell sweep), stranding all the paid-for work.
            raise FFISError(
                f"cells {unstamped} have no campaign_id; a multi-cell "
                "sweep checkpoint needs every line stamped to be "
                "resumable")
    chosen = executor if executor is not None \
        else make_executor(workers, chunk_size=chunk_size)

    existing: Dict[str, List[RunRecord]] = {cell.key: [] for cell in plan.cells}
    had_records = False
    if resume and os.path.exists(results_path):
        existing, had_records = _assign_existing(plan, results_path)

    result = SweepResult()
    pending: List[Tuple[str, List[RunSpec]]] = []
    stamps: Dict[str, Optional[str]] = {}
    for cell in plan.cells:
        wanted = {spec.run_index for spec in cell.plan.specs}
        kept = [r for r in existing[cell.key] if r.run_index in wanted]
        done = {record.run_index for record in kept}
        pending.append((cell.key, [spec for spec in cell.plan.specs
                                   if spec.run_index not in done]))
        result.records[cell.key] = kept
        stamps[cell.key] = cell.campaign_id

    all_sinks: List[ResultSink] = list(sinks)
    checkpoint: Optional[JsonlSink] = None
    if results_path is not None:
        checkpoint = JsonlSink(results_path, append=had_records)
        all_sinks.append(checkpoint)

    total = len(plan)
    completed = sum(len(records) for records in result.records.values())
    contexts = {cell.key: cell.plan.context for cell in plan.cells}
    try:
        if sinks and any(result.records.values()):
            # Resumed records are part of this sweep's record stream: a
            # tally (or any other extra sink) over a resumed sweep must
            # see the already-completed runs too, or it silently
            # undercounts every one of them.  They replay in
            # interleaved plan order -- the order an uninterrupted
            # sweep would have emitted them -- and only through the
            # *extra* sinks: the checkpoint already holds their lines.
            kept_by_pair = {
                (key, record.run_index): record
                for key, records in result.records.items()
                for record in records}
            for key, spec in _interleaved(
                    [(cell.key, cell.plan.specs) for cell in plan.cells]):
                record = kept_by_pair.get((key, spec.run_index))
                if record is not None:
                    for sink in sinks:
                        sink.emit(record)
        if any(specs for _, specs in pending):
            # Emission stays in interleaved plan order; only the
            # dispatch sequence is boundary-sorted (see docstring).
            emit_order = [(key, spec.run_index)
                          for key, spec in _interleaved(pending)]
            dispatch = [(key, _boundary_sorted(contexts[key], specs))
                        for key, specs in pending]
            buffered: Dict[Tuple[str, int], RunRecord] = {}
            emitted = 0
            stream = chosen.map_tagged(contexts, _interleaved(dispatch))
            try:
                for done_key, done_record in stream:
                    buffered[(done_key, done_record.run_index)] = done_record
                    while emitted < len(emit_order) \
                            and emit_order[emitted] in buffered:
                        key, _ = emit_order[emitted]
                        record = buffered.pop(emit_order[emitted])
                        emitted += 1
                        if checkpoint is not None:
                            checkpoint.emit_stamped(record, stamps[key])
                        for sink in all_sinks:
                            if sink is not checkpoint:
                                sink.emit(record)
                        result.records[key].append(record)
                        result.executed += 1
                        completed += 1
                        if progress is not None:
                            progress(completed, total)
            finally:
                # Tear the executor down before closing the sinks so an
                # interrupted parallel sweep cancels its pending runs
                # promptly instead of racing a closed checkpoint file.
                close = getattr(stream, "close", None)
                if close is not None:
                    close()
    finally:
        for sink in all_sinks:
            sink.close()
    for records in result.records.values():
        records.sort(key=lambda record: record.run_index)
    # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
    result.elapsed_seconds = time.perf_counter() - start
    return result
