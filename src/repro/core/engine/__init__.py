"""The campaign execution engine: plan / execute / stream.

Campaigns *plan* (declarative :class:`RunSpec` lists), executors *run*
(serially or across processes, identically), sinks *stream* (tally,
JSONL checkpoint with resume).  See the submodule docstrings for the
contract each layer owns.
"""

from repro.core.engine.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.core.engine.plan import (
    ArmedHook,
    ExecutionContext,
    RunPlan,
    RunSpec,
    golden_digest,
)
from repro.core.engine.replay import (
    ReplayConstraint,
    choose_boundary,
    try_replay_execute,
)
from repro.core.engine.dist import (
    Coordinator,
    FileQueue,
    Lease,
    execute_distributed,
    run_worker,
)
from repro.core.engine.runner import execute_plan, execute_run_spec
from repro.core.engine.sink import (
    SCHEMA_VERSION,
    JsonlSink,
    ResultSink,
    TallySink,
    completed_indices,
    iter_stamped_records,
    load_records,
    load_records_by_campaign,
    merge_shard_records,
    record_from_json,
    record_to_json,
)
from repro.core.engine.sweep import (
    ProfileGoldenCache,
    SweepCell,
    SweepPlan,
    SweepResult,
    execute_sweep,
)

__all__ = [
    "ArmedHook",
    "Coordinator",
    "ExecutionContext",
    "Executor",
    "FileQueue",
    "JsonlSink",
    "Lease",
    "ParallelExecutor",
    "ProfileGoldenCache",
    "ReplayConstraint",
    "ResultSink",
    "RunPlan",
    "RunSpec",
    "SCHEMA_VERSION",
    "SerialExecutor",
    "SweepCell",
    "SweepPlan",
    "SweepResult",
    "TallySink",
    "choose_boundary",
    "completed_indices",
    "execute_distributed",
    "execute_plan",
    "execute_run_spec",
    "execute_sweep",
    "golden_digest",
    "iter_stamped_records",
    "load_records",
    "load_records_by_campaign",
    "make_executor",
    "merge_shard_records",
    "record_from_json",
    "record_to_json",
    "run_worker",
    "try_replay_execute",
]
