"""Reassembling per-worker shards into the one true checkpoint.

Workers append records in whatever order their leases arrive; the merge
step erases that history.  It streams every shard (never holding more
than one line in memory), deduplicates re-executed ``(campaign, run
index)`` pairs -- runs are deterministic in their spec, so the copies
are identical and dropping all but the first is lossless -- checks that
every planned run is accounted for, and rewrites the records in the
**interleaved plan order** the fused sweep itself emits.  The result is
byte-identical to the checkpoint a ``workers=1`` serial execution would
have written: same lines, same stamps, same order.  Nothing downstream
can tell the campaign was distributed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine.sink import JsonlSink, merge_shard_records
from repro.core.engine.sweep import SweepPlan, _interleaved
from repro.core.outcomes import RunRecord
from repro.errors import FFISError


@dataclass(frozen=True)
class MergeStats:
    """Accounting for one shard merge."""

    total: int       #: records in the merged result (== planned runs)
    duplicates: int  #: re-executed lines dropped by dedup
    shards: int      #: shard files that existed and were read


def _stamp_of(plan: SweepPlan) -> Dict[str, Optional[str]]:
    stamps = {cell.key: cell.campaign_id for cell in plan.cells}
    if len(plan.cells) > 1 and any(s is None for s in stamps.values()):
        unstamped = sorted(k for k, s in stamps.items() if s is None)
        raise FFISError(
            f"cells {unstamped} have no campaign_id; multi-cell shards "
            "need every record stamped to be mergeable")
    return stamps


def merge_shards(plan: SweepPlan, shard_paths: Sequence[str]
                 ) -> Tuple[Dict[str, List[RunRecord]], MergeStats]:
    """Merge worker shards into per-cell records, in run-index order.

    Every planned ``(cell, run index)`` pair must appear in some shard;
    a hole means a lease was lost rather than reassigned (or a shard
    file is missing), and silently returning a shrunken campaign would
    be the exact corruption the lease protocol exists to prevent -- so
    holes raise instead.
    """
    stamps = _stamp_of(plan)
    existing = [p for p in shard_paths if os.path.exists(p)]
    groups, duplicates = merge_shard_records(existing)
    merged: Dict[str, List[RunRecord]] = {}
    missing: List[str] = []
    for cell in plan.cells:
        by_index = groups.get(stamps[cell.key], {})
        records: List[RunRecord] = []
        for spec in cell.plan.specs:
            record = by_index.get(spec.run_index)
            if record is None:
                missing.append(f"{cell.key}:{spec.run_index}")
            else:
                records.append(record)
        # Same final ordering contract as execute_sweep's result.
        records.sort(key=lambda record: record.run_index)
        merged[cell.key] = records
    if missing:
        shown = ", ".join(missing[:8])
        more = f" (+{len(missing) - 8} more)" if len(missing) > 8 else ""
        # Shard filenames carry the worker ids that wrote them, so a
        # postmortem can tell "worker never ran" from "lease lost".
        shards = ", ".join(os.path.basename(p) for p in existing) or "none"
        raise FFISError(
            f"shard merge is missing {len(missing)} planned runs: "
            f"{shown}{more}; shards read: {shards}; the campaign is "
            "incomplete -- keep the queue directory and resume it "
            "instead of merging")
    known = {stamps[cell.key] for cell in plan.cells}
    strays = sorted(str(s) for s in groups if s not in known)
    if strays:
        raise FFISError(
            f"shards contain records stamped {strays}, which no cell of "
            "this plan owns; refusing to merge unrelated science")
    stats = MergeStats(
        total=sum(len(records) for records in merged.values()),
        duplicates=duplicates, shards=len(existing))
    return merged, stats


def write_merged(plan: SweepPlan, shard_paths: Sequence[str],
                 results_path: str, *,
                 overwrite: bool = False) -> MergeStats:
    """Write the merged checkpoint, byte-identical to serial execution.

    Records are emitted through the same ``JsonlSink.emit_stamped``
    path, in the same interleaved plan order, with the same per-cell
    stamps as :func:`~repro.core.engine.sweep.execute_sweep` -- byte
    identity by construction, not by accident.  The file is written to
    a temporary sibling and atomically renamed into place, so a crash
    mid-merge never leaves a half-written checkpoint where a complete
    one was promised.
    """
    if not overwrite and os.path.exists(results_path) \
            and os.path.getsize(results_path):
        raise FFISError(
            f"{results_path} already contains results; merge to a fresh "
            "--out path (or pass overwrite=True) instead of clobbering "
            "completed runs")
    merged, stats = merge_shards(plan, shard_paths)
    by_pair = {
        (cell.key, record.run_index): record
        for cell in plan.cells
        for record in merged[cell.key]}
    stamps = {cell.key: cell.campaign_id for cell in plan.cells}
    tmp = results_path + ".merging"
    sink = JsonlSink(tmp)
    try:
        for key, spec in _interleaved(
                [(cell.key, cell.plan.specs) for cell in plan.cells]):
            sink.emit_stamped(by_pair[(key, spec.run_index)], stamps[key])
    finally:
        sink.close()
    os.replace(tmp, results_path)
    return stats
