"""Reassembling per-worker shards into the one true checkpoint.

Workers publish records in whatever order their leases arrive; the
merge step erases that history.  It streams every shard segment (never
holding more than one line in memory), deduplicates re-executed
``(campaign, run index)`` pairs -- runs are deterministic in their
spec, so the copies are identical and dropping all but the first is
lossless -- checks that every planned run is accounted for, and
rewrites the records in the **interleaved plan order** the fused sweep
itself emits.  The result is byte-identical to the checkpoint a
``workers=1`` serial execution would have written: same lines, same
stamps, same order.  Nothing downstream can tell the campaign was
distributed.

``partial=True`` is the degraded-completion mode: a campaign that
settled around quarantined leases merges everything it *does* have --
still byte-identical for the completed runs -- and reports the holes in
a machine-readable :class:`HoleReport` instead of raising.  Holes are
never silent: full mode raises on them, partial mode names every one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.engine.sink import JsonlSink, merge_shard_records
from repro.core.engine.sweep import SweepPlan, _interleaved
from repro.core.outcomes import RunRecord
from repro.errors import FFISError


@dataclass(frozen=True)
class MergeStats:
    """Accounting for one shard merge."""

    total: int       #: records in the merged result
    duplicates: int  #: re-executed lines dropped by dedup
    shards: int      #: shard files that existed and were read
    #: ``cell:run_index`` pairs planned but found in no shard --
    #: nonempty only under ``partial=True`` (full merges raise).
    holes: Tuple[str, ...] = ()


@dataclass(frozen=True)
class HoleReport:
    """Machine-readable account of what a partial merge is missing."""

    #: every planned-but-absent run, as ``cell:run_index``
    missing: Tuple[str, ...]
    #: the queue's quarantine diagnostics (poison + damaged leases)
    quarantined: Tuple[Dict[str, Any], ...] = ()

    @property
    def complete(self) -> bool:
        return not self.missing

    def to_dict(self) -> Dict[str, Any]:
        return {
            "complete": self.complete,
            "missing_runs": list(self.missing),
            "missing_count": len(self.missing),
            "quarantined": [dict(q) for q in self.quarantined],
        }


def _stamp_of(plan: SweepPlan) -> Dict[str, Optional[str]]:
    stamps = {cell.key: cell.campaign_id for cell in plan.cells}
    if len(plan.cells) > 1 and any(s is None for s in stamps.values()):
        unstamped = sorted(k for k, s in stamps.items() if s is None)
        raise FFISError(
            f"cells {unstamped} have no campaign_id; multi-cell shards "
            "need every record stamped to be mergeable")
    return stamps


def merge_shards(plan: SweepPlan, shard_paths: Sequence[str], *,
                 partial: bool = False,
                 extra: Optional[Dict[Optional[str],
                                      Dict[int, RunRecord]]] = None,
                 ) -> Tuple[Dict[str, List[RunRecord]], MergeStats]:
    """Merge worker shards into per-cell records, in run-index order.

    Every planned ``(cell, run index)`` pair must appear in some shard;
    a hole means a lease was lost rather than reassigned (or a shard
    file is missing), and silently returning a shrunken campaign would
    be the exact corruption the lease protocol exists to prevent -- so
    holes raise, unless ``partial=True`` turns them into
    :attr:`MergeStats.holes` for the caller to report.

    *extra* supplies records recovered outside the shard files -- the
    coordinator's degraded in-process drain -- keyed like the shard
    groups (``{campaign stamp: {run_index: record}}``); shard records
    win ties, since a duplicate pair is byte-identical by determinism.
    """
    stamps = _stamp_of(plan)
    existing = [p for p in shard_paths if os.path.exists(p)]
    groups, duplicates = merge_shard_records(existing)
    if extra:
        for stamped, by_index in extra.items():
            cell_group = groups.setdefault(stamped, {})
            for run_index, record in by_index.items():
                if run_index in cell_group:
                    duplicates += 1
                else:
                    cell_group[run_index] = record
    merged: Dict[str, List[RunRecord]] = {}
    missing: List[str] = []
    for cell in plan.cells:
        by_index = groups.get(stamps[cell.key], {})
        records: List[RunRecord] = []
        for spec in cell.plan.specs:
            record = by_index.get(spec.run_index)
            if record is None:
                missing.append(f"{cell.key}:{spec.run_index}")
            else:
                records.append(record)
        # Same final ordering contract as execute_sweep's result.
        records.sort(key=lambda record: record.run_index)
        merged[cell.key] = records
    if missing and not partial:
        shown = ", ".join(missing[:8])
        more = f" (+{len(missing) - 8} more)" if len(missing) > 8 else ""
        # Shard filenames carry the worker ids that wrote them, so a
        # postmortem can tell "worker never ran" from "lease lost".
        shards = ", ".join(os.path.basename(p) for p in existing) or "none"
        raise FFISError(
            f"shard merge is missing {len(missing)} planned runs: "
            f"{shown}{more}; shards read: {shards}; the campaign is "
            "incomplete -- keep the queue directory and resume it "
            "instead of merging (or merge partial=True to get the "
            "completed cells plus a hole report)")
    known = {stamps[cell.key] for cell in plan.cells}
    strays = sorted(str(s) for s in groups if s not in known)
    if strays:
        raise FFISError(
            f"shards contain records stamped {strays}, which no cell of "
            "this plan owns; refusing to merge unrelated science")
    stats = MergeStats(
        total=sum(len(records) for records in merged.values()),
        duplicates=duplicates, shards=len(existing),
        holes=tuple(missing))
    return merged, stats


def write_merged(plan: SweepPlan, shard_paths: Sequence[str],
                 results_path: str, *,
                 overwrite: bool = False,
                 partial: bool = False,
                 extra: Optional[Dict[Optional[str],
                                      Dict[int, RunRecord]]] = None,
                 quarantined: Sequence[Dict[str, Any]] = (),
                 holes_path: Optional[str] = None) -> MergeStats:
    """Write the merged checkpoint, byte-identical to serial execution.

    Records are emitted through the same ``format_stamped_line`` path,
    in the same interleaved plan order, with the same per-cell stamps
    as :func:`~repro.core.engine.sweep.execute_sweep` -- byte identity
    by construction, not by accident.  The file is written to a
    temporary sibling and atomically renamed into place, so a crash
    mid-merge never leaves a half-written checkpoint where a complete
    one was promised.

    Under ``partial=True`` the completed runs are still emitted
    byte-identically (missing pairs are skipped, never invented) and a
    :class:`HoleReport` -- including the queue's *quarantined*
    diagnostics -- is written as JSON beside the results (at
    *holes_path*, default ``<results>.holes.json``), even when there
    are no holes: the report's ``complete`` flag is the receipt.
    """
    if not overwrite and os.path.exists(results_path) \
            and os.path.getsize(results_path):
        raise FFISError(
            f"{results_path} already contains results; merge to a fresh "
            "--out path (or pass overwrite=True) instead of clobbering "
            "completed runs")
    merged, stats = merge_shards(plan, shard_paths, partial=partial,
                                 extra=extra)
    by_pair = {
        (cell.key, record.run_index): record
        for cell in plan.cells
        for record in merged[cell.key]}
    stamps = {cell.key: cell.campaign_id for cell in plan.cells}
    tmp = results_path + ".merging"
    sink = JsonlSink(tmp)
    try:
        for key, spec in _interleaved(
                [(cell.key, cell.plan.specs) for cell in plan.cells]):
            record = by_pair.get((key, spec.run_index))
            if record is not None:
                sink.emit_stamped(record, stamps[key])
    finally:
        sink.close()
    os.replace(tmp, results_path)
    if partial:
        report = HoleReport(missing=stats.holes,
                            quarantined=tuple(quarantined))
        path = holes_path if holes_path is not None \
            else results_path + ".holes.json"
        tmp_report = path + ".tmp"
        with open(tmp_report, "w", encoding="utf-8") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp_report, path)
    return stats
