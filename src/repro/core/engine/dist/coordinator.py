"""The coordinator: post leases, keep the fleet honest, merge the truth.

:class:`Coordinator` owns a campaign's queue lifecycle -- shard the plan
into leases, post them, expire stale claims so a dead worker's work is
reassigned, and finally merge the shards into the canonical checkpoint.
It never executes a run itself, so one coordinator can serve workers on
any mix of hosts that share the queue directory.

:func:`execute_distributed` is the batteries-included local form: fork
``workers`` worker processes over an in-memory plan (fork inheritance
ships the compiled plan for free -- the capture-then-fork trick from the
parallel executor, stretched across a queue), supervise them, and
return a :class:`~repro.core.engine.sweep.SweepResult` indistinguishable
from serial execution.  SIGKILLing any worker mid-lease is survivable
by construction: its lease expires, a peer (or respawn) re-executes it,
and the merge deduplicates whatever the dead worker had already
written.

When the infrastructure itself is failing, the coordinator walks a
**degradation ladder** instead of dying:

1. *normal* -- dead workers are respawned within the respawn budget;
2. *shrunk-fleet* -- past the budget, deaths stop being replaced and
   the surviving workers finish the campaign;
3. *serial-drain* -- with every worker dead, the coordinator reclaims
   the orphaned claims and drains the queue itself, in process;
4. *direct-drain* -- if even the queue's storage is persistently
   broken, the remaining runs execute in process *bypassing* the
   queue, and their records ride into the merge as ``extra``.

Each step taken is recorded in a :class:`DegradationReport` attached to
the result, and a campaign that settles around quarantined poison
leases finishes with a partial merge plus an explicit hole report --
completed cells byte-identical to serial, missing runs named, nothing
silently dropped.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine.dist.chaos import ChaosCrash, QueueIO
from repro.core.engine.dist.lease import (
    Lease,
    default_lease_runs,
    shard_plan,
)
from repro.core.engine.dist.merge import (
    MergeStats,
    merge_shards,
    write_merged,
)
from repro.core.engine.dist.queue import (
    DEFAULT_QUARANTINE_AFTER,
    FileQueue,
)
from repro.core.engine.dist.retry import RetryPolicy
from repro.core.engine.dist.worker import run_worker
from repro.core.engine.runner import execute_run_spec
from repro.core.engine.sink import merge_shard_records
from repro.core.engine.sweep import SweepPlan, SweepResult, _boundary_sorted
from repro.core.outcomes import RunRecord
from repro.errors import FFISError


@dataclass
class DegradationReport:
    """Which fallbacks a distributed campaign took, and what it cost.

    ``stages`` is the ordered ladder actually walked (empty = the
    normal path); ``holes`` and ``quarantined`` account for every run
    the merged checkpoint does *not* contain, so "the campaign
    completed" and "the campaign completed around these losses" are
    never conflated.
    """

    stages: List[str] = field(default_factory=list)
    reasons: List[str] = field(default_factory=list)
    worker_deaths: int = 0
    quarantined: int = 0
    holes: Tuple[str, ...] = ()

    def record(self, stage: str, reason: str) -> None:
        if stage not in self.stages:
            self.stages.append(stage)
            self.reasons.append(reason)

    @property
    def degraded(self) -> bool:
        return bool(self.stages) or self.quarantined > 0 \
            or bool(self.holes)

    def describe(self) -> str:
        path = " -> ".join(["normal"] + self.stages)
        bits = [f"degradation path: {path}"]
        if self.worker_deaths:
            bits.append(f"worker deaths: {self.worker_deaths}")
        if self.quarantined:
            bits.append(f"quarantined leases: {self.quarantined}")
        if self.holes:
            bits.append(f"missing runs: {len(self.holes)}")
        return "; ".join(bits)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stages": list(self.stages),
            "reasons": list(self.reasons),
            "worker_deaths": self.worker_deaths,
            "quarantined": self.quarantined,
            "missing_runs": list(self.holes),
        }


class Coordinator:
    """One campaign's lease lifecycle over a shared queue directory."""

    def __init__(self, plan: SweepPlan, root: str, *,
                 lease_runs: Optional[int] = None,
                 lease_ttl: float = 30.0,
                 workers: int = 2,
                 io: Optional[QueueIO] = None,
                 retry: Optional[RetryPolicy] = None,
                 quarantine_after: int = DEFAULT_QUARANTINE_AFTER) -> None:
        self.plan = plan
        self.root = root
        self.lease_ttl = lease_ttl
        self.lease_runs = (lease_runs if lease_runs is not None
                           else default_lease_runs(plan, workers))
        self.leases: Tuple[Lease, ...] = shard_plan(plan, self.lease_runs)
        self.io = io
        self.retry = retry
        self.quarantine_after = quarantine_after
        self.queue: Optional[FileQueue] = None

    def post(self, reuse: bool = False) -> FileQueue:
        """Create (or resume, with ``reuse=True``) the queue and post
        every lease not already settled."""
        self.queue = FileQueue.create(
            self.root, self.plan, self.leases, reuse=reuse,
            io=self.io, retry=self.retry,
            quarantine_after=self.quarantine_after)
        return self.queue

    def _require_queue(self) -> FileQueue:
        if self.queue is None:
            raise FFISError("coordinator has not posted its queue yet")
        return self.queue

    def expire(self) -> List[Lease]:
        """One liveness sweep: re-post every claim past the lease TTL."""
        return self._require_queue().expire_stale(self.lease_ttl)

    def done(self) -> bool:
        return self._require_queue().all_done()

    def settled(self) -> bool:
        """Done *or* quarantined: no further progress is possible."""
        return self._require_queue().settled()

    def finish(self, results_path: Optional[str] = None, *,
               overwrite: bool = False,
               partial: bool = False,
               extra: Optional[Dict[Optional[str],
                                    Dict[int, RunRecord]]] = None,
               ) -> Tuple[Dict[str, List[RunRecord]], MergeStats]:
        """End the campaign: raise the FINISHED marker (workers drain
        and exit) and merge the shards into plan-order records --
        optionally also writing the canonical checkpoint file.

        ``partial=True`` settles around quarantined leases: the merge
        emits what exists (byte-identical for completed runs) and the
        checkpoint gains a machine-readable hole report carrying the
        queue's quarantine diagnostics.
        """
        queue = self._require_queue()
        try:
            queue.mark_finished()
        except OSError:
            if not partial:
                raise
            # A persistently broken queue cannot stop a partial finish:
            # the workers are already dead by the time we degrade here.
        quarantined = queue.quarantined() if partial else ()
        if results_path is not None:
            stats = write_merged(self.plan, queue.shard_paths(),
                                 results_path, overwrite=overwrite,
                                 partial=partial, extra=extra,
                                 quarantined=quarantined)
            merged, _ = merge_shards(self.plan, queue.shard_paths(),
                                     partial=partial, extra=extra)
        else:
            merged, stats = merge_shards(self.plan, queue.shard_paths(),
                                         partial=partial, extra=extra)
        return merged, stats


def _worker_entry(root: str, plan: SweepPlan, worker_id: str,
                  poll_interval: float, io: Optional[QueueIO],
                  retry: Optional[RetryPolicy]) -> None:
    """Module-level fork target (inherits *plan* without pickling)."""
    run_worker(root, plan, worker_id, poll_interval=poll_interval,
               io=io, retry=retry)


def _direct_drain(plan: SweepPlan, queue: FileQueue
                  ) -> Dict[Optional[str], Dict[int, RunRecord]]:
    """Last rung of the ladder: execute every run no published segment
    covers, in process, without touching the (broken) queue.

    Runs are deterministic in their spec, so these records are
    byte-identical to what a healthy worker would have produced; they
    ride into the merge as ``extra``.
    """
    try:
        groups, _ = merge_shard_records(queue.shard_paths())
    except (FFISError, OSError):
        groups = {}  # even the shards are unreadable: recompute all
    stamps = {cell.key: cell.campaign_id for cell in plan.cells}
    extra: Dict[Optional[str], Dict[int, RunRecord]] = {}
    for cell in plan.cells:
        have = groups.get(stamps[cell.key], {})
        todo = [spec for spec in cell.plan.specs
                if spec.run_index not in have]
        for spec in _boundary_sorted(cell.plan.context, todo):
            record = execute_run_spec(cell.plan.context, spec)
            extra.setdefault(stamps[cell.key], {})[spec.run_index] = record
    return extra


def execute_distributed(plan: SweepPlan, root: str, *,
                        workers: int = 2,
                        lease_runs: Optional[int] = None,
                        lease_ttl: float = 30.0,
                        results_path: Optional[str] = None,
                        resume: bool = False,
                        poll_interval: float = 0.05,
                        max_respawns: Optional[int] = None,
                        timeout: Optional[float] = None,
                        io: Optional[QueueIO] = None,
                        retry: Optional[RetryPolicy] = None,
                        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
                        ) -> SweepResult:
    """Run *plan* across forked local workers via a lease queue at *root*.

    The result -- records, per-cell ordering, and (when *results_path*
    is given) the checkpoint file bytes -- is identical to
    ``execute_sweep(plan, workers=1)``.  Dead workers are respawned (up
    to *max_respawns*, default ``4 * workers``); past that budget the
    campaign *degrades* instead of dying -- shrunken fleet, then an
    in-process serial drain, then a queue-bypassing direct drain -- and
    the taken path is reported on ``result.degradation``.  *timeout*
    bounds the whole campaign as a hang backstop.  ``resume=True``
    re-opens an interrupted queue directory: settled leases stay
    settled and only the remainder executes.  ``io``/``retry`` are the
    chaos seam and transient-retry policy handed to the queue and every
    forked worker.
    """
    # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
    start = time.perf_counter()
    if workers < 1:
        raise FFISError(f"need at least one worker, got {workers}")
    if results_path is not None and not resume \
            and os.path.exists(results_path) and os.path.getsize(results_path):
        # Same contract as execute_sweep: refuse before any run
        # executes rather than clobber a file full of paid-for runs.
        raise FFISError(
            f"{results_path} already contains results; resume it "
            "(--resume / resume=True) or write to a fresh --out path "
            "instead of overwriting completed runs")
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:
        raise FFISError(
            "distributed local workers need the fork start method; on "
            "this platform run separate `repro worker` processes against "
            "the queue directory instead") from exc

    coordinator = Coordinator(plan, root, lease_runs=lease_runs,
                              lease_ttl=lease_ttl, workers=workers,
                              io=io, retry=retry,
                              quarantine_after=quarantine_after)
    queue = coordinator.post(reuse=resume)
    budget = max_respawns if max_respawns is not None else 4 * workers
    report = DegradationReport()
    procs: Dict[str, multiprocessing.Process] = {}
    spawned = 0
    extra: Optional[Dict[Optional[str], Dict[int, RunRecord]]] = None

    def _spawn() -> None:
        nonlocal spawned
        worker_id = f"w{spawned:02d}"
        spawned += 1
        proc = ctx.Process(target=_worker_entry,
                           args=(root, plan, worker_id, poll_interval,
                                 io, retry))
        proc.start()
        procs[worker_id] = proc

    for _ in range(workers):
        _spawn()
    # repro: allow[R001] campaign deadline is a hang backstop, never recorded
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        while not queue.settled():
            try:
                coordinator.expire()
            except OSError:
                pass  # expiry is best-effort; the next sweep retries
            for worker_id in sorted(procs):
                proc = procs[worker_id]
                if not proc.is_alive() and not queue.settled():
                    # A worker died (crash, OOM, SIGKILL): its claim
                    # will expire and re-post; keep the fleet at
                    # strength so someone is there to pick it up --
                    # until the budget says the crashes are systemic.
                    del procs[worker_id]
                    report.worker_deaths += 1
                    if report.worker_deaths > budget:
                        report.record(
                            "shrunk-fleet",
                            f"respawn budget {budget} exhausted after "
                            f"{report.worker_deaths} worker deaths; no "
                            "longer replacing casualties")
                    else:
                        _spawn()
            if not procs and not queue.settled():
                # The whole fleet is gone and the budget is spent:
                # drain what remains in this process.  Orphaned claims
                # are reclaimed immediately -- their workers are dead,
                # not slow.
                report.record(
                    "serial-drain",
                    "every worker is dead; draining the queue in "
                    "process")
                try:
                    queue.expire_stale(0.0)
                    run_worker(root, plan, worker_id="rescue",
                               poll_interval=poll_interval,
                               reclaim_ttl=0.0, max_idle_polls=2,
                               io=io, retry=retry)
                except (ChaosCrash, OSError, FFISError) as exc:
                    # Even in-process draining cannot get through the
                    # queue's storage: compute the remainder directly.
                    report.record(
                        "direct-drain",
                        f"queue storage is persistently failing "
                        f"({type(exc).__name__}: {exc}); executing the "
                        "remainder in process, bypassing the queue")
                    extra = _direct_drain(plan, queue)
                break
            # repro: allow[R001] hang-backstop check only, never recorded
            if deadline is not None and time.monotonic() > deadline:
                raise FFISError(
                    f"distributed campaign at {root} exceeded its "
                    f"{timeout}s timeout with work outstanding "
                    f"({queue.counts()}); the queue directory is intact "
                    "-- resume it")
            time.sleep(poll_interval)
    finally:
        # Raise FINISHED first so healthy workers drain and exit on
        # their own; anything still alive after a grace join is torn
        # down (its lease state is crash-safe regardless).
        try:
            queue.mark_finished()
        except OSError:
            pass  # broken queue storage; workers still get terminated
        for proc in procs.values():
            proc.join(timeout=5.0)
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
    partial = extra is not None or not queue.all_done()
    merged, stats = coordinator.finish(results_path=results_path,
                                       overwrite=True, partial=partial,
                                       extra=extra)
    report.quarantined = queue.counts()["quarantined"]
    report.holes = stats.holes
    result = SweepResult(records=merged, executed=stats.total)
    if report.degraded:
        result.degradation = report
    # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
    result.elapsed_seconds = time.perf_counter() - start
    return result
