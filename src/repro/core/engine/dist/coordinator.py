"""The coordinator: post leases, keep the fleet honest, merge the truth.

:class:`Coordinator` owns a campaign's queue lifecycle -- shard the plan
into leases, post them, expire stale claims so a dead worker's work is
reassigned, and finally merge the shards into the canonical checkpoint.
It never executes a run itself, so one coordinator can serve workers on
any mix of hosts that share the queue directory.

:func:`execute_distributed` is the batteries-included local form: fork
``workers`` worker processes over an in-memory plan (fork inheritance
ships the compiled plan for free -- the capture-then-fork trick from the
parallel executor, stretched across a queue), supervise them, and
return a :class:`~repro.core.engine.sweep.SweepResult` indistinguishable
from serial execution.  SIGKILLing any worker mid-lease is survivable
by construction: its lease expires, a peer (or respawn) re-executes it,
and the merge deduplicates whatever the dead worker had already
written.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.core.engine.dist.lease import (
    Lease,
    default_lease_runs,
    shard_plan,
)
from repro.core.engine.dist.merge import (
    MergeStats,
    merge_shards,
    write_merged,
)
from repro.core.engine.dist.queue import FileQueue
from repro.core.engine.dist.worker import run_worker
from repro.core.engine.sweep import SweepPlan, SweepResult
from repro.core.outcomes import RunRecord
from repro.errors import FFISError


class Coordinator:
    """One campaign's lease lifecycle over a shared queue directory."""

    def __init__(self, plan: SweepPlan, root: str, *,
                 lease_runs: Optional[int] = None,
                 lease_ttl: float = 30.0,
                 workers: int = 2) -> None:
        self.plan = plan
        self.root = root
        self.lease_ttl = lease_ttl
        self.lease_runs = (lease_runs if lease_runs is not None
                           else default_lease_runs(plan, workers))
        self.leases: Tuple[Lease, ...] = shard_plan(plan, self.lease_runs)
        self.queue: Optional[FileQueue] = None

    def post(self, reuse: bool = False) -> FileQueue:
        """Create (or resume, with ``reuse=True``) the queue and post
        every lease not already settled."""
        self.queue = FileQueue.create(self.root, self.plan, self.leases,
                                      reuse=reuse)
        return self.queue

    def _require_queue(self) -> FileQueue:
        if self.queue is None:
            raise FFISError("coordinator has not posted its queue yet")
        return self.queue

    def expire(self) -> List[Lease]:
        """One liveness sweep: re-post every claim past the lease TTL."""
        return self._require_queue().expire_stale(self.lease_ttl)

    def done(self) -> bool:
        return self._require_queue().all_done()

    def finish(self, results_path: Optional[str] = None, *,
               overwrite: bool = False
               ) -> Tuple[Dict[str, List[RunRecord]], MergeStats]:
        """End the campaign: raise the FINISHED marker (workers drain
        and exit) and merge the shards into plan-order records --
        optionally also writing the canonical checkpoint file."""
        queue = self._require_queue()
        queue.mark_finished()
        if results_path is not None:
            stats = write_merged(self.plan, queue.shard_paths(),
                                 results_path, overwrite=overwrite)
            merged, _ = merge_shards(self.plan, queue.shard_paths())
        else:
            merged, stats = merge_shards(self.plan, queue.shard_paths())
        return merged, stats


def _worker_entry(root: str, plan: SweepPlan, worker_id: str,
                  poll_interval: float) -> None:
    """Module-level fork target (inherits *plan* without pickling)."""
    run_worker(root, plan, worker_id, poll_interval=poll_interval)


def execute_distributed(plan: SweepPlan, root: str, *,
                        workers: int = 2,
                        lease_runs: Optional[int] = None,
                        lease_ttl: float = 30.0,
                        results_path: Optional[str] = None,
                        resume: bool = False,
                        poll_interval: float = 0.05,
                        max_respawns: Optional[int] = None,
                        timeout: Optional[float] = None) -> SweepResult:
    """Run *plan* across forked local workers via a lease queue at *root*.

    The result -- records, per-cell ordering, and (when *results_path*
    is given) the checkpoint file bytes -- is identical to
    ``execute_sweep(plan, workers=1)``.  Dead workers are respawned (up
    to *max_respawns*, default ``4 * workers``) and their expired
    leases reassigned; *timeout* bounds the whole campaign as a hang
    backstop.  ``resume=True`` re-opens an interrupted queue directory:
    settled leases stay settled and only the remainder executes.
    """
    # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
    start = time.perf_counter()
    if workers < 1:
        raise FFISError(f"need at least one worker, got {workers}")
    if results_path is not None and not resume \
            and os.path.exists(results_path) and os.path.getsize(results_path):
        # Same contract as execute_sweep: refuse before any run
        # executes rather than clobber a file full of paid-for runs.
        raise FFISError(
            f"{results_path} already contains results; resume it "
            "(--resume / resume=True) or write to a fresh --out path "
            "instead of overwriting completed runs")
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError as exc:
        raise FFISError(
            "distributed local workers need the fork start method; on "
            "this platform run separate `repro worker` processes against "
            "the queue directory instead") from exc

    coordinator = Coordinator(plan, root, lease_runs=lease_runs,
                              lease_ttl=lease_ttl, workers=workers)
    queue = coordinator.post(reuse=resume)
    budget = max_respawns if max_respawns is not None else 4 * workers
    procs: Dict[str, multiprocessing.Process] = {}
    spawned = 0
    deaths = 0

    def _spawn() -> None:
        nonlocal spawned
        worker_id = f"w{spawned:02d}"
        spawned += 1
        proc = ctx.Process(target=_worker_entry,
                           args=(root, plan, worker_id, poll_interval))
        proc.start()
        procs[worker_id] = proc

    for _ in range(workers):
        _spawn()
    # repro: allow[R001] campaign deadline is a hang backstop, never recorded
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        while not queue.all_done():
            coordinator.expire()
            for worker_id in sorted(procs):
                proc = procs[worker_id]
                if not proc.is_alive() and not queue.all_done():
                    # A worker died (crash, OOM, SIGKILL): its claim
                    # will expire and re-post; keep the fleet at
                    # strength so someone is there to pick it up.
                    del procs[worker_id]
                    deaths += 1
                    if deaths > budget:
                        raise FFISError(
                            f"distributed campaign at {root} lost "
                            f"{deaths} workers (respawn budget {budget} "
                            "exhausted); the queue directory is intact "
                            "-- fix the crash and resume")
                    _spawn()
            # repro: allow[R001] hang-backstop check only, never recorded
            if deadline is not None and time.monotonic() > deadline:
                raise FFISError(
                    f"distributed campaign at {root} exceeded its "
                    f"{timeout}s timeout with work outstanding "
                    f"({queue.counts()}); the queue directory is intact "
                    "-- resume it")
            time.sleep(poll_interval)
    finally:
        # Raise FINISHED first so healthy workers drain and exit on
        # their own; anything still alive after a grace join is torn
        # down (its lease state is crash-safe regardless).
        queue.mark_finished()
        for proc in procs.values():
            proc.join(timeout=5.0)
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
    merged, stats = coordinator.finish(results_path=results_path,
                                       overwrite=True)
    result = SweepResult(records=merged, executed=stats.total)
    # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
    result.elapsed_seconds = time.perf_counter() - start
    return result
