"""Distributed campaign execution: leases, a filesystem queue, shards.

The paper's campaigns are thousands of independent runs per cell --
embarrassingly parallel, but PR 6's process pool stops at one host.
This package generalizes its ``(start, stop)`` range payloads into
**leases** handed out through a shared queue directory, so any number
of worker processes on any number of hosts that mount the directory can
drain one campaign:

* :mod:`~repro.core.engine.dist.lease` -- the work unit (cell x
  contiguous run-range) and the plan-identity manifest workers verify;
* :mod:`~repro.core.engine.dist.queue` -- the rename-atomic filesystem
  queue: claims, heartbeats, expiry, completion;
* :mod:`~repro.core.engine.dist.worker` -- the claim/execute/stream
  loop writing per-worker stamped JSONL shards;
* :mod:`~repro.core.engine.dist.merge` -- shard reassembly: dedup by
  ``(campaign, run index)``, completeness check, and a checkpoint
  byte-identical to serial execution;
* :mod:`~repro.core.engine.dist.coordinator` -- the lease lifecycle
  plus :func:`execute_distributed`, the fork-local fleet form.

The failure model is crash-only: SIGKILL a worker at any instant and
its lease expires, is reassigned, and re-executes; determinism makes
the duplicate records identical and the merge drops them.  Nothing is
lost, nothing is double-counted, and the merged checkpoint cannot be
told apart from a ``workers=1`` serial run.
"""

from repro.core.engine.dist.coordinator import (
    Coordinator,
    execute_distributed,
)
from repro.core.engine.dist.lease import (
    PROTOCOL_VERSION,
    Lease,
    default_lease_runs,
    plan_manifest,
    shard_plan,
    verify_manifest,
)
from repro.core.engine.dist.merge import (
    MergeStats,
    merge_shards,
    write_merged,
)
from repro.core.engine.dist.queue import Claim, FileQueue
from repro.core.engine.dist.worker import WorkerStats, run_worker

__all__ = [
    "Claim",
    "Coordinator",
    "FileQueue",
    "Lease",
    "MergeStats",
    "PROTOCOL_VERSION",
    "WorkerStats",
    "default_lease_runs",
    "execute_distributed",
    "merge_shards",
    "plan_manifest",
    "run_worker",
    "shard_plan",
    "verify_manifest",
    "write_merged",
]
