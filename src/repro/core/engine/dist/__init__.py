"""Distributed campaign execution: leases, a filesystem queue, shards.

The paper's campaigns are thousands of independent runs per cell --
embarrassingly parallel, but PR 6's process pool stops at one host.
This package generalizes its ``(start, stop)`` range payloads into
**leases** handed out through a shared queue directory, so any number
of worker processes on any number of hosts that mount the directory can
drain one campaign:

* :mod:`~repro.core.engine.dist.lease` -- the work unit (cell x
  contiguous run-range) and the plan-identity manifest workers verify;
* :mod:`~repro.core.engine.dist.queue` -- the rename-atomic filesystem
  queue: claims, heartbeats, expiry, completion, quarantine;
* :mod:`~repro.core.engine.dist.worker` -- the claim/execute/stream
  loop publishing per-lease stamped JSONL segments atomically;
* :mod:`~repro.core.engine.dist.merge` -- shard reassembly: dedup by
  ``(campaign, run index)``, completeness check, and a checkpoint
  byte-identical to serial execution (or a ``partial`` merge plus a
  machine-readable hole report);
* :mod:`~repro.core.engine.dist.coordinator` -- the lease lifecycle,
  :func:`execute_distributed` (the fork-local fleet form), and the
  degradation ladder that finishes campaigns over failing storage;
* :mod:`~repro.core.engine.dist.chaos` -- the injectable
  :class:`QueueIO` filesystem seam and the seeded, deterministic
  :class:`FaultyIO` fault injector (the paper's methodology, pointed
  at this engine);
* :mod:`~repro.core.engine.dist.retry` -- bounded exponential backoff
  with deterministic jitter for transient queue I/O.

The failure model is crash-only: SIGKILL a worker at any instant and
its lease expires, is reassigned, and re-executes; determinism makes
the duplicate records identical and the merge drops them.  Nothing is
lost, nothing is double-counted, and the merged checkpoint cannot be
told apart from a ``workers=1`` serial run.  When a fault is
*persistent* rather than crash-shaped -- a poison lease, a full disk,
a flaky mount -- the queue quarantines, the coordinator degrades, and
the campaign still completes with every hole named.
"""

from repro.core.engine.dist.chaos import (
    ChaosCrash,
    ChaosEvent,
    FaultSpec,
    FaultyIO,
    QueueIO,
)
from repro.core.engine.dist.coordinator import (
    Coordinator,
    DegradationReport,
    execute_distributed,
)
from repro.core.engine.dist.lease import (
    PROTOCOL_VERSION,
    Lease,
    default_lease_runs,
    plan_manifest,
    shard_plan,
    verify_manifest,
)
from repro.core.engine.dist.merge import (
    HoleReport,
    MergeStats,
    merge_shards,
    write_merged,
)
from repro.core.engine.dist.queue import (
    DEFAULT_QUARANTINE_AFTER,
    Claim,
    FileQueue,
)
from repro.core.engine.dist.retry import (
    DEFAULT_RETRY,
    TRANSIENT_ERRNOS,
    RetryPolicy,
    retry_io,
)
from repro.core.engine.dist.worker import WorkerStats, run_worker

__all__ = [
    "ChaosCrash",
    "ChaosEvent",
    "Claim",
    "Coordinator",
    "DEFAULT_QUARANTINE_AFTER",
    "DEFAULT_RETRY",
    "DegradationReport",
    "FaultSpec",
    "FaultyIO",
    "FileQueue",
    "HoleReport",
    "Lease",
    "MergeStats",
    "PROTOCOL_VERSION",
    "QueueIO",
    "RetryPolicy",
    "TRANSIENT_ERRNOS",
    "WorkerStats",
    "default_lease_runs",
    "execute_distributed",
    "merge_shards",
    "plan_manifest",
    "retry_io",
    "run_worker",
    "shard_plan",
    "verify_manifest",
    "write_merged",
]
