"""Leases: the unit of distributed work, as one serializable value.

A lease names a **cell x contiguous run-range** of a
:class:`~repro.core.engine.sweep.SweepPlan` -- exactly the ``(start,
stop)`` range payloads the capture-then-fork executor ships to pool
workers (PR 6), generalized across process and host boundaries.  The
range indexes *positions* in the cell's spec tuple, not run indices, so
any worker that rebuilt the same plan from the same spec resolves a
lease to the same specs.

Leases are plain JSON-able values; the queue stores one file per lease
and the coordinator reassigns an expired lease by re-posting the same
value with ``attempt`` bumped.  ``plan_manifest``/``verify_manifest``
pin the plan identity (cell keys, campaign stamps, spec counts) so a
worker that rebuilt a *different* plan -- wrong seed, wrong runs, wrong
study -- refuses the queue instead of silently merging unrelated
science, the same contract the checkpoint loader enforces per line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import FFISError

#: Bump when the lease/manifest layout changes meaning; workers refuse
#: queues written by a newer protocol instead of misreading them.
#: v2: adds the ``quarantine/`` state and the manifest's
#: ``quarantine_after`` attempt budget -- a v1 worker would wait
#: forever on a campaign that settled around a quarantined lease.
PROTOCOL_VERSION = 2


@dataclass(frozen=True)
class Lease:
    """One grant of work: ``plan.cells[cell_key].plan.specs[start:stop]``.

    ``lease_id`` is the queue filename stem (stable across
    reassignments); ``attempt`` counts how many times the lease has
    been (re)posted, so shards and logs can tell a re-execution from
    the original grant.
    """

    lease_id: str
    cell_key: str
    campaign_id: Optional[str]
    start: int
    stop: int
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise FFISError(
                f"lease {self.lease_id}: empty or negative range "
                f"[{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lease_id": self.lease_id,
            "cell_key": self.cell_key,
            "campaign_id": self.campaign_id,
            "start": self.start,
            "stop": self.stop,
            "attempt": self.attempt,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Lease":
        try:
            return cls(lease_id=str(raw["lease_id"]),
                       cell_key=str(raw["cell_key"]),
                       campaign_id=raw.get("campaign_id"),
                       start=int(raw["start"]), stop=int(raw["stop"]),
                       attempt=int(raw.get("attempt", 0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise FFISError(f"malformed lease payload {raw!r}: {exc}") from exc

    def reassigned(self) -> "Lease":
        """The same grant, one attempt later (expiry re-post)."""
        return Lease(lease_id=self.lease_id, cell_key=self.cell_key,
                     campaign_id=self.campaign_id, start=self.start,
                     stop=self.stop, attempt=self.attempt + 1)


def shard_plan(plan, lease_runs: int) -> Tuple[Lease, ...]:
    """Cut every cell of *plan* into contiguous ranges of at most
    ``lease_runs`` specs, in plan order.

    Smaller leases mean finer-grained failure recovery (a dead worker
    forfeits at most one range) at the price of more queue round-trips
    -- the same trade the executor's ``chunk_size`` makes, lifted to
    the fleet.
    """
    if lease_runs < 1:
        raise FFISError(f"lease_runs must be >= 1, got {lease_runs}")
    leases = []
    seq = 0
    for cell in plan.cells:
        n = len(cell.plan.specs)
        for start in range(0, n, lease_runs):
            leases.append(Lease(
                lease_id=f"lease-{seq:05d}",
                cell_key=cell.key,
                campaign_id=cell.campaign_id,
                start=start,
                stop=min(start + lease_runs, n)))
            seq += 1
    return tuple(leases)


def default_lease_runs(plan, workers: int) -> int:
    """Adaptive lease size: every worker gets several leases (so a dead
    one forfeits a fraction of its share, not all of it), capped like
    the executor's adaptive chunks so kill/recovery stays fine-grained
    on huge plans."""
    from repro.core.engine.executor import ParallelExecutor

    per_worker = max(1, len(plan) // (max(1, workers) * 4))
    return min(ParallelExecutor.MAX_ADAPTIVE_CHUNK_SIZE, per_worker)


def plan_manifest(plan) -> Dict[str, Any]:
    """The plan identity a queue pins and every worker must match."""
    return {
        "protocol": PROTOCOL_VERSION,
        "cells": [
            {"key": cell.key, "campaign_id": cell.campaign_id,
             "runs": len(cell.plan.specs)}
            for cell in plan.cells],
    }


def verify_manifest(plan, manifest: Dict[str, Any], where: str) -> None:
    """Refuse a queue whose manifest does not match *plan* exactly."""
    protocol = manifest.get("protocol")
    if protocol != PROTOCOL_VERSION:
        raise FFISError(
            f"{where}: queue speaks lease protocol {protocol!r}; this "
            f"build speaks v{PROTOCOL_VERSION}")
    expected = plan_manifest(plan)["cells"]
    actual = manifest.get("cells")
    if actual != expected:
        raise FFISError(
            f"{where}: queue was posted for a different plan "
            f"(queue cells {actual!r} != this plan's {expected!r}); "
            "refusing to merge unrelated science -- point the worker "
            "at the study the coordinator is serving")
