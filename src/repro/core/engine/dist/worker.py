"""The distributed worker loop: claim, execute, stream, settle.

A worker is deliberately boring: it claims one lease at a time, executes
the lease's specs through the same :func:`execute_run_spec` every other
executor uses, streams each record into a per-lease **segment** file,
heartbeats its claim, publishes the segment atomically, and marks the
lease done.  All the interesting guarantees live elsewhere --
determinism in the spec (any worker produces byte-identical records),
crash recovery in the queue (an expired lease is re-posted), and dedup
in the merge step (a re-executed lease's records collapse by
``(campaign, run index)``).

Segments are the crash-consistency story for shard output: each lease's
records are written to a ``.tmp`` sibling, flushed and fsynced, and
only then renamed to their final ``.jsonl`` name -- *before* the lease
is marked done.  A worker killed at any point therefore leaves either
no segment (the lease is re-executed after expiry) or a complete one;
a half-written final line can never reach the merge step as a stray
stamp, because the merge step only reads ``.jsonl`` files.

Infrastructure faults during a lease (``OSError`` out of the queue
seam, after the retry layer has given up) do not kill the worker: the
segment is aborted and the claim is *failed* back to the queue, which
re-posts it with its attempt bumped -- or quarantines it as poison once
the attempt budget is spent.  :class:`ChaosCrash` is the one exception
that always propagates: it *is* the simulated process death.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import IO, Optional

from repro.core.engine.dist.chaos import ChaosCrash, QueueIO
from repro.core.engine.dist.queue import FileQueue
from repro.core.engine.dist.retry import RetryPolicy
from repro.core.engine.runner import execute_run_spec
from repro.core.engine.sink import format_stamped_line
from repro.core.engine.sweep import SweepPlan, _boundary_sorted
from repro.errors import FFISError


@dataclass
class WorkerStats:
    """What one worker invocation actually did."""

    worker_id: str
    leases: int = 0
    runs: int = 0
    #: Leases whose ``attempt > 0`` -- work re-executed after another
    #: worker's lease expired (each may duplicate records; the merge
    #: step drops the copies).
    retries: int = 0
    #: Leases this worker gave up on after an infrastructure fault
    #: (failed back to the queue for reassignment or quarantine).
    failures: int = 0


class _SegmentWriter:
    """One lease's record stream, published atomically or not at all."""

    def __init__(self, queue: FileQueue, worker_id: str,
                 lease_id: str) -> None:
        self._queue = queue
        self.final = queue.segment_path(worker_id, lease_id)
        self._f: Optional[IO[bytes]] = queue.io.open_w(self.final + ".tmp")
        self._published = False

    def emit(self, record, campaign_id: Optional[str]) -> None:
        assert self._f is not None
        self._queue.io.write(
            self._f,
            format_stamped_line(record, campaign_id).encode("utf-8"))

    def publish(self) -> None:
        """Flush, fsync, close, then atomically rename into the merge
        set -- the segment exists whole or not at all."""
        assert self._f is not None
        self._queue.io.fsync(self._f)
        self._f.close()
        self._f = None
        self._queue.publish_segment(self.final)
        self._published = True

    def close(self) -> None:
        """Idempotent cleanup: an unpublished segment's tmp file is
        discarded so an aborted lease leaves nothing the merge (or a
        later resume) could misread."""
        if self._f is not None:
            self._f.close()
            self._f = None
        if not self._published:
            try:
                self._queue.io.unlink(self.final + ".tmp")
            except OSError:
                pass
            self._published = True  # nothing left to clean


def run_worker(root: str, plan: SweepPlan, worker_id: str, *,
               poll_interval: float = 0.05,
               reclaim_ttl: Optional[float] = None,
               max_idle_polls: Optional[int] = None,
               io: Optional[QueueIO] = None,
               retry: Optional[RetryPolicy] = None) -> WorkerStats:
    """Drain leases from the queue at *root* until the campaign settles.

    *plan* must be the same sweep the coordinator posted -- the queue
    manifest pins cell keys, campaign stamps, and run counts, and a
    mismatch is refused before any run executes.

    The loop exits when the coordinator's FINISHED marker appears or
    every manifest lease is settled (done or quarantined).
    ``reclaim_ttl`` lets a worker fleet operate without a live
    coordinator: idle workers expire stale claims themselves, so a
    SIGKILLed peer's lease is still reassigned.  ``max_idle_polls``
    bounds how many consecutive empty polls a worker tolerates before
    giving up (a liveness backstop for tests and orphaned workers;
    ``None`` polls forever).  ``io``/``retry`` select the queue's
    filesystem seam and transient-retry policy -- the chaos suite's
    injection points.
    """
    queue = FileQueue(root, io=io, retry=retry)
    queue.verify_plan(plan)
    cells = {cell.key: cell for cell in plan.cells}
    stats = WorkerStats(worker_id=worker_id)
    idle = 0
    while True:
        claim = queue.claim(worker_id)
        if claim is None:
            if queue.finished() or queue.settled():
                break
            idle += 1
            if max_idle_polls is not None and idle > max_idle_polls:
                break
            if reclaim_ttl is not None:
                queue.expire_stale(reclaim_ttl)
            time.sleep(poll_interval)
            continue
        idle = 0
        lease = claim.lease
        cell = cells.get(lease.cell_key)
        if cell is None or lease.stop > len(cell.plan.specs):
            raise FFISError(
                f"worker {worker_id} claimed lease {lease.lease_id} "
                f"(attempt {lease.attempt}), which names "
                f"{lease.cell_key}[{lease.start}:{lease.stop}] -- a "
                "range this plan does not contain; the queue "
                "manifest check should have refused this queue")
        writer: Optional[_SegmentWriter] = None
        try:
            writer = _SegmentWriter(queue, worker_id, lease.lease_id)
            context = cell.plan.context
            specs = cell.plan.specs[lease.start:lease.stop]
            # Same replay-locality trick as the fused sweep: runs that
            # restore the same golden snapshot execute back to back.
            # Segment order is free -- the merge step rewrites records
            # in interleaved plan order regardless.
            for spec in _boundary_sorted(context, specs):
                record = execute_run_spec(context, spec)
                writer.emit(record, lease.campaign_id)
                queue.heartbeat(claim)
                stats.runs += 1
            writer.publish()
            queue.complete(claim)
            stats.leases += 1
            if lease.attempt > 0:
                stats.retries += 1
        except ChaosCrash:
            raise  # the simulated SIGKILL: die without settling anything
        except OSError as exc:
            # Infrastructure fault the retry layer could not absorb:
            # give the lease back (reassign or quarantine) and move on.
            # Application failures never reach here -- execute_run_spec
            # already folds them into CRASH records.
            stats.failures += 1
            queue.fail(claim, f"{type(exc).__name__}: {exc}")
        finally:
            if writer is not None:
                writer.close()
    return stats
