"""The distributed worker loop: claim, execute, stream, settle.

A worker is deliberately boring: it claims one lease at a time, executes
the lease's specs through the same :func:`execute_run_spec` every other
executor uses, appends each record to its **own** stamped JSONL shard
the moment the run completes, heartbeats its claim, and marks the lease
done.  All the interesting guarantees live elsewhere -- determinism in
the spec (any worker produces byte-identical records), crash recovery
in the queue (an expired lease is re-posted), and dedup in the merge
step (a re-executed lease's records collapse by ``(campaign, run
index)``).

The shard is opened in append mode with the same partial-tail trim the
campaign checkpoint uses, so a worker restarted under its old id after
a SIGKILL mid-``emit`` heals its own shard before writing to it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.engine.dist.queue import FileQueue
from repro.core.engine.runner import execute_run_spec
from repro.core.engine.sink import JsonlSink
from repro.core.engine.sweep import SweepPlan, _boundary_sorted
from repro.errors import FFISError


@dataclass
class WorkerStats:
    """What one worker invocation actually did."""

    worker_id: str
    leases: int = 0
    runs: int = 0
    #: Leases whose ``attempt > 0`` -- work re-executed after another
    #: worker's lease expired (each may duplicate records; the merge
    #: step drops the copies).
    retries: int = 0


def run_worker(root: str, plan: SweepPlan, worker_id: str, *,
               poll_interval: float = 0.05,
               reclaim_ttl: Optional[float] = None,
               max_idle_polls: Optional[int] = None) -> WorkerStats:
    """Drain leases from the queue at *root* until the campaign settles.

    *plan* must be the same sweep the coordinator posted -- the queue
    manifest pins cell keys, campaign stamps, and run counts, and a
    mismatch is refused before any run executes.

    The loop exits when the coordinator's FINISHED marker appears or
    every manifest lease is done.  ``reclaim_ttl`` lets a worker fleet
    operate without a live coordinator: idle workers expire stale
    claims themselves, so a SIGKILLed peer's lease is still reassigned.
    ``max_idle_polls`` bounds how many consecutive empty polls a worker
    tolerates before giving up (a liveness backstop for tests and
    orphaned workers; ``None`` polls forever).
    """
    queue = FileQueue(root)
    queue.verify_plan(plan)
    cells = {cell.key: cell for cell in plan.cells}
    stats = WorkerStats(worker_id=worker_id)
    shard: Optional[JsonlSink] = None
    idle = 0
    try:
        while True:
            claim = queue.claim(worker_id)
            if claim is None:
                if queue.finished() or queue.all_done():
                    break
                idle += 1
                if max_idle_polls is not None and idle > max_idle_polls:
                    break
                if reclaim_ttl is not None:
                    queue.expire_stale(reclaim_ttl)
                time.sleep(poll_interval)
                continue
            idle = 0
            lease = claim.lease
            cell = cells.get(lease.cell_key)
            if cell is None or lease.stop > len(cell.plan.specs):
                raise FFISError(
                    f"worker {worker_id} claimed lease {lease.lease_id} "
                    f"(attempt {lease.attempt}), which names "
                    f"{lease.cell_key}[{lease.start}:{lease.stop}] -- a "
                    "range this plan does not contain; the queue "
                    "manifest check should have refused this queue")
            if shard is None:
                shard = JsonlSink(queue.shard_path(worker_id), append=True)
            context = cell.plan.context
            specs = cell.plan.specs[lease.start:lease.stop]
            # Same replay-locality trick as the fused sweep: runs that
            # restore the same golden snapshot execute back to back.
            # Shard order is free -- the merge step rewrites records in
            # interleaved plan order regardless.
            for spec in _boundary_sorted(context, specs):
                record = execute_run_spec(context, spec)
                shard.emit_stamped(record, lease.campaign_id)
                queue.heartbeat(claim)
                stats.runs += 1
            queue.complete(claim)
            stats.leases += 1
            if lease.attempt > 0:
                stats.retries += 1
    finally:
        if shard is not None:
            shard.close()
    return stats
