"""Bounded retry with deterministic backoff for transient queue I/O.

The lease queue lives on whatever filesystem two hosts can both mount,
which in practice means NFS-class behavior: transient ``EIO`` under
load, ``ESTALE`` handles after a server failover, spurious ``EAGAIN``.
Those faults are *retryable* -- the paper's taxonomy calls them
transient device errors, and the right response is bounded exponential
backoff, not a dead campaign.  Persistent faults (``ENOSPC``,
``EACCES``, a yanked mount) are **not** retried: they escalate to the
coordinator's degradation ladder instead, because retrying a full disk
forever is just a slower hang.

Determinism discipline: the backoff jitter derives from
:func:`repro.util.rngstream.derive_seed` keyed by ``(seed, site,
attempt)`` -- no wall clock, no entropy pool, no ``random`` module --
so a chaos test that replays the same fault schedule sees the same
retry schedule, and nothing time-derived can leak toward a record.
"""

from __future__ import annotations

import errno
import time
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, TypeVar

from repro.errors import FFISError
from repro.util.rngstream import derive_seed

T = TypeVar("T")

#: Errnos worth retrying: the fault is expected to clear on its own.
#: Everything else (ENOSPC, EACCES, ENOENT, EROFS...) is either a race
#: signal the caller handles or a persistent failure the degradation
#: ladder owns.
TRANSIENT_ERRNOS: FrozenSet[int] = frozenset({
    errno.EIO, errno.EAGAIN, errno.EBUSY, errno.EINTR, errno.ESTALE,
    errno.ETIMEDOUT,
})


@dataclass(frozen=True)
class RetryPolicy:
    """How one queue client retries transient I/O.

    ``attempts`` bounds total tries (first call included); ``timeout``
    additionally bounds the wall-clock spent inside one
    :func:`retry_io` call, which is what puts a deadline on lease
    claims and shard finalization when every attempt is slow rather
    than failing.  The jitter factor for ``(site, attempt)`` is a pure
    hash, so two processes with the same policy de-synchronize their
    retries identically on every replay of a chaos schedule.
    """

    attempts: int = 4
    base_delay: float = 0.005
    max_delay: float = 0.25
    jitter: float = 0.25
    seed: int = 0
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise FFISError(
                f"retry policy needs attempts >= 1, got {self.attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise FFISError(
                f"retry jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, site: str, attempt: int) -> float:
        """Deterministic delay before retry *attempt* at *site*."""
        base = min(self.max_delay, self.base_delay * (2 ** attempt))
        if not self.jitter:
            return base
        unit = derive_seed(self.seed, "retry", site, attempt) % 10**6 / 10**6
        return base * (1.0 - self.jitter + 2.0 * self.jitter * unit)


#: The default policy queue clients share when none is injected.
DEFAULT_RETRY = RetryPolicy()


def retry_io(policy: Optional[RetryPolicy], site: str,
             op: Callable[[], T], *,
             sleep: Callable[[float], None] = time.sleep) -> T:
    """Run *op*, retrying transient ``OSError``\\ s per *policy*.

    Non-``OSError`` exceptions and non-transient errnos propagate on
    the first occurrence -- ``FileNotFoundError`` from a lost claim
    race must surface immediately, and ``ENOSPC`` must reach the
    degradation ladder, not spin here.  *op* must therefore be
    idempotent under partial failure (the queue's tmp-sibling publishes
    and atomic renames are, by construction).
    """
    if policy is None:
        policy = DEFAULT_RETRY
    # repro: allow[R001] retry deadline is an I/O hang backstop, never recorded
    deadline = None if policy.timeout is None \
        else time.monotonic() + policy.timeout
    attempt = 0
    while True:
        try:
            return op()
        except OSError as exc:
            if exc.errno not in TRANSIENT_ERRNOS:
                raise
            attempt += 1
            if attempt >= policy.attempts:
                raise
            # repro: allow[R001] deadline check is reporting-only backstop
            if deadline is not None and time.monotonic() > deadline:
                raise FFISError(
                    f"queue I/O at {site!r} still failing transiently "
                    f"after {policy.timeout}s ({exc}); treating the "
                    "fault as persistent") from exc
            sleep(policy.backoff(site, attempt - 1))
