"""A filesystem-backed lease queue: coordination without a server.

The queue is a directory -- shareable over any POSIX filesystem two
hosts can both mount -- whose subdirectories *are* the lease states::

    queue/
      manifest.json            plan identity + the full lease id list
      pending/<id>.json        posted, unclaimed leases
      leased/<id>.json--<w>    claimed by worker <w>; mtime = heartbeat
      done/<id>.json           completed leases
      shards/shard-<w>.jsonl   per-worker stamped record shards
      FINISHED                 coordinator's end-of-campaign marker

Every transition is one atomic ``rename``: a claim moves a pending file
into ``leased/`` (losers of the race get ``FileNotFoundError`` and move
on), completion writes the ``done/`` file before releasing the claim,
and expiry re-posts the lease value with its attempt bumped.  No state
lives anywhere else, so a SIGKILL at *any* point leaves the queue in a
position some later scan can repair: the worst case is a lease executed
twice, which the shard merger deduplicates by design.

Worker liveness is the ``leased/`` file's mtime: workers touch it per
completed run (:meth:`FileQueue.heartbeat`), the coordinator compares
it against the lease TTL.  Workers never read a clock -- ``utime(None)``
stamps kernel time -- so the engine's no-wall-clock rule holds: nothing
time-derived can leak into a record.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.engine.dist.lease import (
    Lease,
    plan_manifest,
    verify_manifest,
)
from repro.errors import FFISError

#: Separates the lease filename from the claiming worker's id in
#: ``leased/`` entries; therefore banned inside worker ids.
_CLAIM_SEP = "--"

_WORKER_ID_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def _check_worker_id(worker_id: str) -> str:
    if not _WORKER_ID_RE.match(worker_id) or _CLAIM_SEP in worker_id:
        raise FFISError(
            f"worker id {worker_id!r} must match [A-Za-z0-9._-]+ and "
            f"not contain {_CLAIM_SEP!r} (it becomes part of queue "
            "filenames)")
    return worker_id


def _write_json(path: str, data: Dict[str, Any]) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


def _read_json(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


@dataclass(frozen=True)
class Claim:
    """A successfully claimed lease plus the file that proves it."""

    lease: Lease
    path: str        # the leased/ entry this worker owns
    worker_id: str


class FileQueue:
    """One campaign's lease queue rooted at a directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.manifest_path = os.path.join(root, "manifest.json")
        self.pending_dir = os.path.join(root, "pending")
        self.leased_dir = os.path.join(root, "leased")
        self.done_dir = os.path.join(root, "done")
        self.shards_dir = os.path.join(root, "shards")
        self.finished_path = os.path.join(root, "FINISHED")
        if not os.path.exists(self.manifest_path):
            raise FFISError(
                f"{root} is not a lease queue (no manifest.json); the "
                "coordinator creates it -- `repro study serve`")
        self.manifest = _read_json(self.manifest_path)
        self.lease_ids: Tuple[str, ...] = tuple(
            self.manifest.get("lease_ids", ()))

    # -- creation ---------------------------------------------------------------

    @classmethod
    def create(cls, root: str, plan, leases: Sequence[Lease],
               reuse: bool = False) -> "FileQueue":
        """Post a new queue for *plan*, or re-open a matching one.

        ``reuse=True`` resumes an interrupted campaign in place:
        completed leases stay completed, orphaned claims are re-posted,
        and any lease missing from every state directory is posted
        fresh.  Without ``reuse``, an already-populated root is refused
        -- overwriting it would discard the shards' paid-for runs, the
        same contract the checkpoint writer enforces.
        """
        manifest_path = os.path.join(root, "manifest.json")
        if os.path.exists(manifest_path):
            if not reuse:
                raise FFISError(
                    f"{root} already holds a lease queue; resume it "
                    "(reuse=True / --resume) or serve from a fresh "
                    "--queue directory instead of overwriting its "
                    "shards")
            queue = cls(root)
            verify_manifest(plan, queue.manifest, where=root)
            queue._repost_missing(leases)
            try:
                # A stale end-of-campaign marker would make resumed
                # workers exit before claiming anything.
                os.unlink(queue.finished_path)
            except FileNotFoundError:
                pass
            return queue
        for sub in ("pending", "leased", "done", "shards"):
            os.makedirs(os.path.join(root, sub), exist_ok=True)
        manifest = plan_manifest(plan)
        manifest["lease_ids"] = [lease.lease_id for lease in leases]
        _write_json(manifest_path, manifest)
        queue = cls(root)
        for lease in leases:
            queue._post(lease)
        return queue

    def _post(self, lease: Lease) -> None:
        _write_json(os.path.join(self.pending_dir,
                                 f"{lease.lease_id}.json"),
                    lease.to_dict())

    def _repost_missing(self, leases: Sequence[Lease]) -> None:
        """Resume repair: every lease must be pending, leased, or done;
        orphaned claims go back to pending with their attempt bumped."""
        for name in sorted(os.listdir(self.leased_dir)):
            self._requeue(os.path.join(self.leased_dir, name))
        settled = set(os.listdir(self.pending_dir)) \
            | set(os.listdir(self.done_dir))
        for lease in leases:
            if f"{lease.lease_id}.json" not in settled:
                self._post(lease)

    # -- worker side ------------------------------------------------------------

    def verify_plan(self, plan) -> None:
        verify_manifest(plan, self.manifest, where=self.root)

    def claim(self, worker_id: str) -> Optional[Claim]:
        """Atomically claim one pending lease, oldest-posted first.

        Returns ``None`` when nothing is pending right now -- which
        does **not** mean the campaign is over: a claimed lease may yet
        expire back into ``pending/``.  Callers poll until
        :meth:`finished` or :meth:`all_done`.
        """
        _check_worker_id(worker_id)
        try:
            names = sorted(os.listdir(self.pending_dir))
        except FileNotFoundError:
            return None
        for name in names:
            if not name.endswith(".json"):
                continue
            done = os.path.join(self.done_dir, name)
            source = os.path.join(self.pending_dir, name)
            if os.path.exists(done):
                # A completion raced an expiry re-post: the work is
                # done, the stale pending copy is noise.
                try:
                    os.unlink(source)
                except FileNotFoundError:
                    pass
                continue
            target = os.path.join(self.leased_dir,
                                  f"{name}{_CLAIM_SEP}{worker_id}")
            try:
                os.rename(source, target)
            except (FileNotFoundError, OSError):
                continue  # another worker won this lease; try the next
            os.utime(target, None)   # heartbeat epoch = claim time
            try:
                lease = Lease.from_dict(_read_json(target))
            except (FFISError, ValueError, OSError) as exc:
                # Postmortems start from worker logs: name everything
                # the claim knows (who, which lease file) so a corrupt
                # entry is findable without spelunking the queue.
                raise FFISError(
                    f"worker {worker_id} claimed lease "
                    f"{name[:-len('.json')]} but its payload is "
                    f"malformed ({exc}); the claim file is {target} -- "
                    "inspect it, then delete it and resume to re-post "
                    "the lease") from exc
            return Claim(lease=lease, path=target, worker_id=worker_id)
        return None

    def heartbeat(self, claim: Claim) -> None:
        """Refresh the claim's liveness stamp (kernel time; the worker
        itself never reads a clock)."""
        try:
            os.utime(claim.path, None)
        except FileNotFoundError:
            pass  # expired out from under us; completion will notice

    def complete(self, claim: Claim) -> None:
        """Settle the claim: record completion, then release the lease.

        Written in that order so a SIGKILL between the two steps leaves
        a ``done/`` file the expiry scan treats as authoritative (the
        orphaned claim is cleaned up, not re-executed).
        """
        done = claim.lease.to_dict()
        done["worker"] = claim.worker_id
        _write_json(os.path.join(self.done_dir,
                                 f"{claim.lease.lease_id}.json"), done)
        try:
            os.unlink(claim.path)
        except FileNotFoundError:
            pass  # the lease expired and was re-posted; dedup absorbs it

    def shard_path(self, worker_id: str) -> str:
        return os.path.join(self.shards_dir,
                            f"shard-{_check_worker_id(worker_id)}.jsonl")

    def shard_paths(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.shards_dir))
        except FileNotFoundError:
            return []
        return [os.path.join(self.shards_dir, name)
                for name in names if name.endswith(".jsonl")]

    # -- coordinator side -------------------------------------------------------

    def _requeue(self, path: str) -> Optional[Lease]:
        """Move one leased entry back to pending (attempt bumped)."""
        name = os.path.basename(path).rsplit(_CLAIM_SEP, 1)[0]
        if os.path.exists(os.path.join(self.done_dir, name)):
            # Completed but not released (killed between the two steps
            # of complete()): just clean up the orphaned claim.
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return None
        try:
            lease = Lease.from_dict(_read_json(path)).reassigned()
        except (FFISError, OSError, ValueError):
            return None  # claim vanished mid-scan (completed or expired)
        _write_json(os.path.join(self.pending_dir, name), lease.to_dict())
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        return lease

    def expire_stale(self, ttl_seconds: float,
                     now: Optional[float] = None) -> List[Lease]:
        """Re-post every claim whose heartbeat is older than the TTL.

        The re-executed range may duplicate records a dead (or merely
        slow) worker already wrote -- the merge step deduplicates by
        ``(campaign, run index)``, so reassignment is always safe, just
        potentially wasteful.  Returns the re-posted leases.
        """
        if now is None:
            # repro: allow[R001] lease liveness vs file mtimes; never recorded
            now = time.time()
        requeued: List[Lease] = []
        try:
            names = sorted(os.listdir(self.leased_dir))
        except FileNotFoundError:
            return requeued
        for name in names:
            path = os.path.join(self.leased_dir, name)
            try:
                age = now - os.path.getmtime(path)
            except OSError:
                continue  # completed or already expired mid-scan
            base = name.rsplit(_CLAIM_SEP, 1)[0]
            if os.path.exists(os.path.join(self.done_dir, base)):
                self._requeue(path)  # cleanup path: done is authoritative
                continue
            if age > ttl_seconds:
                lease = self._requeue(path)
                if lease is not None:
                    requeued.append(lease)
        return requeued

    # -- progress ---------------------------------------------------------------

    def _count(self, directory: str) -> int:
        try:
            return sum(1 for name in os.listdir(directory)
                       if name.endswith(".json"))
        except FileNotFoundError:
            return 0

    def counts(self) -> Dict[str, int]:
        return {"pending": self._count(self.pending_dir),
                "leased": len(self._leased_names()),
                "done": self._count(self.done_dir),
                "total": len(self.lease_ids)}

    def _leased_names(self) -> List[str]:
        try:
            return [name for name in os.listdir(self.leased_dir)
                    if _CLAIM_SEP in name]
        except FileNotFoundError:
            return []

    def all_done(self) -> bool:
        """Every manifest lease has a completion record."""
        try:
            done = set(os.listdir(self.done_dir))
        except FileNotFoundError:
            return False
        return all(f"{lease_id}.json" in done for lease_id in self.lease_ids)

    def idle(self) -> bool:
        """Nothing pending and nothing claimed (not necessarily done --
        a crashed queue can be idle with work missing)."""
        return self._count(self.pending_dir) == 0 \
            and not self._leased_names()

    def mark_finished(self) -> None:
        with open(self.finished_path, "w", encoding="utf-8") as f:
            f.write("finished\n")

    def finished(self) -> bool:
        return os.path.exists(self.finished_path)
