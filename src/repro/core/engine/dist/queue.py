"""A filesystem-backed lease queue: coordination without a server.

The queue is a directory -- shareable over any POSIX filesystem two
hosts can both mount -- whose subdirectories *are* the lease states::

    queue/
      manifest.json            plan identity + the full lease id list
      pending/<id>.json        posted, unclaimed leases
      leased/<id>.json--<w>    claimed by worker <w>; mtime = heartbeat
      done/<id>.json           completed leases
      quarantine/<id>.json     poison leases, with a diagnostic payload
      quarantine/*.damaged     unparseable lease files, moved aside
      shards/*.jsonl           stamped record segments, one per
                               completed (lease, worker) pair
      FINISHED                 coordinator's end-of-campaign marker

Every transition is one atomic ``rename``: a claim moves a pending file
into ``leased/`` (losers of the race get ``FileNotFoundError`` and move
on), completion writes the ``done/`` file before releasing the claim,
and expiry re-posts the lease value with its attempt bumped.  No state
lives anywhere else, so a SIGKILL at *any* point leaves the queue in a
position some later scan can repair: the worst case is a lease executed
twice, which the shard merger deduplicates by design.

Two hardening layers sit under every transition (the paper's own
methodology, turned on this engine):

* all filesystem calls go through an injectable
  :class:`~repro.core.engine.dist.chaos.QueueIO` seam, so the chaos
  suite can schedule ENOSPC/EIO/torn-write/stale-scandir faults into
  any site deterministically;
* transient errnos are retried with bounded, deterministically
  jittered backoff (:mod:`repro.core.engine.dist.retry`); persistent
  faults propagate to the coordinator's degradation ladder.

A lease that keeps failing -- its attempt count reaches the queue's
``quarantine_after`` budget -- is *quarantined* rather than reassigned
forever: the lease value plus a diagnostic payload moves to
``quarantine/``, the campaign settles around the hole, and the merge
step reports it instead of silently dropping the cell.

Worker liveness is the ``leased/`` file's mtime: workers touch it per
completed run (:meth:`FileQueue.heartbeat`), the coordinator compares
it against the lease TTL.  Workers never read a clock -- ``utime(None)``
stamps kernel time -- so the engine's no-wall-clock rule holds: nothing
time-derived can leak into a record.
"""

from __future__ import annotations

import json
import os
import re
import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.engine.dist.chaos import QueueIO
from repro.core.engine.dist.lease import (
    Lease,
    plan_manifest,
    verify_manifest,
)
from repro.core.engine.dist.retry import RetryPolicy, retry_io
from repro.errors import FFISError

#: Separates the lease filename from the claiming worker's id in
#: ``leased/`` entries; therefore banned inside worker ids.
_CLAIM_SEP = "--"

#: How many attempts a lease gets before it is declared poison and
#: quarantined instead of reassigned.  Three grants tolerate two
#: unlucky deaths (host reboot, OOM kill) while still bounding the harm
#: a deterministically crashing cell can do to the fleet.
DEFAULT_QUARANTINE_AFTER = 3

#: Suffix quarantined *unparseable* files carry, distinguishing damage
#: (re-postable from the manifest on resume) from diagnosed poison
#: (kept quarantined until a human deletes the diagnosis).
_DAMAGED_SUFFIX = ".damaged"

_WORKER_ID_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def _check_worker_id(worker_id: str) -> str:
    if not _WORKER_ID_RE.match(worker_id) or _CLAIM_SEP in worker_id:
        raise FFISError(
            f"worker id {worker_id!r} must match [A-Za-z0-9._-]+ and "
            f"not contain {_CLAIM_SEP!r} (it becomes part of queue "
            "filenames)")
    return worker_id


def _read_json(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


@dataclass(frozen=True)
class Claim:
    """A successfully claimed lease plus the file that proves it."""

    lease: Lease
    path: str        # the leased/ entry this worker owns
    worker_id: str


class FileQueue:
    """One campaign's lease queue rooted at a directory.

    ``io`` is the filesystem seam -- every queue syscall goes through
    it, which is how the chaos suite injects faults; ``retry`` governs
    how transient errnos at each site are retried.  Both default to
    the real filesystem and the default bounded-backoff policy.
    """

    def __init__(self, root: str, io: Optional[QueueIO] = None,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.root = root
        self.io = io if io is not None else QueueIO()
        self.retry = retry
        self.manifest_path = os.path.join(root, "manifest.json")
        self.pending_dir = os.path.join(root, "pending")
        self.leased_dir = os.path.join(root, "leased")
        self.done_dir = os.path.join(root, "done")
        self.quarantine_dir = os.path.join(root, "quarantine")
        self.shards_dir = os.path.join(root, "shards")
        self.finished_path = os.path.join(root, "FINISHED")
        if not os.path.exists(self.manifest_path):
            raise FFISError(
                f"{root} is not a lease queue (no manifest.json); the "
                "coordinator creates it -- `repro study serve`")
        self.manifest = _read_json(self.manifest_path)
        self.lease_ids: Tuple[str, ...] = tuple(
            self.manifest.get("lease_ids", ()))
        self.quarantine_after: int = int(
            self.manifest.get("quarantine_after", DEFAULT_QUARANTINE_AFTER))

    # -- injected I/O helpers ---------------------------------------------------

    def _io_call(self, site: str, op):
        """One queue syscall through the seam, with transient retry."""
        return retry_io(self.retry, site, op)

    def _write_json(self, site: str, path: str,
                    data: Dict[str, Any]) -> None:
        """Durable, atomic JSON publish through the seam.

        Tmp-sibling write + fsync + atomic rename, so a crash (or an
        injected torn write) at any point leaves either the old file or
        the new one -- never a half-written payload at the final path.
        """
        payload = (json.dumps(data, indent=2, sort_keys=True) + "\n") \
            .encode("utf-8")
        tmp = path + ".tmp"

        def publish() -> None:
            f = self.io.open_w(tmp)
            try:
                self.io.write(f, payload)
                self.io.fsync(f)
            finally:
                f.close()
            self.io.replace(tmp, path)

        self._io_call(site, publish)

    def _read_payload(self, site: str, path: str) -> Dict[str, Any]:
        raw = self._io_call(site, lambda: self.io.read_bytes(path))
        return json.loads(raw.decode("utf-8"))

    # -- creation ---------------------------------------------------------------

    @classmethod
    def create(cls, root: str, plan, leases: Sequence[Lease],
               reuse: bool = False, io: Optional[QueueIO] = None,
               retry: Optional[RetryPolicy] = None,
               quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
               ) -> "FileQueue":
        """Post a new queue for *plan*, or re-open a matching one.

        ``reuse=True`` resumes an interrupted campaign in place:
        completed leases stay completed, orphaned claims are re-posted,
        damaged (unparseable) lease files are quarantined with a
        warning and re-posted pristine, and any lease missing from
        every state directory is posted fresh.  Without ``reuse``, an
        already-populated root is refused -- overwriting it would
        discard the shards' paid-for runs, the same contract the
        checkpoint writer enforces.
        """
        manifest_path = os.path.join(root, "manifest.json")
        if os.path.exists(manifest_path):
            if not reuse:
                raise FFISError(
                    f"{root} already holds a lease queue; resume it "
                    "(reuse=True / --resume) or serve from a fresh "
                    "--queue directory instead of overwriting its "
                    "shards")
            queue = cls(root, io=io, retry=retry)
            verify_manifest(plan, queue.manifest, where=root)
            queue._repair(leases)
            try:
                # A stale end-of-campaign marker would make resumed
                # workers exit before claiming anything.
                os.unlink(queue.finished_path)
            except FileNotFoundError:
                pass
            return queue
        if quarantine_after < 1:
            raise FFISError(
                f"quarantine_after must be >= 1, got {quarantine_after}")
        for sub in ("pending", "leased", "done", "quarantine", "shards"):
            os.makedirs(os.path.join(root, sub), exist_ok=True)
        manifest = plan_manifest(plan)
        manifest["lease_ids"] = [lease.lease_id for lease in leases]
        manifest["quarantine_after"] = quarantine_after
        # The manifest must exist before __init__ will open the root.
        _bootstrap_manifest(manifest_path, manifest)
        queue = cls(root, io=io, retry=retry)
        for lease in leases:
            queue._post(lease)
        return queue

    def _post(self, lease: Lease) -> None:
        self._write_json(
            "post",
            os.path.join(self.pending_dir, f"{lease.lease_id}.json"),
            lease.to_dict())

    def _quarantine_damaged(self, path: str, exc: Exception) -> None:
        """Move an unparseable lease file aside instead of crashing.

        The campaign's integrity does not depend on the file's content
        -- leases are re-postable from the plan -- so damage is a
        diagnostic event, not a fatal one.
        """
        name = os.path.basename(path).split(_CLAIM_SEP, 1)[0]
        target = os.path.join(self.quarantine_dir,
                              name + _DAMAGED_SUFFIX)
        self._io_call("quarantine",
                      lambda: self.io.makedirs(self.quarantine_dir))
        try:
            self._io_call("quarantine",
                          lambda: self.io.replace(path, target))
        except FileNotFoundError:
            return  # vanished mid-scan: someone else settled it
        warnings.warn(
            f"lease file {path} was unparseable ({exc}); moved to "
            f"{target} -- resume will re-post the lease from the plan",
            stacklevel=2)

    def _quarantine_poison(self, lease: Lease, reason: str,
                           worker_id: Optional[str] = None) -> None:
        """Declare a lease poison: park it with a diagnosis instead of
        reassigning it forever."""
        diag = lease.to_dict()
        diag["reason"] = reason
        diag["worker"] = worker_id
        self._io_call("quarantine",
                      lambda: self.io.makedirs(self.quarantine_dir))
        self._write_json(
            "quarantine",
            os.path.join(self.quarantine_dir, f"{lease.lease_id}.json"),
            diag)
        warnings.warn(
            f"lease {lease.lease_id} quarantined after attempt "
            f"{lease.attempt} (budget {self.quarantine_after}): {reason}",
            stacklevel=2)

    def _repair(self, leases: Sequence[Lease]) -> None:
        """Resume repair: every lease must be pending, leased, done, or
        poison-quarantined; orphaned claims go back to pending with
        their attempt bumped; damaged files are quarantined and the
        lease re-posted pristine."""
        for name in sorted(self._io_call(
                "expire", lambda: self.io.listdir(self.leased_dir))):
            self._requeue(os.path.join(self.leased_dir, name))
        for name in sorted(self._io_call(
                "claim-scan", lambda: self.io.listdir(self.pending_dir))):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.pending_dir, name)
            try:
                Lease.from_dict(self._read_payload("claim-read", path))
            except FileNotFoundError:
                continue
            except (FFISError, ValueError) as exc:
                self._quarantine_damaged(path, exc)
        settled = set(self._io_call(
            "claim-scan", lambda: self.io.listdir(self.pending_dir)))
        settled |= set(self._io_call(
            "claim-scan", lambda: self.io.listdir(self.done_dir)))
        settled |= self._quarantined_poison_names()
        for lease in leases:
            if f"{lease.lease_id}.json" not in settled:
                self._post(lease)

    # -- worker side ------------------------------------------------------------

    def verify_plan(self, plan) -> None:
        verify_manifest(plan, self.manifest, where=self.root)

    def claim(self, worker_id: str) -> Optional[Claim]:
        """Atomically claim one pending lease, oldest-posted first.

        Returns ``None`` when nothing is pending right now -- which
        does **not** mean the campaign is over: a claimed lease may yet
        expire back into ``pending/``.  Callers poll until
        :meth:`finished` or :meth:`settled`.

        A pending file whose payload turns out to be unparseable is
        quarantined with a warning and skipped -- one corrupt entry
        must not kill the worker that happened to claim it.
        """
        _check_worker_id(worker_id)
        try:
            names = sorted(self._io_call(
                "claim-scan", lambda: self.io.listdir(self.pending_dir)))
        except FileNotFoundError:
            return None
        for name in names:
            if not name.endswith(".json"):
                continue
            done = os.path.join(self.done_dir, name)
            source = os.path.join(self.pending_dir, name)
            if self.io.exists(done):
                # A completion raced an expiry re-post: the work is
                # done, the stale pending copy is noise.
                try:
                    self.io.unlink(source)
                except FileNotFoundError:
                    pass
                continue
            target = os.path.join(self.leased_dir,
                                  f"{name}{_CLAIM_SEP}{worker_id}")
            try:
                self._io_call("claim-rename",
                              lambda: self.io.replace(source, target))
            except (FileNotFoundError, OSError):
                continue  # another worker won this lease; try the next
            self._io_call("heartbeat", lambda: self.io.utime(target))
            try:
                lease = Lease.from_dict(
                    self._read_payload("claim-read", target))
            except FileNotFoundError:
                continue  # expired out from under us already
            except (FFISError, ValueError, OSError) as exc:
                self._quarantine_damaged(target, exc)
                continue
            return Claim(lease=lease, path=target, worker_id=worker_id)
        return None

    def heartbeat(self, claim: Claim) -> None:
        """Refresh the claim's liveness stamp (kernel time; the worker
        itself never reads a clock)."""
        try:
            self._io_call("heartbeat", lambda: self.io.utime(claim.path))
        except FileNotFoundError:
            pass  # expired out from under us; completion will notice

    def complete(self, claim: Claim) -> None:
        """Settle the claim: record completion, then release the lease.

        Written in that order so a SIGKILL between the two steps leaves
        a ``done/`` file the expiry scan treats as authoritative (the
        orphaned claim is cleaned up, not re-executed).
        """
        done = claim.lease.to_dict()
        done["worker"] = claim.worker_id
        self._write_json(
            "complete",
            os.path.join(self.done_dir, f"{claim.lease.lease_id}.json"),
            done)
        try:
            self.io.unlink(claim.path)
        except FileNotFoundError:
            pass  # the lease expired and was re-posted; dedup absorbs it

    def fail(self, claim: Claim, reason: str) -> None:
        """Give up on a claim after an infrastructure failure.

        The lease goes straight back to pending with its attempt
        bumped (no TTL wait), unless the bump would reach the
        quarantine budget -- then it is declared poison with *reason*
        as the diagnosis.  Either way the claiming worker is free to
        take other work, which is what keeps one bad lease from
        pinning a fleet.
        """
        lease = claim.lease.reassigned()
        if lease.attempt >= self.quarantine_after:
            self._quarantine_poison(lease, reason,
                                    worker_id=claim.worker_id)
        else:
            self._write_json(
                "post",
                os.path.join(self.pending_dir,
                             f"{lease.lease_id}.json"),
                lease.to_dict())
        try:
            self.io.unlink(claim.path)
        except FileNotFoundError:
            pass  # expired concurrently; the re-post wins either way

    # -- shards -----------------------------------------------------------------

    def segment_path(self, worker_id: str, lease_id: str) -> str:
        """Where the records of one (lease, worker) execution land.

        Per-lease segments (rather than one append-mode file per
        worker) mean a crashed execution's partial output never enters
        the merge set: only segments published whole via
        :meth:`publish_segment` carry the ``.jsonl`` suffix.
        """
        return os.path.join(
            self.shards_dir,
            f"seg-{lease_id}{_CLAIM_SEP}"
            f"{_check_worker_id(worker_id)}.jsonl")

    def publish_segment(self, path: str) -> None:
        """Atomically publish the finished segment written at
        ``path + '.tmp'`` (the writer has already flushed + fsynced)."""
        self._io_call("segment-publish",
                      lambda: self.io.replace(path + ".tmp", path))

    def shard_paths(self) -> List[str]:
        try:
            names = sorted(self._io_call(
                "merge-scan", lambda: self.io.listdir(self.shards_dir)))
        except FileNotFoundError:
            return []
        return [os.path.join(self.shards_dir, name)
                for name in names if name.endswith(".jsonl")]

    # -- coordinator side -------------------------------------------------------

    def _requeue(self, path: str) -> Optional[Lease]:
        """Move one leased entry back to pending (attempt bumped), or
        quarantine it if the bump exhausts the attempt budget."""
        name = os.path.basename(path).rsplit(_CLAIM_SEP, 1)[0]
        if self.io.exists(os.path.join(self.done_dir, name)):
            # Completed but not released (killed between the two steps
            # of complete()): just clean up the orphaned claim.
            try:
                self.io.unlink(path)
            except FileNotFoundError:
                pass
            return None
        try:
            lease = Lease.from_dict(
                self._read_payload("expire-read", path)).reassigned()
        except FileNotFoundError:
            return None  # claim vanished mid-scan (completed or expired)
        except (FFISError, ValueError, OSError) as exc:
            self._quarantine_damaged(path, exc)
            return None
        if lease.attempt >= self.quarantine_after:
            self._quarantine_poison(
                lease, "lease expired past its attempt budget; the "
                "assigned workers keep dying on it")
            try:
                self.io.unlink(path)
            except FileNotFoundError:
                pass
            return None
        self._write_json(
            "post", os.path.join(self.pending_dir, name), lease.to_dict())
        try:
            self.io.unlink(path)
        except FileNotFoundError:
            pass
        return lease

    def expire_stale(self, ttl_seconds: float,
                     now: Optional[float] = None) -> List[Lease]:
        """Re-post every claim whose heartbeat is older than the TTL.

        The re-executed range may duplicate records a dead (or merely
        slow) worker already wrote -- the merge step deduplicates by
        ``(campaign, run index)``, so reassignment is always safe, just
        potentially wasteful.  A claim unlinked between the scan and
        the stat (its worker completed it) is skipped, never an error.
        Returns the re-posted leases.
        """
        if now is None:
            # repro: allow[R001] lease liveness vs file mtimes; never recorded
            now = time.time()
        requeued: List[Lease] = []
        try:
            names = sorted(self._io_call(
                "expire", lambda: self.io.listdir(self.leased_dir)))
        except FileNotFoundError:
            return requeued
        for name in names:
            path = os.path.join(self.leased_dir, name)
            try:
                age = now - self.io.getmtime(path)
            except OSError:
                continue  # completed or already expired mid-scan
            base = name.rsplit(_CLAIM_SEP, 1)[0]
            if self.io.exists(os.path.join(self.done_dir, base)):
                self._requeue(path)  # cleanup path: done is authoritative
                continue
            if age > ttl_seconds:
                lease = self._requeue(path)
                if lease is not None:
                    requeued.append(lease)
        return requeued

    # -- progress ---------------------------------------------------------------

    def _count(self, directory: str) -> int:
        try:
            return sum(1 for name in self.io.listdir(directory)
                       if name.endswith(".json"))
        except (FileNotFoundError, OSError):
            return 0

    def counts(self) -> Dict[str, int]:
        return {"pending": self._count(self.pending_dir),
                "leased": len(self._leased_names()),
                "done": self._count(self.done_dir),
                "quarantined": self._quarantined_count(),
                "total": len(self.lease_ids)}

    def _leased_names(self) -> List[str]:
        try:
            return [name for name in self.io.listdir(self.leased_dir)
                    if _CLAIM_SEP in name]
        except (FileNotFoundError, OSError):
            return []

    def _quarantined_count(self) -> int:
        try:
            return len(self.io.listdir(self.quarantine_dir))
        except (FileNotFoundError, OSError):
            return 0

    def _quarantined_poison_names(self) -> set:
        """Lease filenames parked with a poison diagnosis (resume does
        not re-post these -- delete the diagnosis file to retry)."""
        try:
            names = self.io.listdir(self.quarantine_dir)
        except (FileNotFoundError, OSError):
            return set()
        return {name for name in names if name.endswith(".json")}

    def _quarantined_lease_names(self) -> set:
        """Every lease filename with *any* quarantine entry (poison or
        damaged) -- the holes the campaign settles around."""
        try:
            names = self.io.listdir(self.quarantine_dir)
        except (FileNotFoundError, OSError):
            return set()
        settled = set()
        for name in names:
            if name.endswith(_DAMAGED_SUFFIX):
                # A damaged *claim* keeps its --worker suffix; strip it
                # so the entry maps back to its lease filename.
                stem = name[:-len(_DAMAGED_SUFFIX)]
                settled.add(stem.rsplit(_CLAIM_SEP, 1)[0])
            elif name.endswith(".json"):
                settled.add(name)
        return settled

    def quarantined(self) -> List[Dict[str, Any]]:
        """Diagnostic payloads of every quarantined lease, in lease-id
        order; damaged (unparseable) entries report as such."""
        out: List[Dict[str, Any]] = []
        try:
            names = sorted(self.io.listdir(self.quarantine_dir))
        except (FileNotFoundError, OSError):
            return out
        for name in names:
            path = os.path.join(self.quarantine_dir, name)
            if name.endswith(".json"):
                try:
                    out.append(self._read_payload("quarantine", path))
                    continue
                except (OSError, ValueError):
                    pass
            stem = name[:-len(_DAMAGED_SUFFIX)] \
                if name.endswith(_DAMAGED_SUFFIX) else name
            stem = stem.rsplit(_CLAIM_SEP, 1)[0]
            if stem.endswith(".json"):
                stem = stem[:-len(".json")]
            out.append({"lease_id": stem,
                        "reason": "unparseable lease file quarantined"})
        return out

    def all_done(self) -> bool:
        """Every manifest lease has a completion record."""
        try:
            done = set(self.io.listdir(self.done_dir))
        except (FileNotFoundError, OSError):
            return False
        return all(f"{lease_id}.json" in done for lease_id in self.lease_ids)

    def settled(self) -> bool:
        """Every manifest lease is either done or quarantined: the
        campaign cannot make further progress and should wrap up
        (fully if ``all_done``, partially otherwise)."""
        try:
            done = set(self.io.listdir(self.done_dir))
        except (FileNotFoundError, OSError):
            return False
        done |= self._quarantined_lease_names()
        return all(f"{lease_id}.json" in done for lease_id in self.lease_ids)

    def idle(self) -> bool:
        """Nothing pending and nothing claimed (not necessarily done --
        a crashed queue can be idle with work missing)."""
        return self._count(self.pending_dir) == 0 \
            and not self._leased_names()

    def mark_finished(self) -> None:
        def publish() -> None:
            f = self.io.open_w(self.finished_path)
            try:
                self.io.write(f, b"finished\n")
            finally:
                f.close()

        self._io_call("finish", publish)

    def finished(self) -> bool:
        return self.io.exists(self.finished_path)


def _bootstrap_manifest(path: str, manifest: Dict[str, Any]) -> None:
    """First write of a fresh queue's manifest (plain filesystem: the
    queue object that would carry the seam cannot exist before the
    manifest does)."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
