"""Injectable infrastructure faults for the distributed engine.

The paper's whole method is injecting storage-stack faults under an
application and watching what breaks; this module turns that method on
the campaign engine itself.  :class:`QueueIO` is the seam: every
filesystem call the lease queue, the workers' shard writers, and the
merge publisher make goes through one injectable object instead of
``os`` directly.  :class:`FaultyIO` is the fault-injecting
implementation -- seeded, deterministic, and schedulable by site and
probability -- so a chaos test can replay the exact same ``ENOSPC`` at
the exact same claim on every run.

Fault kinds mirror the paper's device taxonomy, lifted to the queue's
own I/O:

* ``error`` -- the call raises ``OSError(errno)`` (``ENOSPC``, ``EIO``,
  ``EACCES``...) without touching the filesystem;
* ``torn`` -- a write persists only a prefix of its payload, then
  raises: the shorn-write model applied to shard lines and lease JSON;
* ``crash`` -- the call *succeeds*, then raises :class:`ChaosCrash`:
  the process died immediately after the syscall (rename-then-crash is
  ``site="replace", kind="crash"``);
* ``stale`` -- a directory listing returns the *previous* snapshot of
  that directory, reproducing NFS-attribute-cache races where a peer's
  unlink is not yet visible;
* ``slow`` -- the call succeeds after an injected latency, which is how
  lease-claim and shard-finalize timeouts get exercised.

Determinism discipline (lint R001/R002): injection decisions are pure
hashes of ``(seed, site, spec index, call counter)`` via
:func:`repro.util.rngstream.derive_seed` -- no ``random`` module, no
clock, no numpy generator outside the named-substream rule -- so the
schedule is a function of the seed and the call sequence alone.
"""

from __future__ import annotations

import errno as _errno
import os
import time
from dataclasses import dataclass
from typing import IO, Dict, List, Optional, Sequence, Tuple

from repro.errors import FFISError
from repro.util.rngstream import derive_seed

#: Every site a :class:`FaultSpec` may name; one per :class:`QueueIO`
#: operation that can fail distinctly in the wild.
SITES: Tuple[str, ...] = (
    "listdir", "exists", "getmtime", "utime", "replace", "unlink",
    "makedirs", "read", "open", "write", "fsync",
)

_KINDS = ("error", "torn", "crash", "stale", "slow")


class ChaosCrash(Exception):
    """The injected process death: the preceding syscall completed, the
    process did not.  Workers treat it exactly like a SIGKILL -- no
    cleanup, no lease release -- so every crash-recovery path is
    exercised without actually forking a victim."""


class QueueIO:
    """The real filesystem, one overridable method per queue syscall.

    This is the injection seam: the dist stack never calls ``os``
    directly for queue/shard/merge state, it calls these methods on
    whatever ``io`` object it was handed.  The default implementation
    is a thin pass-through; :class:`FaultyIO` subclasses it to inject.
    """

    def listdir(self, path: str) -> List[str]:
        return os.listdir(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def getmtime(self, path: str) -> float:
        return os.path.getmtime(path)

    def utime(self, path: str) -> None:
        os.utime(path, None)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as f:
            return f.read()

    def open_w(self, path: str, append: bool = False) -> IO[bytes]:
        return open(path, "ab" if append else "wb")

    def write(self, f: IO[bytes], data: bytes) -> None:
        f.write(data)
        f.flush()

    def fsync(self, f: IO[bytes]) -> None:
        f.flush()
        os.fsync(f.fileno())


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault family at one I/O site.

    ``probability`` is evaluated per call at the site (deterministically
    -- see module docstring); ``match`` restricts injection to paths
    containing the substring, which is how a test poisons one specific
    lease's shard writes; ``max_faults`` bounds the total injections so
    a schedule provably leaves the queue drainable.
    """

    site: str
    kind: str = "error"
    err: int = _errno.EIO
    probability: float = 1.0
    match: str = ""
    max_faults: Optional[int] = None
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FFISError(
                f"unknown fault site {self.site!r}; sites: {SITES}")
        if self.kind not in _KINDS:
            raise FFISError(
                f"unknown fault kind {self.kind!r}; kinds: {_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise FFISError(
                f"fault probability must be in [0, 1], got "
                f"{self.probability}")


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault, for diagnostics and schedule assertions."""

    site: str
    index: int          #: the site's call counter when this fired
    kind: str
    path: str
    detail: str = ""


class FaultyIO(QueueIO):
    """A :class:`QueueIO` that injects a seeded, deterministic fault
    schedule.

    Per-site call counters advance on *every* call (injected or not),
    so the schedule is stable under code that merely re-reads state.
    Injected events accumulate in :attr:`events` in call order -- the
    machine-readable schedule the chaos suite asserts against.
    """

    def __init__(self, seed: int, faults: Sequence[FaultSpec], *,
                 sleep=time.sleep) -> None:
        self.seed = int(seed)
        self.faults = tuple(faults)
        self.events: List[ChaosEvent] = []
        self._sleep = sleep
        self._calls: Dict[str, int] = {}
        self._shot: Dict[int, int] = {}      # spec index -> faults fired
        self._snapshots: Dict[str, List[str]] = {}

    # -- the schedule ----------------------------------------------------------

    def _roll(self, site: str, path: str) -> Optional[Tuple[int, FaultSpec]]:
        index = self._calls.get(site, 0)
        self._calls[site] = index + 1
        for spec_index, spec in enumerate(self.faults):
            if spec.site != site:
                continue
            if spec.match and spec.match not in path:
                continue
            if spec.max_faults is not None and \
                    self._shot.get(spec_index, 0) >= spec.max_faults:
                continue
            unit = derive_seed(self.seed, "chaos", site, spec_index,
                               index) % 10**6 / 10**6
            if unit < spec.probability:
                self._shot[spec_index] = self._shot.get(spec_index, 0) + 1
                return index, spec
        return None

    def _fire(self, site: str, path: str, spec: FaultSpec, index: int,
              detail: str = "") -> None:
        self.events.append(ChaosEvent(site=site, index=index,
                                      kind=spec.kind, path=path,
                                      detail=detail))

    def _inject(self, site: str, path: str):
        """Roll for *site*; raise/delay per the winning spec.

        Returns the winning ``(index, spec)`` for kinds the caller must
        finish itself (``crash`` fires *after* the real op, ``torn``
        needs the payload, ``stale`` needs the snapshot), else ``None``.
        """
        hit = self._roll(site, path)
        if hit is None:
            return None
        index, spec = hit
        if spec.kind == "error":
            self._fire(site, path, spec, index,
                       detail=_errno.errorcode.get(spec.err, str(spec.err)))
            raise OSError(spec.err, f"injected {site} fault", path)
        if spec.kind == "slow":
            self._fire(site, path, spec, index,
                       detail=f"latency={spec.latency}")
            self._sleep(spec.latency)
            return None
        return hit

    # -- injected operations ---------------------------------------------------

    def listdir(self, path: str) -> List[str]:
        hit = self._inject("listdir", path)
        if hit is not None and hit[1].kind == "stale":
            index, spec = hit
            stale = self._snapshots.get(path)
            if stale is not None:
                self._fire("listdir", path, spec, index,
                           detail=f"stale snapshot of {len(stale)} names")
                return list(stale)
        names = super().listdir(path)
        self._snapshots[path] = list(names)
        if hit is not None and hit[1].kind == "crash":
            index, spec = hit
            self._fire("listdir", path, spec, index)
            raise ChaosCrash(f"injected crash after listdir({path})")
        return names

    def exists(self, path: str) -> bool:
        self._inject("exists", path)
        return super().exists(path)

    def getmtime(self, path: str) -> float:
        self._inject("getmtime", path)
        return super().getmtime(path)

    def utime(self, path: str) -> None:
        hit = self._inject("utime", path)
        super().utime(path)
        if hit is not None and hit[1].kind == "crash":
            index, spec = hit
            self._fire("utime", path, spec, index)
            raise ChaosCrash(f"injected crash after utime({path})")

    def replace(self, src: str, dst: str) -> None:
        hit = self._inject("replace", dst)
        super().replace(src, dst)
        if hit is not None and hit[1].kind == "crash":
            index, spec = hit
            self._fire("replace", dst, spec, index,
                       detail="rename-then-crash")
            raise ChaosCrash(
                f"injected crash after replace({src} -> {dst})")

    def unlink(self, path: str) -> None:
        hit = self._inject("unlink", path)
        super().unlink(path)
        if hit is not None and hit[1].kind == "crash":
            index, spec = hit
            self._fire("unlink", path, spec, index)
            raise ChaosCrash(f"injected crash after unlink({path})")

    def makedirs(self, path: str) -> None:
        self._inject("makedirs", path)
        super().makedirs(path)

    def read_bytes(self, path: str) -> bytes:
        hit = self._inject("read", path)
        data = super().read_bytes(path)
        if hit is not None and hit[1].kind == "torn":
            index, spec = hit
            self._fire("read", path, spec, index,
                       detail=f"short read {len(data) // 2}/{len(data)}")
            return data[:len(data) // 2]
        return data

    def open_w(self, path: str, append: bool = False) -> IO[bytes]:
        self._inject("open", path)
        return super().open_w(path, append=append)

    def write(self, f: IO[bytes], data: bytes) -> None:
        path = getattr(f, "name", "")
        hit = self._inject("write", str(path))
        if hit is not None and hit[1].kind == "torn":
            index, spec = hit
            torn = data[:len(data) // 2]
            super().write(f, torn)
            self._fire("write", str(path), spec, index,
                       detail=f"torn write {len(torn)}/{len(data)}")
            raise OSError(spec.err, "injected torn write", str(path))
        super().write(f, data)
        if hit is not None and hit[1].kind == "crash":
            index, spec = hit
            self._fire("write", str(path), spec, index)
            raise ChaosCrash(f"injected crash after write({path})")

    def fsync(self, f: IO[bytes]) -> None:
        self._inject("fsync", str(getattr(f, "name", "")))
        super().fsync(f)
