"""Declarative run plans: *what* a campaign wants executed.

A campaign is thousands of independent mount → inject → execute →
classify runs.  The planner side (``Campaign``, ``MetadataCampaign``)
describes each run as a :class:`RunSpec` -- a small, picklable value
object naming the fault site and the per-run RNG seed -- and bundles
them with an :class:`ExecutionContext` into a :class:`RunPlan`.  The
executor side (:mod:`repro.core.engine.executor`) then realizes the plan
serially or across worker processes; because a spec is pure data and the
per-run seed is derived by name (:class:`repro.util.rngstream.RngStream`),
the two execution styles produce record-for-record identical outcomes.
"""

from __future__ import annotations

import hashlib
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Protocol, Sequence, Tuple

from repro.apps.base import GoldenRecord, HpcApplication
from repro.fusefs.vfs import FFISFileSystem

FsFactory = Callable[[], FFISFileSystem]


def golden_digest(golden: GoldenRecord) -> str:
    """Short content digest of a golden record's output bytes.

    Two campaigns over "the same app" are only the same campaign if
    their fault-free outputs are bit-identical -- the app name alone
    can't tell a 24^3 Nyx from a 64^3 one.  Checkpoint identities
    embed this digest so resume refuses such a mismatch.
    """
    h = hashlib.sha256()
    for path in sorted(golden.outputs):
        h.update(path.encode("utf-8"))
        h.update(b"\0")
        h.update(golden.outputs[path])
    return h.hexdigest()[:12]


@dataclass(frozen=True)
class RunSpec:
    """One planned fault-injection run, fully declarative and picklable.

    ``seed`` is the run's private RNG seed (already derived from the
    campaign master seed by name, so specs carry no generator state).
    The metadata-sweep fields (``byte_offset``/``bit_index``/
    ``field_name``) are ``None`` for instance-targeted campaigns.

    Multi-fault scenarios (:mod:`repro.core.scenario`) stamp the spec
    with their planned injection points (``instances``) and compact
    textual identity (``scenario``); both stay ``None`` for legacy
    single-fault plans, whose specs -- and therefore records and
    checkpoint lines -- are bit-identical to the pre-scenario engine.
    ``target_instance`` remains the first planned point for
    backward-compatible reports.
    """

    run_index: int
    seed: int = 0
    target_instance: int = -1
    phase: Optional[str] = None
    byte_offset: Optional[int] = None
    bit_index: Optional[int] = None
    field_name: Optional[str] = None
    instances: Optional[Tuple[int, ...]] = None
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if self.instances is not None and not isinstance(self.instances, tuple):
            object.__setattr__(self, "instances", tuple(self.instances))


class ArmedHook(Protocol):
    """What :meth:`ExecutionContext.arm` must return.

    Any object with a ``fired`` flag (did the fault actually trigger?)
    and a ``note`` string (model-specific detail for the record) works;
    :class:`repro.core.injector.InjectionHook` is the canonical one.
    """

    fired: bool
    note: str


class ExecutionContext(ABC):
    """Everything a worker needs to execute any spec of one plan.

    Instances must be picklable: a :class:`ParallelExecutor` ships one
    context per worker process and then streams bare specs to it.  The
    context owns the application under test, the golden record the run
    is classified against, and the campaign-specific way of arming a
    corruption hook on a fresh file system.
    """

    #: Appended to ``detail`` when the armed fault never triggered
    #: (kept textual for backward-compatible reports; the structured
    #: truth lives in ``RunRecord.fault_fired``).
    not_fired_note: str = "[warning: fault never fired]"

    #: Prefix-replay switch: ``None`` defers to the engine default
    #: (enabled unless the ``REPRO_NO_REPLAY`` environment variable is
    #: set -- the universal escape hatch), ``False`` forces cold runs.
    replay: Optional[bool] = None

    def __init__(self, app: HpcApplication, golden: GoldenRecord,
                 fs_factory: FsFactory = FFISFileSystem) -> None:
        self.app = app
        self.golden = golden
        self.fs_factory = fs_factory

    @abstractmethod
    def arm(self, fs: FFISFileSystem, spec: RunSpec) -> ArmedHook:
        """Attach this plan's corruption hook for *spec* to a fresh fs."""

    @property
    def replay_enabled(self) -> bool:
        if self.replay is not None:
            return self.replay
        return not os.environ.get("REPRO_NO_REPLAY")

    def replay_constraint(self, spec: RunSpec):
        """The spec's :class:`repro.core.engine.replay.ReplayConstraint`.

        ``None`` (the default) means the engine cannot reason about
        this context's injection points and must execute the run cold
        -- unknown contexts are automatically replay-safe by never
        being replayed.
        """
        return None

    def post_execute(self, mp, spec: RunSpec, hook: ArmedHook) -> None:
        """At-rest seam: runs after the application's last stage and
        before classification.  The default gives hooks with a
        ``finalize`` method (at-rest decay) their primitive-free firing
        point; contexts may override for custom between-stage faults."""
        finalize = getattr(hook, "finalize", None)
        if finalize is not None:
            finalize()


@dataclass(frozen=True)
class RunPlan:
    """An execution context plus the ordered specs to run under it."""

    context: ExecutionContext
    specs: Tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def subset(self, specs: Sequence[RunSpec]) -> "RunPlan":
        """The same context over a reduced spec list (resume support)."""
        return RunPlan(context=self.context, specs=tuple(specs))
