"""Executing run specs: the one mount/execute/classify loop body.

:func:`execute_run_spec` is the single implementation of the per-run
bookkeeping that ``Campaign.run_once`` and ``MetadataCampaign.run_case``
used to duplicate: arm the hook, mount a fresh file system, execute the
application, classify against the golden record, fold crashes into the
outcome taxonomy, and record whether the fault actually fired.

:func:`execute_plan` drives a whole :class:`RunPlan` through an
executor, streaming every finished record into the result sinks (tally,
JSONL checkpoint) as it completes and skipping run indices already
present in a resumed results file.  It is implemented as a single-cell
:func:`repro.core.engine.sweep.execute_sweep`, so campaign-level and
sweep-level checkpoints share one on-disk format and one resume path.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.engine.executor import Executor
from repro.core.engine.plan import ExecutionContext, RunPlan, RunSpec
from repro.core.engine.sink import ResultSink
from repro.core.outcomes import Outcome, RunRecord
from repro.errors import FFISError
from repro.fusefs.mount import mount

Progress = Callable[[int, int], None]


def execute_run_spec(context: ExecutionContext, spec: RunSpec) -> RunRecord:
    """Execute one planned run and classify its outcome.

    This is deterministic in (context, spec): the only randomness is the
    spec's private seed, so the same spec yields the same record whether
    it runs in-process or in a pool worker.  When the context's golden
    record carries a replay image, the run starts from the last golden
    snapshot before its first injection point and fast-forwards any
    suffix steps the fault provably cannot influence
    (:mod:`repro.core.engine.replay`); the record stream is
    byte-identical to cold execution either way.
    """
    from repro.core.engine.replay import try_replay_execute

    fs = context.fs_factory()
    hook = context.arm(fs, spec)
    record = RunRecord(run_index=spec.run_index, outcome=Outcome.BENIGN,
                       target_instance=spec.target_instance,
                       phase=spec.phase, byte_offset=spec.byte_offset,
                       bit_index=spec.bit_index, field_name=spec.field_name,
                       instances=spec.instances, scenario=spec.scenario)
    try:
        with mount(fs) as mp:
            if not try_replay_execute(context, spec, fs, mp):
                context.app.execute(mp)
            # At-rest seam: scenarios that corrupt persisted bytes with
            # no primitive in flight fire here, between the last
            # application stage and its post-analysis.
            context.post_execute(mp, spec, hook)
            outcome, detail = context.app.classify(context.golden, mp)
        record.outcome = outcome
        record.detail = f"{detail}; {hook.note}" if hook.note else detail
    except FFISError:
        raise  # framework misuse is never an experimental outcome
    except Exception as exc:  # noqa: BLE001 - crash taxonomy by design
        record.outcome = Outcome.CRASH
        detail = f"{type(exc).__name__}: {exc}"
        record.detail = f"{detail}; {hook.note}" if hook.note else detail
    record.fault_fired = bool(hook.fired)
    if not record.fault_fired:
        record.detail = (record.detail + " " + context.not_fired_note).strip()
    return record


def execute_plan(plan: RunPlan, *,
                 executor: Optional[Executor] = None,
                 workers: int = 1,
                 chunk_size: Optional[int] = None,
                 results_path: Optional[str] = None,
                 resume: bool = False,
                 campaign_id: Optional[str] = None,
                 progress: Optional[Progress] = None,
                 sinks: Sequence[ResultSink] = ()) -> List[RunRecord]:
    """Run every spec of *plan*, streaming records through the sinks.

    * ``workers`` selects the executor (``>1`` forks a process pool)
      unless an explicit ``executor`` is passed.
    * ``results_path`` persists each record as one JSONL line the moment
      it completes, so an interrupted campaign loses at most the runs in
      flight.
    * ``resume=True`` reads ``results_path`` first and executes only the
      run indices not already recorded there; the returned list merges
      old and new records in run order, identical to an uninterrupted
      campaign.
    * ``campaign_id`` stamps every persisted line with the campaign's
      identity (app/model/seed/...); a resume against a checkpoint
      stamped with a different identity is refused rather than merged.
    """
    from repro.core.engine.sweep import SweepCell, SweepPlan, execute_sweep

    cell = SweepCell(key="plan", plan=plan, campaign_id=campaign_id)
    result = execute_sweep(SweepPlan(cells=(cell,)), executor=executor,
                           workers=workers, chunk_size=chunk_size,
                           results_path=results_path,
                           resume=resume, progress=progress, sinks=sinks)
    return result.records[cell.key]
