"""Executing run specs: the one mount/execute/classify loop body.

:func:`execute_run_spec` is the single implementation of the per-run
bookkeeping that ``Campaign.run_once`` and ``MetadataCampaign.run_case``
used to duplicate: arm the hook, mount a fresh file system, execute the
application, classify against the golden record, fold crashes into the
outcome taxonomy, and record whether the fault actually fired.

:func:`execute_plan` drives a whole :class:`RunPlan` through an
executor, streaming every finished record into the result sinks (tally,
JSONL checkpoint) as it completes and skipping run indices already
present in a resumed results file.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence

from repro.core.engine.executor import Executor, make_executor
from repro.core.engine.plan import ExecutionContext, RunPlan, RunSpec
from repro.core.engine.sink import JsonlSink, ResultSink, load_records
from repro.core.outcomes import Outcome, RunRecord
from repro.errors import FFISError
from repro.fusefs.mount import mount

Progress = Callable[[int, int], None]


def execute_run_spec(context: ExecutionContext, spec: RunSpec) -> RunRecord:
    """Execute one planned run and classify its outcome.

    This is deterministic in (context, spec): the only randomness is the
    spec's private seed, so the same spec yields the same record whether
    it runs in-process or in a pool worker.
    """
    fs = context.fs_factory()
    hook = context.arm(fs, spec)
    record = RunRecord(run_index=spec.run_index, outcome=Outcome.BENIGN,
                       target_instance=spec.target_instance,
                       phase=spec.phase, byte_offset=spec.byte_offset,
                       bit_index=spec.bit_index, field_name=spec.field_name)
    try:
        with mount(fs) as mp:
            context.app.execute(mp)
            outcome, detail = context.app.classify(context.golden, mp)
        record.outcome = outcome
        record.detail = f"{detail}; {hook.note}" if hook.note else detail
    except FFISError:
        raise  # framework misuse is never an experimental outcome
    except Exception as exc:  # noqa: BLE001 - crash taxonomy by design
        record.outcome = Outcome.CRASH
        detail = f"{type(exc).__name__}: {exc}"
        record.detail = f"{detail}; {hook.note}" if hook.note else detail
    record.fault_fired = bool(hook.fired)
    if not record.fault_fired:
        record.detail = (record.detail + " " + context.not_fired_note).strip()
    return record


def execute_plan(plan: RunPlan, *,
                 executor: Optional[Executor] = None,
                 workers: int = 1,
                 results_path: Optional[str] = None,
                 resume: bool = False,
                 campaign_id: Optional[str] = None,
                 progress: Optional[Progress] = None,
                 sinks: Sequence[ResultSink] = ()) -> List[RunRecord]:
    """Run every spec of *plan*, streaming records through the sinks.

    * ``workers`` selects the executor (``>1`` forks a process pool)
      unless an explicit ``executor`` is passed.
    * ``results_path`` persists each record as one JSONL line the moment
      it completes, so an interrupted campaign loses at most the runs in
      flight.
    * ``resume=True`` reads ``results_path`` first and executes only the
      run indices not already recorded there; the returned list merges
      old and new records in run order, identical to an uninterrupted
      campaign.
    * ``campaign_id`` stamps every persisted line with the campaign's
      identity (app/model/seed/...); a resume against a checkpoint
      stamped with a different identity is refused rather than merged.
    """
    if resume and results_path is None:
        raise FFISError("resume=True requires results_path")
    chosen = executor if executor is not None else make_executor(workers)

    existing: List[RunRecord] = []
    if resume and os.path.exists(results_path):
        wanted = {spec.run_index for spec in plan.specs}
        existing = [r for r in load_records(results_path, campaign_id)
                    if r.run_index in wanted]
    done = {record.run_index for record in existing}
    pending = plan if not done else plan.subset(
        [spec for spec in plan.specs if spec.run_index not in done])

    all_sinks: List[ResultSink] = list(sinks)
    if results_path is not None:
        all_sinks.append(JsonlSink(results_path, append=bool(existing),
                                   campaign_id=campaign_id))

    records: List[RunRecord] = list(existing)
    total = len(plan)
    completed = len(existing)
    stream = chosen.map(pending)
    try:
        for record in stream:
            for sink in all_sinks:
                sink.emit(record)
            records.append(record)
            completed += 1
            if progress is not None:
                progress(completed, total)
    finally:
        # Tear the executor down before closing the sinks so an
        # interrupted parallel campaign cancels its pending runs
        # promptly instead of racing a closed checkpoint file.
        close = getattr(stream, "close", None)
        if close is not None:
            close()
        for sink in all_sinks:
            sink.close()
    records.sort(key=lambda record: record.run_index)
    return records
