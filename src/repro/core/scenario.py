"""Composable fault scenarios: *sets* of injection points per run.

The paper deliberately restricts itself to a single fault per run: the
:class:`repro.core.injector.InjectionHook` fires at exactly one dynamic
instance of one primitive.  Real storage faults arrive correlated --
sector-local bursts from one failing device region, repeated shorn
writes, and at-rest decay of bytes sitting on the device between
workflow stages.  A :class:`FaultScenario` generalizes the injector to
a *plan of injection points* while keeping the single-fault case
bit-identical to the classic engine.

Scenario -> paper threat-model mapping
======================================

==================  =====================================================
Scenario            Paper threat model (conf_cluster_FangWJKZGBKT21)
==================  =====================================================
``SingleFault``     The paper's model: one fault model applied at one
                    uniformly random dynamic instance per run (Sec. III,
                    requirement R4).  Bit-identical to the pre-scenario
                    engine -- same RNG draws, same records, same JSONL.
``KFaults``         Sec. VI's discussion of correlated device errors:
                    ``k`` faults drawn from one profile window.  With
                    ``correlated_window=W`` the k points cluster inside a
                    W-instance span (sector/phase locality of a failing
                    device region) instead of spreading uniformly.
``BurstFault``      A burst from one failing region: ``length``
                    *consecutive* dynamic instances of the primitive all
                    corrupted -- the repeated-shorn-write manifestation
                    the paper attributes to a single bad device.
``AtRestDecay``     At-rest corruption (Sec. II's "data at rest" threat):
                    persisted file bytes decay *between* application
                    stages, with no primitive in flight.  Applied
                    directly through the VFS backend, so profiling and
                    the write-path fault models never observe it.
==================  =====================================================

Determinism contract
====================

Scenarios draw their per-run injection points from the campaign's shared
``instances`` picker stream in run order, so planning stays executor
independent.  At fire time, point ``j`` (in ascending-seqno order)
derives its model RNG by *name* from the run's private seed --
``RngStream(seed)`` for point 0 (exactly the single-fault stream, which
keeps ``SingleFault`` and the first point of every scenario
bit-compatible with the classic engine) and
``RngStream(seed, "point", j)`` for later points -- so serial, parallel,
and fused-sweep execution produce record-identical results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.injector import FaultInjector
from repro.core.signature import FaultSignature
from repro.errors import ConfigError, FFISError
from repro.fusefs.inode import ROOT_INO, Inode, InodeKind
from repro.fusefs.vfs import FFISFileSystem
from repro.util.rngstream import RngStream


class FaultScenario(ABC):
    """A per-run plan of injection points over one fault signature."""

    #: Canonical scenario kind used in stamps and CLI specs.
    kind: str = "?"

    #: ``True`` only for :class:`SingleFault`: plans legacy (unstamped)
    #: specs and records, byte-identical to the pre-scenario engine.
    legacy: bool = False

    #: Whether planning needs a non-empty dynamic-instance window.
    needs_window: bool = True

    @property
    def fault_count(self) -> int:
        """Nominal number of faults per run (the k of an SDC-vs-k curve)."""
        return 1

    @abstractmethod
    def stamp(self) -> str:
        """Compact textual identity; round-trips through
        :func:`parse_scenario` and stamps specs, records, and campaign
        checkpoint identities."""

    @abstractmethod
    def pick(self, picker: np.random.Generator, window: range) -> Tuple[int, ...]:
        """The run's injection points, drawn from the shared *picker*.

        Must consume a fixed number of draws per call (given the same
        scenario parameters) so the campaign's instance stream stays
        replayable across code evolution.
        """

    @abstractmethod
    def arm(self, fs: FFISFileSystem, signature: FaultSignature, spec) -> object:
        """Attach this scenario's hook(s) for *spec* to a fresh fs."""

    def replay_constraint(self, signature: FaultSignature, spec):
        """What the prefix-replay engine must execute live for *spec*.

        The default ``None`` opts the scenario out of replay entirely
        (every run executes cold) -- new scenario classes are safe by
        construction and declare a constraint only once their firing
        semantics are understood by the replay engine.
        """
        return None

    def __str__(self) -> str:
        return self.stamp()


def _points_constraint(signature: FaultSignature, points):
    """Shared instance-hosted constraint: every planned injection point
    must dispatch live, so replay may start no later than the first."""
    from repro.core.engine.replay import ReplayConstraint

    points = tuple(int(p) for p in (points or ()) if int(p) >= 0)
    if not points:
        return None
    return ReplayConstraint(primitive=signature.primitive, points=points)


@dataclass(frozen=True)
class SingleFault(FaultScenario):
    """Exactly the paper's model: one fault at one uniform instance.

    Plans, records, checkpoint lines, and RNG draws are bit-identical to
    the pre-scenario engine, which is what lets PR 2-era checkpoints
    resume under the scenario-aware loader.
    """

    kind = "single"
    legacy = True

    def stamp(self) -> str:
        return "single"

    def pick(self, picker: np.random.Generator, window: range) -> Tuple[int, ...]:
        return (int(picker.integers(window.start, window.stop)),)

    def arm(self, fs: FFISFileSystem, signature: FaultSignature, spec):
        rng = RngStream(spec.seed).generator()
        return FaultInjector(signature).arm(fs, spec.target_instance, rng)

    def replay_constraint(self, signature: FaultSignature, spec):
        return _points_constraint(signature, (spec.target_instance,))


@dataclass(frozen=True)
class KFaults(FaultScenario):
    """``k`` faults per run, drawn from one profile window.

    Without ``correlated_window`` the k points spread uniformly over the
    window (independent faults).  With ``correlated_window=W`` a base
    instance is drawn first and the remaining k-1 points land inside
    ``[base, base + W)`` -- the sector/phase-local clustering of a
    failing device region.  Colliding draws collapse to one injection
    point (the same dynamic instance cannot be corrupted twice).
    """

    k: int
    correlated_window: Optional[int] = None

    kind = "k"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"KFaults needs k >= 1, got {self.k}")
        if self.correlated_window is not None and self.correlated_window < 1:
            raise ConfigError(
                f"correlated_window must be >= 1, got {self.correlated_window}")

    @property
    def fault_count(self) -> int:
        return self.k

    def stamp(self) -> str:
        if self.correlated_window is None:
            return f"k={self.k}"
        return f"k={self.k},window={self.correlated_window}"

    def pick(self, picker: np.random.Generator, window: range) -> Tuple[int, ...]:
        if self.correlated_window is None:
            draws = [int(picker.integers(window.start, window.stop))
                     for _ in range(self.k)]
            return tuple(sorted(set(draws)))
        base = int(picker.integers(window.start, window.stop))
        stop = min(base + self.correlated_window, window.stop)
        points = {base}
        for _ in range(self.k - 1):
            points.add(int(picker.integers(base, stop)))
        return tuple(sorted(points))

    def arm(self, fs: FFISFileSystem, signature: FaultSignature, spec):
        return FaultInjector(signature).arm_many(fs, spec.instances, spec.seed)

    def replay_constraint(self, signature: FaultSignature, spec):
        return _points_constraint(signature, spec.instances)


@dataclass(frozen=True)
class BurstFault(FaultScenario):
    """``length`` *consecutive* dynamic instances of one primitive.

    Models a burst from one failing device region: every write (or other
    primitive execution) in a contiguous span is corrupted.  The burst
    starts at a uniform instance and is clipped to the window's end, so
    a burst armed near the end of a run corrupts what remains of it.
    """

    length: int

    kind = "burst"

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ConfigError(f"BurstFault needs length >= 1, got {self.length}")

    @property
    def fault_count(self) -> int:
        return self.length

    def stamp(self) -> str:
        return f"burst={self.length}"

    def pick(self, picker: np.random.Generator, window: range) -> Tuple[int, ...]:
        base = int(picker.integers(window.start, window.stop))
        return tuple(range(base, min(base + self.length, window.stop)))

    def arm(self, fs: FFISFileSystem, signature: FaultSignature, spec):
        return FaultInjector(signature).arm_many(fs, spec.instances, spec.seed)

    def replay_constraint(self, signature: FaultSignature, spec):
        return _points_constraint(signature, spec.instances)


def _regular_files(fs: FFISFileSystem) -> List[Tuple[str, Inode]]:
    """Every regular file in *fs*, as sorted ``(path, inode)`` pairs."""
    found: List[Tuple[str, Inode]] = []

    def walk(node: Inode, prefix: str) -> None:
        for name in sorted(node.entries):
            child = fs.inodes.get(node.entries[name])
            path = f"{prefix}/{name}"
            if child.is_dir:
                walk(child, path)
            elif child.kind is InodeKind.FILE:
                found.append((path, child))

    walk(fs.inodes.get(ROOT_INO), "")
    return found


class AtRestDecayHook:
    """Flips bits of persisted bytes directly through the VFS backend.

    Satisfies the engine's ``ArmedHook`` protocol (``fired``/``note``)
    without ever joining a primitive's hook chain: decay happens to data
    at rest, so the corruption must be invisible to profiling and to the
    write-path fault models.  When ``after_phase`` is set the hook fires
    at that phase's end (via the interposer's phase listeners);
    otherwise the engine's :meth:`finalize` seam fires it between the
    application's last stage and its post-analysis.
    """

    def __init__(self, fs: FFISFileSystem, seed: int, n_bytes: int,
                 region: Optional[Tuple[int, int]],
                 after_phase: Optional[str]) -> None:
        self.fs = fs
        self.seed = seed
        self.n_bytes = n_bytes
        self.region = region
        self.after_phase = after_phase
        self.fired = False
        self.note = ""
        if after_phase is not None:
            fs.interposer.add_phase_listener(self._on_phase_end)

    def _on_phase_end(self, name: str) -> None:
        if name == self.after_phase and not self.fired:
            self._decay()

    def finalize(self) -> None:
        """At-rest seam: called by the engine after the application's
        last stage.  Fires only when no phase was targeted (a targeted
        phase that never ran stays not-fired, which the record audits)."""
        if self.after_phase is None and not self.fired:
            self._decay()

    def _file_window(self, node: Inode) -> Optional[Tuple[int, int]]:
        lo, hi = 0, node.size
        if self.region is not None:
            lo, hi = max(lo, self.region[0]), min(hi, self.region[1])
        return (lo, hi) if lo < hi else None

    def _decay(self) -> None:
        rng = RngStream(self.seed, "decay").generator()
        candidates = [(path, node, window)
                      for path, node in _regular_files(self.fs)
                      for window in (self._file_window(node),)
                      if window is not None]
        if not candidates:
            self.note = "decay: no persisted bytes to corrupt"
            return
        path, node, (lo, hi) = candidates[int(rng.integers(0, len(candidates)))]
        offsets = sorted({int(off) for off in
                          rng.integers(lo, hi, size=self.n_bytes)})
        backend = self.fs.backend
        for offset in offsets:
            bit = int(rng.integers(0, 8))
            byte = backend.pread(node.ino, 1, offset) or b"\x00"
            backend.pwrite(node.ino, bytes([byte[0] ^ (1 << bit)]), offset)
        self.fired = True
        self.note = (f"decay: flipped 1 bit in each of {len(offsets)} "
                     f"byte(s) of {path}")


@dataclass(frozen=True)
class AtRestDecay(FaultScenario):
    """Corrupt ``n_bytes`` persisted bytes between application stages.

    No primitive hosts the fault: the decay is applied straight through
    the VFS backend, at the end of ``after_phase`` (if given) or between
    the application's last stage and its post-analysis.  ``region``
    restricts the decay to a byte window of the target file -- the
    sector-local manifestation (e.g. an HDF5 file's packed metadata
    region).
    """

    n_bytes: int = 8
    region: Optional[Tuple[int, int]] = None
    after_phase: Optional[str] = None

    kind = "decay"
    needs_window = False

    def __post_init__(self) -> None:
        if self.n_bytes < 1:
            raise ConfigError(f"AtRestDecay needs n_bytes >= 1, got {self.n_bytes}")
        if self.region is not None:
            object.__setattr__(self, "region", tuple(self.region))
            lo, hi = self.region
            if lo < 0 or hi <= lo:
                raise ConfigError(
                    f"decay region must satisfy 0 <= start < stop, got {self.region}")

    @property
    def fault_count(self) -> int:
        return self.n_bytes

    def stamp(self) -> str:
        parts = [f"decay:bytes={self.n_bytes}"]
        if self.region is not None:
            parts.append(f"region={self.region[0]}-{self.region[1]}")
        if self.after_phase is not None:
            parts.append(f"after={self.after_phase}")
        return ",".join(parts)

    def pick(self, picker: np.random.Generator, window: range) -> Tuple[int, ...]:
        return ()

    def arm(self, fs: FFISFileSystem, signature: FaultSignature, spec):
        return AtRestDecayHook(fs, spec.seed, self.n_bytes, self.region,
                               self.after_phase)

    def replay_constraint(self, signature: FaultSignature, spec):
        """Decay hosts no primitive: with no target phase it fires at the
        engine's post-execute seam (the run may restore the final golden
        boundary outright); with ``after_phase`` set, the step ending
        that phase must still be ahead so its notification fires."""
        from repro.core.engine.replay import ReplayConstraint

        return ReplayConstraint(notify_phase=self.after_phase)


def _parse_int(key: str, text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigError(f"scenario spec: {key}={text!r} is not an integer") \
            from None


def parse_scenario(spec: str) -> FaultScenario:
    """Parse a CLI/config scenario spec into a :class:`FaultScenario`.

    Grammar (also the output of :meth:`FaultScenario.stamp`, so stamps
    round-trip)::

        single
        k=<K>[,window=<W>]
        burst=<N>
        decay[:bytes=<N>][,region=<LO>-<HI>][,after=<PHASE>]
    """
    text = spec.strip()
    if not text:
        raise ConfigError("empty scenario spec")
    if text == "single":
        return SingleFault()
    if text.startswith("burst="):
        return BurstFault(length=_parse_int("burst", text[len("burst="):]))
    if text.startswith("k="):
        head, _, rest = text.partition(",")
        k = _parse_int("k", head[len("k="):])
        if not rest:
            return KFaults(k=k)
        if not rest.startswith("window="):
            raise ConfigError(f"scenario spec: expected window=..., got {rest!r}")
        return KFaults(k=k, correlated_window=_parse_int(
            "window", rest[len("window="):]))
    if text == "decay" or text.startswith("decay:"):
        kwargs = {}
        body = text[len("decay:"):] if text.startswith("decay:") else ""
        for part in filter(None, body.split(",")):
            key, sep, value = part.partition("=")
            if not sep:
                raise ConfigError(f"scenario spec: malformed decay option {part!r}")
            if key == "bytes":
                kwargs["n_bytes"] = _parse_int("bytes", value)
            elif key == "region":
                lo, sep, hi = value.partition("-")
                if not sep:
                    raise ConfigError(
                        f"scenario spec: region wants LO-HI, got {value!r}")
                kwargs["region"] = (_parse_int("region", lo),
                                    _parse_int("region", hi))
            elif key == "after":
                kwargs["after_phase"] = value
            else:
                raise ConfigError(f"scenario spec: unknown decay option {key!r}")
        return AtRestDecay(**kwargs)
    raise ConfigError(
        f"unknown scenario spec {spec!r} (grammar: single | k=K[,window=W] "
        "| burst=N | decay[:bytes=N][,region=LO-HI][,after=PHASE])")


def as_scenario(value) -> FaultScenario:
    """Coerce ``None`` (legacy), a spec string, or a scenario instance."""
    if value is None:
        return SingleFault()
    if isinstance(value, FaultScenario):
        return value
    if isinstance(value, str):
        return parse_scenario(value)
    raise ConfigError(f"cannot interpret {value!r} as a fault scenario")


def scenario_from_record(record) -> FaultScenario:
    """The scenario a run record was produced under (legacy -> single).

    Raises :class:`FFISError` for a stamp this build cannot parse --
    a record from a newer scenario vocabulary must not be silently
    rebucketed as single-fault.
    """
    stamp = getattr(record, "scenario", None)
    if stamp is None:
        return SingleFault()
    try:
        return parse_scenario(stamp)
    except ConfigError as exc:
        raise FFISError(
            f"record stamped with unknown scenario {stamp!r}: {exc}") from exc
