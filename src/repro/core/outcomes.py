"""Outcome taxonomy of a fault-injection run (Sec. II of the paper).

* **BENIGN** -- the application's post-analysis output is bit-wise
  identical to the fault-free (golden) output.
* **DETECTED** -- the output differs and the deviation is visible through
  the application's own checks (no halos found; energy outside the
  physically plausible window; mosaic statistics off).
* **SDC** -- silent data corruption: the output differs but passes every
  check the application performs.
* **CRASH** -- the application (or a library beneath it) terminated
  before producing its output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional


class Outcome(enum.Enum):
    BENIGN = "benign"
    SDC = "sdc"
    DETECTED = "detected"
    CRASH = "crash"


@dataclass
class RunRecord:
    """One fault-injection run: where the fault landed and what happened."""

    run_index: int
    outcome: Outcome
    target_instance: int = -1
    phase: Optional[str] = None
    detail: str = ""
    #: For metadata campaigns: byte offset and field name of the corruption.
    byte_offset: Optional[int] = None
    bit_index: Optional[int] = None
    field_name: Optional[str] = None
    #: Whether the armed fault actually triggered during the run.  A
    #: never-fired run is trivially benign and inflates masking rates;
    #: tallies count these separately so campaigns can audit them.
    fault_fired: bool = True
    #: Multi-fault scenarios: the planned injection points and the
    #: scenario's compact stamp (e.g. ``"k=3,window=16"``).  Both are
    #: ``None`` for legacy single-fault runs, whose records -- and JSONL
    #: lines -- stay bit-identical to the pre-scenario engine.
    instances: Optional[tuple] = None
    scenario: Optional[str] = None


@dataclass
class OutcomeTally:
    """Counts per outcome with convenience accessors."""

    counts: Dict[Outcome, int] = field(default_factory=lambda: {o: 0 for o in Outcome})
    #: Runs whose armed fault never triggered (still counted under their
    #: outcome; this is an auditing side-channel, not a fifth outcome).
    not_fired: int = 0

    def add(self, outcome: Outcome) -> None:
        self.counts[outcome] += 1

    def add_record(self, record: RunRecord) -> None:
        self.add(record.outcome)
        if not record.fault_fired:
            self.not_fired += 1

    def merge(self, other: "OutcomeTally") -> None:
        """Fold another (e.g. per-shard) tally into this one."""
        for outcome, count in other.counts.items():
            self.counts[outcome] += count
        self.not_fired += other.not_fired

    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "OutcomeTally":
        tally = cls()
        for record in records:
            tally.add_record(record)
        return tally

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def rate(self, outcome: Outcome) -> float:
        return self.counts[outcome] / self.total if self.total else 0.0

    def rates(self) -> Mapping[Outcome, float]:
        return {o: self.rate(o) for o in Outcome}

    def as_row(self) -> List[str]:
        return [f"{self.counts[o]} ({100 * self.rate(o):.1f}%)" for o in Outcome]

    def __str__(self) -> str:
        parts = [f"{o.value}={self.counts[o]} ({100 * self.rate(o):.1f}%)"
                 for o in Outcome if self.counts[o]]
        if self.not_fired:
            parts.append(f"not-fired={self.not_fired}")
        return ", ".join(parts) if parts else "empty"
