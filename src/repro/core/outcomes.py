"""Outcome taxonomy of a fault-injection run (Sec. II of the paper).

* **BENIGN** -- the application's post-analysis output is bit-wise
  identical to the fault-free (golden) output.
* **DETECTED** -- the output differs and the deviation is visible through
  the application's own checks (no halos found; energy outside the
  physically plausible window; mosaic statistics off).
* **SDC** -- silent data corruption: the output differs but passes every
  check the application performs.
* **CRASH** -- the application (or a library beneath it) terminated
  before producing its output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional


class Outcome(enum.Enum):
    BENIGN = "benign"
    SDC = "sdc"
    DETECTED = "detected"
    CRASH = "crash"


@dataclass
class RunRecord:
    """One fault-injection run: where the fault landed and what happened."""

    run_index: int
    outcome: Outcome
    target_instance: int = -1
    phase: Optional[str] = None
    detail: str = ""
    #: For metadata campaigns: byte offset and field name of the corruption.
    byte_offset: Optional[int] = None
    bit_index: Optional[int] = None
    field_name: Optional[str] = None


@dataclass
class OutcomeTally:
    """Counts per outcome with convenience accessors."""

    counts: Dict[Outcome, int] = field(default_factory=lambda: {o: 0 for o in Outcome})

    def add(self, outcome: Outcome) -> None:
        self.counts[outcome] += 1

    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "OutcomeTally":
        tally = cls()
        for record in records:
            tally.add(record.outcome)
        return tally

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def rate(self, outcome: Outcome) -> float:
        return self.counts[outcome] / self.total if self.total else 0.0

    def rates(self) -> Mapping[Outcome, float]:
        return {o: self.rate(o) for o in Outcome}

    def as_row(self) -> List[str]:
        return [f"{self.counts[o]} ({100 * self.rate(o):.1f}%)" for o in Outcome]

    def __str__(self) -> str:
        parts = [f"{o.value}={self.counts[o]} ({100 * self.rate(o):.1f}%)"
                 for o in Outcome if self.counts[o]]
        return ", ".join(parts) if parts else "empty"
