"""The statistical fault-injection campaign planner (paper Fig. 4).

For each run: pick a uniformly random dynamic instance of the target
primitive (within the whole run or one named application phase), mount a
fresh file system, execute the application with a one-shot injection hook
armed, unmount, and classify the outcome against the golden record.  The
mount/unmount-per-run discipline matches the paper's protocol.

The per-run loop body lives in the campaign engine
(:mod:`repro.core.engine`); :class:`Campaign` is a *planner* that turns
its configuration into a declarative :class:`RunPlan` and hands it to an
executor, so the same campaign runs serially or across worker processes
with record-for-record identical results, optionally checkpointed to a
resumable JSONL file.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.apps.base import GoldenRecord, HpcApplication
from repro.core.config import CampaignConfig
from repro.core.engine import (
    ArmedHook,
    ExecutionContext,
    ProfileGoldenCache,
    RunPlan,
    RunSpec,
    SweepCell,
    execute_plan,
    execute_run_spec,
    golden_digest,
)
from repro.core.generator import FaultGenerator
from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.core.profiler import IOProfiler, ProfileResult
from repro.core.scenario import FaultScenario, SingleFault, as_scenario
from repro.core.signature import FaultSignature
from repro.errors import FFISError
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.util.rngstream import RngStream

FsFactory = Callable[[], FFISFileSystem]


class InjectionContext(ExecutionContext):
    """Arms the scenario's fault-model hook(s) at the spec's points.

    With the default :class:`SingleFault` scenario this is exactly the
    classic one-shot hook at ``spec.target_instance`` -- same RNG
    stream, same hook, same records as the pre-scenario engine.
    """

    not_fired_note = "[warning: fault never fired]"

    def __init__(self, app: HpcApplication, golden: GoldenRecord,
                 signature: FaultSignature,
                 fs_factory: FsFactory = FFISFileSystem,
                 scenario: Optional[FaultScenario] = None,
                 replay: Optional[bool] = None) -> None:
        super().__init__(app, golden, fs_factory)
        self.signature = signature
        self.scenario = scenario if scenario is not None else SingleFault()
        self.replay = replay

    def arm(self, fs: FFISFileSystem, spec: RunSpec) -> ArmedHook:
        return self.scenario.arm(fs, self.signature, spec)

    def replay_constraint(self, spec: RunSpec):
        return self.scenario.replay_constraint(self.signature, spec)


@dataclass
class CampaignResult:
    """Everything a campaign produced, ready for tabulation."""

    app_name: str
    signature: str
    phase: Optional[str]
    records: List[RunRecord] = field(default_factory=list)
    profile: Optional[ProfileResult] = None
    golden: Optional[GoldenRecord] = None
    #: Scenario stamp for non-legacy scenarios (``None`` == single fault).
    scenario: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def tally(self) -> OutcomeTally:
        return OutcomeTally.from_records(self.records)

    def rate(self, outcome: Outcome) -> float:
        return self.tally.rate(outcome)

    def summary(self) -> str:
        label = f"{self.app_name}/{self.signature}"
        if self.scenario:
            label += f" <{self.scenario}>"
        if self.phase:
            label += f" [{self.phase}]"
        return f"{label}: {self.tally} ({len(self.records)} runs)"


class Campaign:
    """Plans the generator → profiler → injector runs for one app/config."""

    def __init__(self, app: HpcApplication, config: CampaignConfig,
                 fs_factory: FsFactory = FFISFileSystem) -> None:
        self.app = app
        self.config = config
        self.fs_factory = fs_factory
        self.signature: FaultSignature = FaultGenerator().generate(config)
        self.scenario: FaultScenario = as_scenario(config.scenario)

    # -- pieces -----------------------------------------------------------------

    def profile(self) -> ProfileResult:
        return IOProfiler(self.fs_factory).profile(self.app, self.signature)

    def profile_from_golden(self, golden: GoldenRecord) -> ProfileResult:
        """The I/O profile derived from a golden capture -- no extra run.

        :meth:`HpcApplication.capture_golden` snapshots every
        primitive's fault-free dynamic count (and the write volume)
        before its own output reads, so the profile a separate
        :class:`IOProfiler` run would measure is already on the golden
        record; one fault-free execution serves both.
        """
        primitive = self.signature.primitive
        count = golden.primitive_counts.get(primitive, 0)
        if count == 0:
            raise FFISError(
                f"{self.app.name} never executed {primitive}; "
                "nothing to inject into")
        return ProfileResult(
            primitive=primitive,
            total_count=count,
            bytes_written=(golden.bytes_written
                           if primitive == "ffis_write" else 0),
            phases=list(golden.phases))

    def capture_golden(self) -> GoldenRecord:
        fs = self.fs_factory()
        with mount(fs) as mp:
            return self.app.capture_golden(mp)

    def run_once(self, instance: int, run_rng_seed: int,
                 run_index: int, golden: GoldenRecord) -> RunRecord:
        """One injection run at a fixed instance (exposed for tests)."""
        context = InjectionContext(self.app, golden, self.signature,
                                   self.fs_factory,
                                   replay=self.config.replay)
        spec = RunSpec(run_index=run_index, seed=run_rng_seed,
                       target_instance=instance, phase=self.config.phase)
        return execute_run_spec(context, spec)

    # -- planning ---------------------------------------------------------------

    def plan(self, n_runs: Optional[int] = None,
             profile: Optional[ProfileResult] = None,
             golden: Optional[GoldenRecord] = None) -> RunPlan:
        """The declarative run plan: instance picks and per-run seeds.

        Instance selection draws from one named stream in run order and
        every run's private seed is derived by name, so the plan -- and
        therefore the records, under any executor -- depends only on the
        configuration.
        """
        n = n_runs if n_runs is not None else self.config.n_runs
        golden = golden if golden is not None else self.capture_golden()
        profile = profile if profile is not None \
            else self.profile_from_golden(golden)
        scenario = self.scenario
        window = profile.window(self.config.phase)
        if len(window) == 0 and scenario.needs_window:
            raise FFISError(
                f"phase {self.config.phase!r} executed no "
                f"{self.signature.primitive} calls")
        stream = RngStream(self.config.seed, self.app.name,
                           self.signature.model.name, self.config.phase or "all")
        picker = stream.child("instances").generator()
        specs = []
        for i in range(n):
            points = scenario.pick(picker, window)
            common = dict(run_index=i, seed=stream.child("run", i).seed,
                          target_instance=points[0] if points else -1,
                          phase=self.config.phase)
            if scenario.legacy:
                # Legacy single-fault specs carry no scenario stamp, so
                # records and checkpoint lines stay bit-identical to the
                # pre-scenario engine.
                specs.append(RunSpec(**common))
            else:
                specs.append(RunSpec(instances=points,
                                     scenario=scenario.stamp(), **common))
        context = InjectionContext(self.app, golden, self.signature,
                                   self.fs_factory, scenario,
                                   replay=self.config.replay)
        return RunPlan(context=context, specs=tuple(specs))

    def campaign_id(self, golden: GoldenRecord) -> str:
        """Identity stamped on checkpoint lines so a resume can refuse a
        results file that belongs to a different campaign.  Includes a
        digest of the golden outputs: the app *name* can't distinguish
        two differently-configured instances of the same application.
        Non-legacy scenarios append their stamp (run index *i* plans
        different injection points under a different scenario); the
        legacy single-fault identity is unchanged, so PR 2-era
        checkpoints resume under this loader."""
        base = (f"{self.app.name}/{self.signature}"
                f"/phase={self.config.phase or 'all'}"
                f"/seed={self.config.seed}"
                f"/golden={golden_digest(golden)}")
        if self.scenario.legacy:
            return base
        return f"{base}/scenario={self.scenario.stamp()}"

    def plan_cell(self, key: str, cache: ProfileGoldenCache,
                  n_runs: Optional[int] = None) -> SweepCell:
        """This campaign as one cell of a fused sweep.

        Plans against the sweep's shared golden cache, so however many
        cells target the same application instance, its fault-free
        capture runs exactly once per sweep -- and the I/O profile is
        derived from that same capture, not paid for separately.
        """
        golden = cache.golden(self.app, self.fs_factory, self.capture_golden)
        profile = cache.derived_profile(
            self.app, self.fs_factory, self.signature.primitive,
            lambda: self.profile_from_golden(golden))
        plan = self.plan(n_runs, profile=profile, golden=golden)
        return SweepCell(key=key, plan=plan,
                         campaign_id=self.campaign_id(golden))

    # -- the campaign -----------------------------------------------------------------

    def run(self, n_runs: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None,
            workers: Optional[int] = None,
            results_path: Optional[str] = None,
            resume: Optional[bool] = None) -> CampaignResult:
        """Execute the plan; keyword arguments override the config knobs."""
        # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
        start = time.perf_counter()
        golden = self.capture_golden()
        profile = self.profile_from_golden(golden)
        plan = self.plan(n_runs, profile=profile, golden=golden)
        records = execute_plan(
            plan,
            workers=self.config.workers if workers is None else workers,
            chunk_size=self.config.chunk_size,
            results_path=(self.config.results_path if results_path is None
                          else results_path),
            resume=self.config.resume if resume is None else resume,
            campaign_id=self.campaign_id(golden),
            progress=progress)
        result = CampaignResult(app_name=self.app.name,
                                signature=str(self.signature),
                                phase=self.config.phase,
                                records=records,
                                profile=profile, golden=golden,
                                scenario=None if self.scenario.legacy
                                else self.scenario.stamp())
        # repro: allow[R001] elapsed_seconds is reporting-only, never recorded
        result.elapsed_seconds = time.perf_counter() - start
        return result
