"""The statistical fault-injection campaign runner (paper Fig. 4).

For each run: pick a uniformly random dynamic instance of the target
primitive (within the whole run or one named application phase), mount a
fresh file system, execute the application with a one-shot injection hook
armed, unmount, and classify the outcome against the golden record.  The
mount/unmount-per-run discipline matches the paper's protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.apps.base import GoldenRecord, HpcApplication
from repro.core.config import CampaignConfig
from repro.core.generator import FaultGenerator
from repro.core.injector import FaultInjector
from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.core.profiler import IOProfiler, ProfileResult
from repro.core.signature import FaultSignature
from repro.errors import FFISError
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.util.rngstream import RngStream

FsFactory = Callable[[], FFISFileSystem]


@dataclass
class CampaignResult:
    """Everything a campaign produced, ready for tabulation."""

    app_name: str
    signature: str
    phase: Optional[str]
    records: List[RunRecord] = field(default_factory=list)
    profile: Optional[ProfileResult] = None
    golden: Optional[GoldenRecord] = None
    elapsed_seconds: float = 0.0

    @property
    def tally(self) -> OutcomeTally:
        return OutcomeTally.from_records(self.records)

    def rate(self, outcome: Outcome) -> float:
        return self.tally.rate(outcome)

    def summary(self) -> str:
        label = f"{self.app_name}/{self.signature}"
        if self.phase:
            label += f" [{self.phase}]"
        return f"{label}: {self.tally} ({len(self.records)} runs)"


class Campaign:
    """Runs the generator → profiler → injector loop for one app/config."""

    def __init__(self, app: HpcApplication, config: CampaignConfig,
                 fs_factory: FsFactory = FFISFileSystem) -> None:
        self.app = app
        self.config = config
        self.fs_factory = fs_factory
        self.signature: FaultSignature = FaultGenerator().generate(config)
        self.injector = FaultInjector(self.signature)

    # -- pieces -----------------------------------------------------------------

    def profile(self) -> ProfileResult:
        return IOProfiler(self.fs_factory).profile(self.app, self.signature)

    def capture_golden(self) -> GoldenRecord:
        fs = self.fs_factory()
        with mount(fs) as mp:
            return self.app.capture_golden(mp)

    def run_once(self, instance: int, run_rng_seed: int,
                 run_index: int, golden: GoldenRecord) -> RunRecord:
        """One injection run at a fixed instance (exposed for tests)."""
        fs = self.fs_factory()
        rng = RngStream(run_rng_seed).generator()
        hook = self.injector.arm(fs, instance, rng)
        record = RunRecord(run_index=run_index, outcome=Outcome.BENIGN,
                           target_instance=instance, phase=self.config.phase)
        try:
            with mount(fs) as mp:
                self.app.execute(mp)
                outcome, detail = self.app.classify(golden, mp)
            record.outcome = outcome
            record.detail = f"{detail}; {hook.note}" if hook.note else detail
        except FFISError:
            raise  # framework misuse is never an experimental outcome
        except Exception as exc:  # noqa: BLE001 - crash taxonomy by design
            record.outcome = Outcome.CRASH
            record.detail = f"{type(exc).__name__}: {exc}; {hook.note}"
        if not hook.fired:
            record.detail = (record.detail + " [warning: fault never fired]").strip()
        return record

    # -- the campaign -----------------------------------------------------------------

    def run(self, n_runs: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None) -> CampaignResult:
        start = time.perf_counter()
        n = n_runs if n_runs is not None else self.config.n_runs
        profile = self.profile()
        golden = self.capture_golden()
        window = profile.window(self.config.phase)
        if len(window) == 0:
            raise FFISError(
                f"phase {self.config.phase!r} executed no "
                f"{self.signature.primitive} calls")

        result = CampaignResult(app_name=self.app.name,
                                signature=str(self.signature),
                                phase=self.config.phase,
                                profile=profile, golden=golden)
        stream = RngStream(self.config.seed, self.app.name,
                           self.signature.model.name, self.config.phase or "all")
        picker = stream.child("instances").generator()
        for i in range(n):
            instance = int(picker.integers(window.start, window.stop))
            record = self.run_once(
                instance=instance,
                run_rng_seed=stream.child("run", i).seed,
                run_index=i,
                golden=golden,
            )
            result.records.append(record)
            if progress is not None:
                progress(i + 1, n)
        result.elapsed_seconds = time.perf_counter() - start
        return result
