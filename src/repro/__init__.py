"""FFIS reproduction: characterizing storage-fault impacts on HPC applications.

Reproduces Fang et al., "Characterizing Impacts of Storage Faults on HPC
Applications: A Methodology and Insights" (CLUSTER 2021).

Public surface (stable; see the README's public-API policy):

* :mod:`repro.study`  -- the declarative Study API: a serializable
  :class:`StudySpec` compiled by :class:`Study` onto the fused campaign
  engine, returning a uniform :class:`ResultSet`.  The paper's grid
  experiments are registered specs (``get_study("figure7")``).
* :mod:`repro.core`   -- the FFIS fault-injection framework (fault models,
  profiler, injector, campaigns).
* :mod:`repro.fusefs` -- the instrumentable FUSE-substitute file system.
* :mod:`repro.mhdf5`  -- the from-scratch mini-HDF5 format with the
  metadata fields and repair methodology the paper studies.
* :mod:`repro.mfits`  -- the mini-FITS format for the Montage workload.
* :mod:`repro.apps`   -- Nyx, QMCPACK, and Montage applications-under-test.
* :mod:`repro.analysis` / :mod:`repro.experiments` -- statistics, table
  rendering, and one driver per paper table/figure.

Quickstart -- one campaign::

    from repro import Campaign, CampaignConfig
    from repro.apps.nyx import NyxApplication, FieldConfig

    app = NyxApplication(field_config=FieldConfig(shape=(32, 32, 32)))
    result = Campaign(app, CampaignConfig(fault_model="BF", n_runs=100)).run()
    print(result.summary())

Quickstart -- a declarative study (a grid of campaigns as data)::

    from repro import ModelSpec, StudySpec, TargetSpec, run_study

    spec = StudySpec(name="demo",
                     targets=(TargetSpec(app="nyx"),),
                     models=(ModelSpec(model="BF"), ModelSpec(model="DW")),
                     runs=100, seed=1)
    print(run_study(spec).render())

Studies (and single campaigns) are embarrassingly parallel and
restartable: ``workers`` fans runs out over a process pool
(record-for-record identical to serial execution) and ``out``/``resume``
checkpoint every completed run to a JSONL file.  The same engine backs
the CLI (``python -m repro study run figure7 --workers 4 --out
grid.jsonl --resume``) and every experiment driver.

Names are resolved lazily (PEP 562), so ``import repro`` -- and
``repro --version`` -- stay cheap until something is used.
"""

import warnings
from typing import Dict, Tuple

from repro.util.lazy import lazy_exports, resolve_export

__version__ = "1.1.0"

#: Stable public name -> (module, attribute).
_EXPORTS: Dict[str, Tuple[str, str]] = {
    # The fault-injection framework.
    "BitFlipFault": ("repro.core", "BitFlipFault"),
    "Campaign": ("repro.core", "Campaign"),
    "CampaignConfig": ("repro.core", "CampaignConfig"),
    "CampaignResult": ("repro.core", "CampaignResult"),
    "DroppedWriteFault": ("repro.core", "DroppedWriteFault"),
    "FaultGenerator": ("repro.core", "FaultGenerator"),
    "FaultInjector": ("repro.core", "FaultInjector"),
    "FaultSignature": ("repro.core", "FaultSignature"),
    "IOProfiler": ("repro.core", "IOProfiler"),
    "MetadataCampaign": ("repro.core", "MetadataCampaign"),
    "Outcome": ("repro.core", "Outcome"),
    "OutcomeTally": ("repro.core", "OutcomeTally"),
    "ReadCorruptionFault": ("repro.core", "ReadCorruptionFault"),
    "ShornWriteFault": ("repro.core", "ShornWriteFault"),
    "load_records": ("repro.core", "load_records"),
    "make_fault_model": ("repro.core", "make_fault_model"),
    # The file system under test.
    "FFISFileSystem": ("repro.fusefs", "FFISFileSystem"),
    "MountPoint": ("repro.fusefs", "MountPoint"),
    "mount": ("repro.fusefs", "mount"),
    # The declarative Study API.
    "CellInfo": ("repro.study", "CellInfo"),
    "ModelSpec": ("repro.study", "ModelSpec"),
    "ResultSet": ("repro.study", "ResultSet"),
    "STUDIES": ("repro.study", "STUDIES"),
    "ScenarioSpec": ("repro.study", "ScenarioSpec"),
    "Study": ("repro.study", "Study"),
    "StudySpec": ("repro.study", "StudySpec"),
    "TargetSpec": ("repro.study", "TargetSpec"),
    "get_study": ("repro.study", "get_study"),
    "load_spec": ("repro.study", "load_spec"),
    "register_app": ("repro.study", "register_app"),
    "run_study": ("repro.study", "run_study"),
}

#: Deprecated top-level aliases for engine internals.  They keep
#: working, but the stable home is :mod:`repro.core.engine` (or the
#: Study API, which makes most direct engine use unnecessary).
_DEPRECATED: Dict[str, Tuple[str, str]] = {
    name: ("repro.core.engine", name) for name in (
        "ParallelExecutor",
        "ProfileGoldenCache",
        "RunPlan",
        "RunSpec",
        "SerialExecutor",
        "SweepCell",
        "SweepPlan",
        "SweepResult",
        "execute_plan",
        "execute_sweep",
    )
}

__all__ = sorted(_EXPORTS) + ["__version__"]

_lazy_getattr, _lazy_dir = lazy_exports(__name__, globals(), _EXPORTS)


def __getattr__(name: str):
    if name in _DEPRECATED:
        module, attr = _DEPRECATED[name]
        warnings.warn(
            f"repro.{name} is deprecated; import it from {module} "
            "(or use the repro.study API)",
            DeprecationWarning, stacklevel=2)
        return resolve_export(module, attr)  # uncached so every use warns
    return _lazy_getattr(name)


def __dir__():
    return sorted(set(_lazy_dir()) | set(_DEPRECATED))
