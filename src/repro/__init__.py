"""FFIS reproduction: characterizing storage-fault impacts on HPC applications.

Reproduces Fang et al., "Characterizing Impacts of Storage Faults on HPC
Applications: A Methodology and Insights" (CLUSTER 2021).

Public surface:

* :mod:`repro.core`   -- the FFIS fault-injection framework (fault models,
  profiler, injector, campaigns).
* :mod:`repro.fusefs` -- the instrumentable FUSE-substitute file system.
* :mod:`repro.mhdf5`  -- the from-scratch mini-HDF5 format with the
  metadata fields and repair methodology the paper studies.
* :mod:`repro.mfits`  -- the mini-FITS format for the Montage workload.
* :mod:`repro.apps`   -- Nyx, QMCPACK, and Montage applications-under-test.
* :mod:`repro.analysis` / :mod:`repro.experiments` -- statistics, table
  rendering, and one driver per paper table/figure.

Quickstart::

    from repro import Campaign, CampaignConfig
    from repro.apps.nyx import NyxApplication, FieldConfig

    app = NyxApplication(field_config=FieldConfig(shape=(32, 32, 32)))
    result = Campaign(app, CampaignConfig(fault_model="BF", n_runs=100)).run()
    print(result.summary())

Campaigns are embarrassingly parallel and restartable.  ``workers``
fans the runs out over a process pool (record-for-record identical to
serial execution -- per-run RNG streams are derived by name, not call
order), and ``results_path``/``resume`` checkpoint every completed run
to a JSONL file so an interrupted campaign continues where it stopped::

    config = CampaignConfig(fault_model="BF", n_runs=1000, workers=4,
                            results_path="bf.jsonl", resume=True)
    result = Campaign(app, config).run()     # Ctrl-C and re-run freely
    print(result.summary())

The same engine backs the CLI (``python -m repro campaign --app nyx
--model BF --workers 4 --out bf.jsonl --resume``) and every experiment
driver (``python -m repro run table3 --workers 4``).
"""

from repro.core import (
    BitFlipFault,
    Campaign,
    CampaignConfig,
    CampaignResult,
    DroppedWriteFault,
    FaultGenerator,
    FaultInjector,
    FaultSignature,
    IOProfiler,
    MetadataCampaign,
    Outcome,
    OutcomeTally,
    ParallelExecutor,
    ProfileGoldenCache,
    ReadCorruptionFault,
    RunPlan,
    RunSpec,
    SerialExecutor,
    ShornWriteFault,
    SweepCell,
    SweepPlan,
    SweepResult,
    execute_plan,
    execute_sweep,
    load_records,
    make_fault_model,
)
from repro.fusefs import FFISFileSystem, MountPoint, mount

__version__ = "1.0.0"

__all__ = [
    "BitFlipFault",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "DroppedWriteFault",
    "FaultGenerator",
    "FaultInjector",
    "FaultSignature",
    "IOProfiler",
    "MetadataCampaign",
    "ReadCorruptionFault",
    "Outcome",
    "OutcomeTally",
    "ParallelExecutor",
    "ProfileGoldenCache",
    "RunPlan",
    "RunSpec",
    "SerialExecutor",
    "ShornWriteFault",
    "SweepCell",
    "SweepPlan",
    "SweepResult",
    "execute_plan",
    "execute_sweep",
    "load_records",
    "make_fault_model",
    "FFISFileSystem",
    "MountPoint",
    "mount",
    "__version__",
]
