"""FITS header cards: fixed 80-character keyword records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import FormatError

CARD_SIZE = 80

Value = Union[bool, int, float, str, None]


@dataclass(frozen=True)
class Card:
    keyword: str
    value: Value = None
    comment: str = ""

    def __post_init__(self) -> None:
        if len(self.keyword) > 8:
            raise ValueError(f"FITS keyword too long: {self.keyword!r}")
        if not self.keyword.replace("-", "").replace("_", "").isalnum() and self.keyword:
            raise ValueError(f"invalid FITS keyword: {self.keyword!r}")


def _format_value(value: Value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return ("T" if value else "F").rjust(20)
    if isinstance(value, int):
        return str(value).rjust(20)
    if isinstance(value, float):
        return repr(value).rjust(20)
    if isinstance(value, str):
        quoted = "'" + value.replace("'", "''") + "'"
        return quoted.ljust(20)
    raise TypeError(f"unsupported card value type {type(value)!r}")


def format_card(card: Card) -> bytes:
    """Render a card as exactly 80 ASCII bytes."""
    if card.keyword in ("END",):
        text = "END"
    elif card.keyword in ("COMMENT", "HISTORY", ""):
        text = f"{card.keyword:<8}{card.comment}"
    else:
        text = f"{card.keyword:<8}= {_format_value(card.value)}"
        if card.comment:
            text += f" / {card.comment}"
    if len(text) > CARD_SIZE:
        raise ValueError(f"card too long: {text!r}")
    return text.ljust(CARD_SIZE).encode("ascii")


def _parse_value(text: str) -> Value:
    text = text.strip()
    if not text:
        return None
    if text == "T":
        return True
    if text == "F":
        return False
    if text.startswith("'"):
        end = text.rfind("'")
        if end <= 0:
            raise FormatError(f"unterminated string value in card: {text!r}")
        return text[1:end].replace("''", "'").rstrip()
    try:
        if any(c in text for c in ".eEdD"):
            return float(text.replace("D", "E").replace("d", "e"))
        return int(text)
    except ValueError:
        raise FormatError(f"unparseable card value: {text!r}") from None


def parse_card(raw: bytes) -> Card:
    """Parse one 80-byte card; malformed cards raise :class:`FormatError`."""
    if len(raw) != CARD_SIZE:
        raise FormatError(f"card must be 80 bytes, got {len(raw)}")
    try:
        text = raw.decode("ascii")
    except UnicodeDecodeError:
        raise FormatError("non-ASCII bytes in header card") from None
    keyword = text[:8].strip()
    if keyword == "END":
        return Card("END")
    if keyword in ("COMMENT", "HISTORY", ""):
        return Card(keyword, comment=text[8:].rstrip())
    if text[8:10] != "= ":
        raise FormatError(f"missing value indicator in card: {text!r}")
    rest = text[10:]
    slash = _find_comment_separator(rest)
    value_text = rest[:slash] if slash >= 0 else rest
    comment = rest[slash + 1 :].strip() if slash >= 0 else ""
    return Card(keyword, _parse_value(value_text), comment)


def _find_comment_separator(rest: str) -> int:
    """Index of the ``/`` starting the comment, respecting quoted strings."""
    in_string = False
    i = 0
    while i < len(rest):
        c = rest[i]
        if c == "'":
            if in_string and i + 1 < len(rest) and rest[i + 1] == "'":
                i += 1  # escaped quote
            else:
                in_string = not in_string
        elif c == "/" and not in_string:
            return i
        i += 1
    return -1
