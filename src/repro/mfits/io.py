"""FITS serialization over the FFIS mount: 2880-byte block I/O.

Header and data are padded to the FITS block size and written through the
instrumentable ``ffis_write`` primitive in block-sized chunks, so Montage
stage outputs present the same per-write fault surface as real FITS I/O.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import FormatError
from repro.fusefs.mount import MountPoint
from repro.mfits.cards import CARD_SIZE, Card, format_card, parse_card
from repro.mfits.hdu import ImageHDU

BLOCK_SIZE = 2880
CARDS_PER_BLOCK = BLOCK_SIZE // CARD_SIZE


def write_fits(mp: MountPoint, path: str, hdu: ImageHDU) -> int:
    """Write *hdu* to *path*; returns the number of ``ffis_write`` calls."""
    cards = hdu.header_cards()
    header = b"".join(format_card(c) for c in cards)
    pad = (-len(header)) % BLOCK_SIZE
    header += b" " * pad

    # FITS stores big-endian float32.
    raw = hdu.data.astype(">f4").tobytes()
    data_pad = (-len(raw)) % BLOCK_SIZE
    raw += b"\x00" * data_pad

    n_writes = 0
    with mp.open(path, "w") as f:
        for start in range(0, len(header), BLOCK_SIZE):
            f.write(header[start : start + BLOCK_SIZE])
            n_writes += 1
        for start in range(0, len(raw), BLOCK_SIZE):
            f.write(raw[start : start + BLOCK_SIZE])
            n_writes += 1
    return n_writes


def read_fits(mp: MountPoint, path: str) -> ImageHDU:
    """Read a single-HDU FITS file; malformed files raise :class:`FormatError`."""
    buf = mp.read_file(path)
    if len(buf) < BLOCK_SIZE:
        raise FormatError(f"{path}: shorter than one FITS block")

    cards: List[Card] = []
    pos = 0
    ended = False
    while not ended:
        if pos + BLOCK_SIZE > len(buf):
            raise FormatError(f"{path}: header has no END card")
        block = buf[pos : pos + BLOCK_SIZE]
        pos += BLOCK_SIZE
        for i in range(CARDS_PER_BLOCK):
            raw = block[i * CARD_SIZE : (i + 1) * CARD_SIZE]
            if raw.strip() == b"" and any(c.keyword == "END" for c in cards):
                continue
            card = parse_card(raw)
            cards.append(card)
            if card.keyword == "END":
                ended = True
                break

    index = {c.keyword: c.value for c in cards}
    nx, ny = index.get("NAXIS1"), index.get("NAXIS2")
    if not isinstance(nx, int) or not isinstance(ny, int):
        raise FormatError(f"{path}: missing NAXIS1/NAXIS2")
    nbytes = nx * ny * 4
    raw = buf[pos : pos + nbytes]
    if len(raw) < nbytes:
        raise FormatError(
            f"{path}: data unit truncated ({len(raw)} of {nbytes} bytes)")
    data = np.frombuffer(raw, dtype=">f4").astype(np.float32)
    return ImageHDU.from_cards(cards, data)
