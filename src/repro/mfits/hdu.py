"""A single-image FITS HDU: mandatory cards + float32 pixel matrix."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import FormatError
from repro.mfits.cards import Card


@dataclass
class ImageHDU:
    """One image extension: 2-D float32 data plus a keyword dictionary.

    ``header`` holds auxiliary keywords (WCS reference pixel, projection
    stage provenance, ...); the mandatory structural cards (SIMPLE,
    BITPIX, NAXIS*) are derived from ``data`` at write time and validated
    at read time.
    """

    data: np.ndarray
    header: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float32)
        if self.data.ndim != 2:
            raise ValueError(f"ImageHDU requires 2-D data, got {self.data.ndim}-D")

    @property
    def shape(self) -> tuple:
        return self.data.shape

    def mandatory_cards(self) -> List[Card]:
        ny, nx = self.data.shape
        return [
            Card("SIMPLE", True, "conforms to FITS standard"),
            Card("BITPIX", -32, "IEEE single-precision float"),
            Card("NAXIS", 2, "number of data axes"),
            Card("NAXIS1", nx, "length of data axis 1"),
            Card("NAXIS2", ny, "length of data axis 2"),
        ]

    def header_cards(self) -> List[Card]:
        cards = self.mandatory_cards()
        for key, value in self.header.items():
            cards.append(Card(key, value))
        cards.append(Card("END"))
        return cards

    @classmethod
    def from_cards(cls, cards: List[Card], data: np.ndarray) -> "ImageHDU":
        index = {c.keyword: c.value for c in cards if c.keyword}
        if index.get("SIMPLE") is not True:
            raise FormatError("not a standard FITS file (SIMPLE != T)")
        if index.get("BITPIX") != -32:
            raise FormatError(f"unsupported BITPIX {index.get('BITPIX')!r}")
        if index.get("NAXIS") != 2:
            raise FormatError(f"unsupported NAXIS {index.get('NAXIS')!r}")
        nx, ny = index.get("NAXIS1"), index.get("NAXIS2")
        if not isinstance(nx, int) or not isinstance(ny, int) or nx <= 0 or ny <= 0:
            raise FormatError(f"bad image dimensions NAXIS1={nx!r} NAXIS2={ny!r}")
        if data.size != nx * ny:
            raise FormatError(
                f"data has {data.size} pixels, header claims {nx}x{ny}")
        extra = {c.keyword: c.value for c in cards
                 if c.keyword not in ("SIMPLE", "BITPIX", "NAXIS", "NAXIS1",
                                      "NAXIS2", "END", "COMMENT", "HISTORY", "")}
        return cls(data=data.reshape(ny, nx), header=extra)
