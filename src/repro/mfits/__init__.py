"""mini-FITS: the Flexible Image Transport System subset Montage needs.

Implements single-HDU FITS files with 80-character header cards in
2880-byte blocks and big-endian IEEE float32 image data (``BITPIX=-32``),
which is what the paper's Montage workload (2MASS Atlas images around
m101) reads and writes at every pipeline stage.
"""

from repro.mfits.cards import Card, format_card, parse_card
from repro.mfits.hdu import ImageHDU
from repro.mfits.io import BLOCK_SIZE, read_fits, write_fits

__all__ = [
    "Card",
    "format_card",
    "parse_card",
    "ImageHDU",
    "read_fits",
    "write_fits",
    "BLOCK_SIZE",
]
