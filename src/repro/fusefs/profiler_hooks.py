"""Observation-only hooks used by the I/O profiler and by tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.fusefs.interposer import CallDecision, PrimitiveCall


class CountingHook:
    """Counts dynamic executions of the primitive it is attached to.

    The paper's I/O profiler runs the application fault-free and records
    how many times the target primitive executes; that count defines the
    uniform instance distribution the injector samples from (requirement
    R4: repressiveness/uniformity).
    """

    def __init__(self) -> None:
        self.count = 0
        self.bytes_written = 0

    def __call__(self, call: PrimitiveCall) -> Optional[CallDecision]:
        self.count += 1
        size = call.args.get("size")
        if call.primitive == "ffis_write" and isinstance(size, int):
            self.bytes_written += size
        return None


@dataclass(frozen=True)
class TraceRecord:
    """One traced primitive invocation (arguments summarized, not copied)."""

    primitive: str
    seqno: int
    summary: Dict[str, Any]


class TraceHook:
    """Records a summary of every invocation, for debugging and tests.

    Buffers are summarized by length to keep traces small; set
    ``keep_buffers=True`` to retain full contents (tests of fault-model
    byte effects use this).
    """

    def __init__(self, keep_buffers: bool = False) -> None:
        self.records: List[TraceRecord] = []
        self.keep_buffers = keep_buffers

    def __call__(self, call: PrimitiveCall) -> Optional[CallDecision]:
        summary: Dict[str, Any] = {}
        for key, value in call.args.items():
            if isinstance(value, (bytes, bytearray)) and not self.keep_buffers:
                summary[key] = f"<{len(value)} bytes>"
            else:
                summary[key] = value
        self.records.append(TraceRecord(call.primitive, call.seqno, summary))
        return None
