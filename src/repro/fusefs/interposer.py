"""The instrumentation hook chain at the heart of the FUSE substitute.

Every VFS primitive builds a :class:`PrimitiveCall` describing its
arguments and dispatches it through the :class:`Interposer` before touching
the backing store.  Hooks registered for the primitive run in registration
order and may:

* observe the call (profiling),
* mutate ``call.args`` in place (BIT_FLIP / SHORN_WRITE rewrite the write
  buffer exactly as the paper's instrumented ``FFIS_write`` rewrites the
  ``buffer/size/offset`` triple handed to ``pwrite``),
* return :attr:`CallDecision.SUPPRESS` to elide the underlying operation
  while still reporting success (DROPPED_WRITE).

The interposer also assigns each primitive invocation a dense sequence
number, which is the coordinate system used by the fault injector ("inject
at the k-th dynamic execution of the primitive").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class CallDecision(enum.Enum):
    """A hook's verdict on the in-flight primitive call."""

    PROCEED = "proceed"
    SUPPRESS = "suppress"


@dataclass
class PrimitiveCall:
    """One dynamic invocation of a VFS primitive.

    ``args`` is mutable; hooks rewrite entries in place.  ``seqno`` is the
    0-based dynamic execution index of this primitive within the current
    interposer (i.e. within the current mount session).

    ``result_transform`` lets a hook corrupt what the primitive *returns*
    rather than what it receives -- the read-path corruption model of
    CORDS-style injectors (the application sees corrupted bytes, the
    device content stays intact).  Only ``ffis_read`` honours it.
    """

    primitive: str
    args: Dict[str, Any]
    seqno: int
    suppressed: bool = False
    notes: List[str] = field(default_factory=list)
    result_transform: Optional[Callable[[bytes], bytes]] = None


# A hook takes the call and optionally returns a decision; ``None`` means
# PROCEED.  Hooks must not raise for ordinary operation -- an exception
# escaping a hook propagates into the application and will be classified
# as a crash by the campaign runner.
Hook = Callable[[PrimitiveCall], Optional[CallDecision]]


class Interposer:
    """Routes primitive calls through per-primitive hook chains."""

    def __init__(self) -> None:
        self._hooks: Dict[str, List[Hook]] = {}
        self._global_hooks: List[Hook] = []
        self._phase_listeners: List[Callable[[str], None]] = []
        self._counters: Dict[str, int] = {}

    # -- registration --------------------------------------------------------

    def add_hook(self, primitive: str, hook: Hook) -> None:
        """Register *hook* for one primitive (e.g. ``"ffis_write"``)."""
        self._hooks.setdefault(primitive, []).append(hook)

    def add_global_hook(self, hook: Hook) -> None:
        """Register *hook* for every primitive (runs before specific hooks)."""
        self._global_hooks.append(hook)

    def remove_hook(self, primitive: str, hook: Hook) -> None:
        self._hooks.get(primitive, []).remove(hook)

    def remove_global_hook(self, hook: Hook) -> None:
        self._global_hooks.remove(hook)

    def add_phase_listener(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired when the application ends a named
        phase.  Phase boundaries are the only primitive-free events the
        instrumentation layer exposes; at-rest fault scenarios corrupt
        persisted bytes there, between stages, with no call in flight."""
        self._phase_listeners.append(listener)

    def notify_phase_end(self, name: str) -> None:
        """Tell listeners the application just finished phase *name*."""
        for listener in list(self._phase_listeners):
            listener(name)

    def clear_hooks(self) -> None:
        self._hooks.clear()
        self._global_hooks.clear()
        self._phase_listeners.clear()

    # -- dispatch -------------------------------------------------------------

    def count(self, primitive: str) -> int:
        """Dynamic executions of *primitive* seen so far in this session."""
        return self._counters.get(primitive, 0)

    def dispatch(self, primitive: str, args: Dict[str, Any]) -> PrimitiveCall:
        """Run the hook chain for one invocation and return the final call.

        The caller (the VFS primitive) inspects ``call.suppressed`` and
        ``call.args`` to decide what, if anything, to forward to the
        backing store.
        """
        seqno = self._counters.get(primitive, 0)
        self._counters[primitive] = seqno + 1
        call = PrimitiveCall(primitive=primitive, args=args, seqno=seqno)
        for hook in self._global_hooks:
            if hook(call) is CallDecision.SUPPRESS:
                call.suppressed = True
        for hook in self._hooks.get(primitive, ()):
            if hook(call) is CallDecision.SUPPRESS:
                call.suppressed = True
        return call

    def reset_counters(self) -> None:
        """Forget dynamic execution counts (new mount session)."""
        self._counters.clear()

    def counters_snapshot(self) -> Dict[str, int]:
        """A copy of every primitive's dynamic execution count."""
        return dict(self._counters)

    def set_counters(self, counters: Dict[str, int]) -> None:
        """Adopt previously captured counts (prefix-replay restore: the
        sequence numbering continues exactly where the snapshot left
        off, so absolute injection instances keep their meaning)."""
        self._counters = dict(counters)
