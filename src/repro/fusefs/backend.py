"""Backing stores for the virtual file system.

A backend owns the *data blocks* of regular files, addressed by inode
number.  It deliberately knows nothing about paths, directories or
permissions -- those live in the inode layer -- mirroring the split
between a FUSE daemon's namespace logic and the underlying device the
paper's FFISFS forwards to with ``pwrite``.

Semantics shared by all backends (and relied on by the fault models):

* ``pwrite`` beyond end-of-file zero-fills the gap, creating a *hole*.
  A DROPPED_WRITE therefore leaves a zero region if any later write lands
  past it -- exactly the manifestation the paper describes.
* ``pread`` beyond end-of-file returns only the available bytes (possibly
  empty), like POSIX ``pread``.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Union


class StorageBackend(ABC):
    """Abstract block store addressed by inode number."""

    @abstractmethod
    def create(self, ino: int) -> None:
        """Allocate an empty extent for inode *ino* (idempotent)."""

    @abstractmethod
    def delete(self, ino: int) -> None:
        """Release the extent of inode *ino* (missing extents are ignored)."""

    @abstractmethod
    def pread(self, ino: int, size: int, offset: int) -> bytes:
        """Read up to *size* bytes at *offset*; short reads at EOF."""

    @abstractmethod
    def pwrite(self, ino: int, data: bytes, offset: int) -> int:
        """Write *data* at *offset*, zero-filling any gap; returns len(data)."""

    @abstractmethod
    def truncate(self, ino: int, size: int) -> None:
        """Grow (zero-fill) or shrink the extent to *size* bytes."""

    @abstractmethod
    def size(self, ino: int) -> int:
        """Current extent length in bytes."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every extent (used when re-formatting between runs)."""


class MemoryBackend(StorageBackend):
    """In-memory backend: one extent per inode, with copy-on-write forks.

    This is the default for fault-injection campaigns -- thousands of
    mount/run/unmount cycles with no disk traffic.

    An extent is either a private ``bytearray`` (mutable in place) or a
    shared immutable ``bytes`` object produced by :meth:`fork`.  Forking
    freezes every extent in place and returns a shallow mapping of the
    frozen objects; :meth:`restore_fork` adopts such a mapping as the
    live extent table.  Writes materialize a private ``bytearray`` copy
    on first touch, so however many restored file systems share one
    fork, none can alias another's mutations -- the mechanism behind
    the prefix-replay engine's cheap per-run state restores.
    """

    def __init__(self) -> None:
        self._extents: Dict[int, Union[bytes, bytearray]] = {}

    def create(self, ino: int) -> None:
        self._extents.setdefault(ino, bytearray())

    def delete(self, ino: int) -> None:
        self._extents.pop(ino, None)

    def _extent(self, ino: int) -> Union[bytes, bytearray]:
        try:
            return self._extents[ino]
        except KeyError:
            raise KeyError(f"backend has no extent for inode {ino}") from None

    def _writable(self, ino: int) -> bytearray:
        """The extent as a private mutable buffer (copy-on-write)."""
        ext = self._extent(ino)
        if not isinstance(ext, bytearray):
            ext = bytearray(ext)
            self._extents[ino] = ext
        return ext

    def pread(self, ino: int, size: int, offset: int) -> bytes:
        if size < 0 or offset < 0:
            raise ValueError("size and offset must be non-negative")
        ext = self._extent(ino)
        if isinstance(ext, bytes):
            # Slicing bytes already yields immutable bytes: one copy
            # (or zero, for a whole-extent read) instead of two.
            return ext[offset : offset + size]
        return bytes(memoryview(ext)[offset : offset + size])

    def pwrite(self, ino: int, data: bytes, offset: int) -> int:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        ext = self._writable(ino)
        end = offset + len(data)
        if offset > len(ext):
            ext.extend(b"\x00" * (offset - len(ext)))
        if end > len(ext):
            ext.extend(b"\x00" * (end - len(ext)))
        ext[offset:end] = data
        return len(data)

    def truncate(self, ino: int, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == self.size(ino):
            return
        ext = self._writable(ino)
        if size <= len(ext):
            del ext[size:]
        else:
            ext.extend(b"\x00" * (size - len(ext)))

    def size(self, ino: int) -> int:
        return len(self._extent(ino))

    def clear(self) -> None:
        self._extents.clear()

    # -- copy-on-write forks --------------------------------------------------

    def fork(self) -> Mapping[int, bytes]:
        """Freeze every extent in place and return the frozen table.

        The returned mapping shares its ``bytes`` objects with this
        backend: extents untouched after the fork stay the *same*
        object, which is what makes both restore (dict copy) and
        "has this extent changed since the fork?" checks O(1).
        """
        for ino, ext in list(self._extents.items()):
            if not isinstance(ext, bytes):
                self._extents[ino] = bytes(ext)
        return dict(self._extents)

    def restore_fork(self, extents: Mapping[int, bytes]) -> None:
        """Adopt a fork as the live extent table (copy-on-write)."""
        self._extents = dict(extents)

    def extent_object(self, ino: int) -> Optional[Union[bytes, bytearray]]:
        """The raw extent object (for identity/equality probes), or
        ``None`` if the inode has no extent.  Callers must not mutate."""
        return self._extents.get(ino)

    def adopt_extent(self, ino: int, data: bytes) -> None:
        """Install a shared immutable extent (snapshot-delta application).

        The object is adopted as-is, copy-on-write: the first local
        mutation materializes a private copy.
        """
        self._extents[ino] = data


class DirectoryBackend(StorageBackend):
    """Backend that persists extents as files in a host directory.

    Useful for post-mortem inspection of corrupted files produced during a
    campaign.  Each inode is stored as ``<root>/ino_<n>.bin``.
    """

    def __init__(self, root: str) -> None:
        self._root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, ino: int) -> str:
        return os.path.join(self._root, f"ino_{ino}.bin")

    def create(self, ino: int) -> None:
        path = self._path(ino)
        if not os.path.exists(path):
            with open(path, "wb"):
                pass

    def delete(self, ino: int) -> None:
        try:
            os.unlink(self._path(ino))
        except FileNotFoundError:
            pass

    def pread(self, ino: int, size: int, offset: int) -> bytes:
        if size < 0 or offset < 0:
            raise ValueError("size and offset must be non-negative")
        try:
            with open(self._path(ino), "rb") as f:
                f.seek(offset)
                return f.read(size)
        except FileNotFoundError:
            raise KeyError(f"backend has no extent for inode {ino}") from None

    def pwrite(self, ino: int, data: bytes, offset: int) -> int:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        path = self._path(ino)
        if not os.path.exists(path):
            raise KeyError(f"backend has no extent for inode {ino}")
        with open(path, "r+b") as f:
            f.seek(0, os.SEEK_END)
            end = f.tell()
            if offset > end:
                f.write(b"\x00" * (offset - end))
            f.seek(offset)
            f.write(data)
        return len(data)

    def truncate(self, ino: int, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        path = self._path(ino)
        if not os.path.exists(path):
            raise KeyError(f"backend has no extent for inode {ino}")
        with open(path, "r+b") as f:
            f.truncate(size)

    def size(self, ino: int) -> int:
        try:
            return os.path.getsize(self._path(ino))
        except FileNotFoundError:
            raise KeyError(f"backend has no extent for inode {ino}") from None

    def clear(self) -> None:
        for name in os.listdir(self._root):
            if name.startswith("ino_") and name.endswith(".bin"):
                os.unlink(os.path.join(self._root, name))
