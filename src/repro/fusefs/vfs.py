"""The FFIS virtual file system: POSIX-style primitives over a backend.

Each public ``ffis_*`` method mirrors a FUSE callback from the paper's
FFISFS (Table I lists ``FFISwrite``, ``FFISmknod``, ``FFISchmod`` as fault
hosts).  Every primitive funnels through the :class:`Interposer`, so fault
models and profilers interpose without the application -- or this class --
knowing about them (requirement R1: transparency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import (
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotMounted,
    VFSError,
)
from repro.fusefs.backend import MemoryBackend, StorageBackend
from repro.fusefs.inode import InodeImage, InodeKind, InodeTable
from repro.fusefs.interposer import Interposer

#: The primitive names that can host faults, in the paper's nomenclature.
PRIMITIVES = (
    "ffis_open",
    "ffis_read",
    "ffis_write",
    "ffis_mknod",
    "ffis_chmod",
    "ffis_truncate",
    "ffis_unlink",
    "ffis_rename",
    "ffis_mkdir",
    "ffis_rmdir",
    "ffis_fsync",
    "ffis_release",
)


@dataclass(frozen=True)
class StatResult:
    """Subset of ``struct stat`` returned by :meth:`FFISFileSystem.ffis_getattr`."""

    ino: int
    kind: InodeKind
    mode: int
    nlink: int
    size: int
    ctime: int
    mtime: int


class OpenMode(enum.Enum):
    READ = "r"
    WRITE = "w"          # create/truncate
    APPEND = "a"
    READ_WRITE = "r+"    # existing file, read/write


@dataclass(frozen=True)
class FsImage:
    """A point-in-time image of a whole :class:`FFISFileSystem`.

    ``extents`` shares immutable ``bytes`` objects with the backend
    fork it came from (copy-on-write), so capturing and restoring are
    both O(number of files), not O(bytes).  ``handles`` records open
    descriptors as ``(fd, ino, mode value, position)`` tuples; the
    interposer's *hooks* are deliberately not part of the image --
    restore is a state operation, instrumentation stays armed.
    """

    extents: Mapping[int, bytes]
    inodes: Mapping[int, InodeImage]
    next_ino: int
    clock: int
    next_fd: int
    handles: Tuple[Tuple[int, int, str, int], ...]
    counters: Mapping[str, int]


class FileHandle:
    """An open-file descriptor with a sequential position cursor.

    Sequential :meth:`write`/:meth:`read` are conveniences layered over the
    positional ``ffis_write``/``ffis_read`` primitives -- only the
    primitives are interposition points.
    """

    def __init__(self, fs: "FFISFileSystem", fd: int, ino: int, mode: OpenMode, pos: int) -> None:
        self._fs = fs
        self.fd = fd
        self.ino = ino
        self.mode = mode
        self.pos = pos
        self.closed = False

    # -- positional I/O -------------------------------------------------------

    def pwrite(self, data: bytes, offset: int) -> int:
        # No defensive copy here: ffis_write normalizes the buffer to
        # immutable bytes exactly once before any hook sees it.
        return self._fs.ffis_write(self.fd, data, len(data), offset)

    def pread(self, size: int, offset: int) -> bytes:
        return self._fs.ffis_read(self.fd, size, offset)

    # -- sequential I/O -------------------------------------------------------

    def write(self, data: bytes) -> int:
        n = self.pwrite(data, self.pos)
        self.pos += n
        return n

    def read(self, size: int = -1) -> bytes:
        if size < 0:
            size = max(self._fs.file_size_of(self.fd) - self.pos, 0)
        data = self.pread(size, self.pos)
        self.pos += len(data)
        return data

    def seek(self, offset: int, whence: int = 0) -> int:
        if whence == 0:
            self.pos = offset
        elif whence == 1:
            self.pos += offset
        elif whence == 2:
            self.pos = self._fs.file_size_of(self.fd) + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if self.pos < 0:
            raise ValueError("negative seek position")
        return self.pos

    def tell(self) -> int:
        return self.pos

    def truncate(self, size: Optional[int] = None) -> None:
        self._fs.ffis_ftruncate(self.fd, self.pos if size is None else size)

    def fsync(self) -> None:
        self._fs.ffis_fsync(self.fd)

    def close(self) -> None:
        if not self.closed:
            self._fs.ffis_release(self.fd)
            self.closed = True

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FFISFileSystem:
    """An instrumentable in-process file system.

    Parameters
    ----------
    backend:
        Block store for regular-file data; defaults to a fresh
        :class:`MemoryBackend`.
    """

    def __init__(self, backend: Optional[StorageBackend] = None) -> None:
        self.backend: StorageBackend = backend if backend is not None else MemoryBackend()
        self.inodes = InodeTable()
        self.interposer = Interposer()
        self._fds: Dict[int, FileHandle] = {}
        self._next_fd = 3  # skip the conventional stdio numbers
        self._mounted = False

    # -- mount lifecycle ------------------------------------------------------

    @property
    def mounted(self) -> bool:
        return self._mounted

    def _set_mounted(self, value: bool) -> None:
        if value and self._mounted:
            raise NotMounted("file system is already mounted")
        if not value:
            # Invalidate every open descriptor, like a forced unmount.
            self._fds.clear()
        self._mounted = value

    def _require_mounted(self) -> None:
        if not self._mounted:
            raise NotMounted("file system is not mounted")

    def format(self) -> None:
        """Reset to an empty file system (fails while mounted)."""
        if self._mounted:
            raise NotMounted("cannot format a mounted file system")
        self.backend.clear()
        self.inodes = InodeTable()
        self._fds.clear()
        self._next_fd = 3

    # -- snapshot / restore ---------------------------------------------------

    @property
    def supports_snapshots(self) -> bool:
        """Whether the backend can fork its extents copy-on-write."""
        return hasattr(self.backend, "fork") and hasattr(self.backend,
                                                         "restore_fork")

    def snapshot(self) -> Optional[FsImage]:
        """A copy-on-write image of the complete file-system state.

        Captures the backend extents (frozen, shared), the inode table,
        open-handle state, and the interposer's dynamic counters --
        everything :meth:`restore` needs to resume execution mid-run.
        Returns ``None`` when the backend cannot fork (e.g. a
        :class:`DirectoryBackend`); callers fall back to cold runs.
        """
        if not self.supports_snapshots:
            return None
        handles = tuple((h.fd, h.ino, h.mode.value, h.pos)
                        for h in self._fds.values() if not h.closed)
        return FsImage(extents=self.backend.fork(),
                       inodes=self.inodes.snapshot_images(),
                       next_ino=self.inodes.next_ino,
                       clock=self.inodes.clock,
                       next_fd=self._next_fd,
                       handles=handles,
                       counters=self.interposer.counters_snapshot())

    def restore(self, image: FsImage) -> None:
        """Adopt *image* as the live state (copy-on-write).

        Interposer hooks and phase listeners are untouched: a fault
        hook armed before the restore stays armed, and the restored
        counters make absolute injection instances line up with the
        run the image was captured from.
        """
        if not self.supports_snapshots:
            raise VFSError(
                f"{type(self.backend).__name__} does not support snapshots")
        self.backend.restore_fork(image.extents)
        self.inodes.restore_images(image.inodes, next_ino=image.next_ino,
                                   clock=image.clock)
        self._fds = {fd: FileHandle(self, fd, ino, OpenMode(mode), pos)
                     for fd, ino, mode, pos in image.handles}
        self._next_fd = image.next_fd
        self.interposer.set_counters(dict(image.counters))

    # -- descriptor helpers ---------------------------------------------------

    def _handle(self, fd: int) -> FileHandle:
        try:
            h = self._fds[fd]
        except KeyError:
            raise BadFileDescriptor(f"fd {fd}") from None
        if h.closed:
            raise BadFileDescriptor(f"fd {fd} is closed")
        return h

    def file_size_of(self, fd: int) -> int:
        return self.inodes.get(self._handle(fd).ino).size

    def open_handle(self, fd: int) -> Optional[FileHandle]:
        """The live handle for *fd*, or ``None`` (instrumentation use:
        hooks resolve a dispatched fd to its inode without risking
        :class:`BadFileDescriptor`)."""
        handle = self._fds.get(fd)
        if handle is None or handle.closed:
            return None
        return handle

    @property
    def next_fd(self) -> int:
        return self._next_fd

    def set_next_fd(self, fd: int) -> None:
        """Advance descriptor numbering (snapshot-delta application)."""
        self._next_fd = fd

    # -- primitives -----------------------------------------------------------

    def ffis_getattr(self, path: str) -> StatResult:
        self._require_mounted()
        node = self.inodes.lookup(path)
        return StatResult(
            ino=node.ino, kind=node.kind, mode=node.mode, nlink=node.nlink,
            size=node.size, ctime=node.ctime, mtime=node.mtime,
        )

    def ffis_mkdir(self, path: str, mode: int = 0o755) -> None:
        self._require_mounted()
        call = self.interposer.dispatch("ffis_mkdir", {"path": path, "mode": mode})
        if call.suppressed:
            return
        self.inodes.create(call.args["path"], InodeKind.DIRECTORY, mode=call.args["mode"])

    def ffis_rmdir(self, path: str) -> None:
        self._require_mounted()
        call = self.interposer.dispatch("ffis_rmdir", {"path": path})
        if call.suppressed:
            return
        parent, name = self.inodes.lookup_parent(call.args["path"])
        self.inodes.rmdir(parent, name)

    def ffis_mknod(self, path: str, mode: int = 0o644, dev: int = 0) -> None:
        """Create a regular file, FIFO, or device node.

        Mirrors the paper's ``FFIS_mknod``: hooks may rewrite ``mode`` and
        ``dev`` before they are applied (Fig. 3b).
        """
        self._require_mounted()
        call = self.interposer.dispatch("ffis_mknod", {"path": path, "mode": mode, "dev": dev})
        if call.suppressed:
            return
        mode = call.args["mode"]
        kind = InodeKind.FILE
        if mode & 0o010000:
            kind = InodeKind.FIFO
        elif mode & 0o060000:
            kind = InodeKind.DEVICE
        node = self.inodes.create(call.args["path"], kind, mode=mode & 0o7777,
                                  rdev=call.args["dev"])
        if kind is InodeKind.FILE:
            self.backend.create(node.ino)

    def ffis_chmod(self, path: str, mode: int) -> None:
        self._require_mounted()
        call = self.interposer.dispatch("ffis_chmod", {"path": path, "mode": mode})
        if call.suppressed:
            return
        node = self.inodes.lookup(call.args["path"])
        node.mode = call.args["mode"] & 0o7777
        self.inodes.touch_mtime(node)

    def ffis_open(self, path: str, mode: str = "r") -> FileHandle:
        self._require_mounted()
        call = self.interposer.dispatch("ffis_open", {"path": path, "mode": mode})
        path, mode = call.args["path"], call.args["mode"]
        try:
            om = OpenMode(mode)
        except ValueError:
            raise VFSError(f"unsupported open mode {mode!r}") from None

        exists = self.inodes.exists(path)
        if om is OpenMode.READ or om is OpenMode.READ_WRITE:
            if not exists:
                raise FileNotFound(path)
            node = self.inodes.lookup(path)
        else:  # WRITE / APPEND create on demand
            if exists:
                node = self.inodes.lookup(path)
            else:
                node = self.inodes.create(path, InodeKind.FILE)
                self.backend.create(node.ino)
        if node.is_dir:
            raise IsADirectory(path)
        if om is OpenMode.WRITE:
            self.backend.truncate(node.ino, 0)
            node.size = 0
        pos = node.size if om is OpenMode.APPEND else 0

        fd = self._next_fd
        self._next_fd += 1
        handle = FileHandle(self, fd, node.ino, om, pos)
        self._fds[fd] = handle
        return handle

    def ffis_read(self, fd: int, size: int, offset: int) -> bytes:
        self._require_mounted()
        handle = self._handle(fd)
        call = self.interposer.dispatch(
            "ffis_read", {"fd": fd, "size": size, "offset": offset})
        if call.suppressed:
            return b""
        data = self.backend.pread(handle.ino, call.args["size"], call.args["offset"])
        if call.result_transform is not None:
            # Read-path corruption: the application observes corrupted
            # bytes while the device content stays intact (transient).
            data = call.result_transform(data)
        return data

    def ffis_write(self, fd: int, buf: bytes, size: int, offset: int) -> int:
        """The paper's ``FFIS_write``: hooks may rewrite ``buf``/``size``/
        ``offset`` or suppress the call entirely; the (possibly modified)
        triple is forwarded to the backend's ``pwrite``.

        Like ``pwrite(2)`` with a shorn buffer, if hooks shrink ``buf``
        below ``size`` only ``len(buf)`` bytes land on the device -- the
        remainder of the target range keeps its previous (stale or hole)
        content, which is the on-disk manifestation of a shorn write.
        """
        self._require_mounted()
        handle = self._handle(fd)
        if handle.mode is OpenMode.READ:
            raise VFSError(f"fd {fd} is read-only")
        # Hooks must observe an immutable buffer (a fault model keeps a
        # reference past the call; the application may recycle its own
        # mutable buffer).  Normalize exactly once: bytes pass through
        # untouched, bytearray/memoryview pay a single copy here.
        if not isinstance(buf, bytes):
            buf = bytes(buf)
        call = self.interposer.dispatch(
            "ffis_write", {"fd": fd, "buf": buf, "size": size, "offset": offset})
        node = self.inodes.get(handle.ino)
        if call.suppressed:
            # The write is dropped on the device, but success is reported to
            # the application -- including the size accounting layers above
            # may rely on.  The logical file size still advances because the
            # application believes the bytes landed.
            claimed = call.args["size"]
            node.size = max(node.size, call.args["offset"] + claimed)
            return claimed
        buf2: bytes = call.args["buf"]
        size2: int = call.args["size"]
        offset2: int = call.args["offset"]
        written = self.backend.pwrite(node.ino, buf2[:size2], offset2)
        node.size = max(node.size, offset2 + size2, self.backend.size(node.ino))
        # Keep the backend extent in sync with the claimed size so later
        # reads of the unwritten tail observe holes rather than EOF.
        if self.backend.size(node.ino) < node.size:
            self.backend.truncate(node.ino, node.size)
        self.inodes.touch_mtime(node)
        return max(written, size2)

    def ffis_truncate(self, path: str, size: int) -> None:
        self._require_mounted()
        call = self.interposer.dispatch("ffis_truncate", {"path": path, "size": size})
        if call.suppressed:
            return
        node = self.inodes.lookup(call.args["path"])
        if node.is_dir:
            raise IsADirectory(path)
        self.backend.truncate(node.ino, call.args["size"])
        node.size = call.args["size"]
        self.inodes.touch_mtime(node)

    def ffis_ftruncate(self, fd: int, size: int) -> None:
        self._require_mounted()
        handle = self._handle(fd)
        node = self.inodes.get(handle.ino)
        self.backend.truncate(node.ino, size)
        node.size = size
        self.inodes.touch_mtime(node)

    def ffis_unlink(self, path: str) -> None:
        self._require_mounted()
        call = self.interposer.dispatch("ffis_unlink", {"path": path})
        if call.suppressed:
            return
        parent, name = self.inodes.lookup_parent(call.args["path"])
        node = self.inodes.unlink(parent, name)
        if node.nlink <= 0 and node.kind is InodeKind.FILE:
            self.backend.delete(node.ino)

    def ffis_rename(self, src: str, dst: str) -> None:
        self._require_mounted()
        call = self.interposer.dispatch("ffis_rename", {"src": src, "dst": dst})
        if call.suppressed:
            return
        src, dst = call.args["src"], call.args["dst"]
        sparent, sname = self.inodes.lookup_parent(src)
        if sname not in sparent.entries:
            raise FileNotFound(src)
        dparent, dname = self.inodes.lookup_parent(dst)
        if dname in dparent.entries:
            raise FileExists(dst)
        dparent.entries[dname] = sparent.entries.pop(sname)
        self.inodes.touch_mtime(sparent)
        self.inodes.touch_mtime(dparent)

    def ffis_fsync(self, fd: int) -> None:
        self._require_mounted()
        self._handle(fd)
        self.interposer.dispatch("ffis_fsync", {"fd": fd})

    def ffis_release(self, fd: int) -> None:
        self._require_mounted()
        handle = self._handle(fd)
        self.interposer.dispatch("ffis_release", {"fd": fd})
        handle.closed = True
        del self._fds[fd]

    def ffis_readdir(self, path: str) -> List[str]:
        self._require_mounted()
        node = self.inodes.lookup(path) if path != "/" else self.inodes.get(1)
        if not node.is_dir:
            raise VFSError(f"{path} is not a directory")
        return sorted(node.entries)
