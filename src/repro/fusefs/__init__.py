"""FUSE-substitute substrate: an in-process, instrumentable file system.

The paper interposes on application I/O with a FUSE file system (FFISFS);
every POSIX call the application makes is routed through user-space
callbacks where FFIS can rewrite the ``(buffer, size, offset)`` triple
before it reaches the backing store.  This package provides the same
interposition contract without a kernel: :class:`FFISFileSystem` exposes a
POSIX-style primitive set, every primitive funnels through an
:class:`Interposer` hook chain, and :func:`mount` provides the per-run
mount/unmount lifecycle the paper performs between injection runs.
"""

from repro.fusefs.backend import MemoryBackend, DirectoryBackend, StorageBackend
from repro.fusefs.inode import Inode, InodeKind, InodeTable
from repro.fusefs.vfs import FFISFileSystem, FileHandle, StatResult, PRIMITIVES
from repro.fusefs.interposer import Interposer, PrimitiveCall, Hook, CallDecision
from repro.fusefs.mount import MountPoint, mount
from repro.fusefs.profiler_hooks import CountingHook, TraceHook, TraceRecord

__all__ = [
    "MemoryBackend",
    "DirectoryBackend",
    "StorageBackend",
    "Inode",
    "InodeKind",
    "InodeTable",
    "FFISFileSystem",
    "FileHandle",
    "StatResult",
    "PRIMITIVES",
    "Interposer",
    "PrimitiveCall",
    "Hook",
    "CallDecision",
    "MountPoint",
    "mount",
    "CountingHook",
    "TraceHook",
    "TraceRecord",
]
