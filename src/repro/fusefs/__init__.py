"""FUSE-substitute substrate: an in-process, instrumentable file system.

The paper interposes on application I/O with a FUSE file system (FFISFS);
every POSIX call the application makes is routed through user-space
callbacks where FFIS can rewrite the ``(buffer, size, offset)`` triple
before it reaches the backing store.  This package provides the same
interposition contract without a kernel: :class:`FFISFileSystem` exposes a
POSIX-style primitive set, every primitive funnels through an
:class:`Interposer` hook chain, and :func:`mount` provides the per-run
mount/unmount lifecycle the paper performs between injection runs.
"""

from repro.fusefs.backend import DirectoryBackend, MemoryBackend, StorageBackend
from repro.fusefs.inode import Inode, InodeKind, InodeTable
from repro.fusefs.interposer import CallDecision, Hook, Interposer, PrimitiveCall
from repro.fusefs.mount import MountPoint, mount
from repro.fusefs.profiler_hooks import CountingHook, TraceHook, TraceRecord
from repro.fusefs.vfs import PRIMITIVES, FFISFileSystem, FileHandle, StatResult

__all__ = [
    "MemoryBackend",
    "DirectoryBackend",
    "StorageBackend",
    "Inode",
    "InodeKind",
    "InodeTable",
    "FFISFileSystem",
    "FileHandle",
    "StatResult",
    "PRIMITIVES",
    "Interposer",
    "PrimitiveCall",
    "Hook",
    "CallDecision",
    "MountPoint",
    "mount",
    "CountingHook",
    "TraceHook",
    "TraceRecord",
]
