"""Inode table and directory namespace for the virtual file system."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)

ROOT_INO = 1


class InodeKind(enum.Enum):
    """File type stored in an inode (subset of POSIX ``S_IFMT``)."""

    FILE = "file"
    DIRECTORY = "directory"
    FIFO = "fifo"
    DEVICE = "device"


#: Immutable image of one inode: ``(kind, mode, nlink, size, rdev,
#: ctime, mtime, entries)`` with ``entries`` a sorted name->ino tuple.
#: The snapshot/restore machinery trades in these instead of live
#: :class:`Inode` objects so snapshots can be shared between file
#: systems without aliasing mutable state.
InodeImage = Tuple["InodeKind", int, int, int, int, int, int,
                   Tuple[Tuple[str, int], ...]]


@dataclass
class Inode:
    """Metadata record for one file-system object.

    ``size`` is authoritative for regular files (the backend extent is kept
    in sync by the VFS layer); directories track their entry map instead.
    """

    ino: int
    kind: InodeKind
    mode: int = 0o644
    nlink: int = 1
    size: int = 0
    rdev: int = 0
    # Logical timestamps: a per-filesystem operation counter, not wall time,
    # so runs are deterministic.
    ctime: int = 0
    mtime: int = 0
    entries: Dict[str, int] = field(default_factory=dict)

    @property
    def is_dir(self) -> bool:
        return self.kind is InodeKind.DIRECTORY


class InodeTable:
    """Allocates inodes and resolves slash-separated paths to them."""

    def __init__(self) -> None:
        self._inodes: Dict[int, Inode] = {}
        self._next_ino = ROOT_INO
        self._clock = 0
        root = self._alloc(InodeKind.DIRECTORY, mode=0o755)
        assert root.ino == ROOT_INO

    # -- allocation ---------------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _alloc(self, kind: InodeKind, mode: int = 0o644, rdev: int = 0) -> Inode:
        ino = self._next_ino
        self._next_ino += 1
        now = self._tick()
        node = Inode(ino=ino, kind=kind, mode=mode, rdev=rdev, ctime=now, mtime=now)
        self._inodes[ino] = node
        return node

    def get(self, ino: int) -> Inode:
        try:
            return self._inodes[ino]
        except KeyError:
            raise FileNotFound(f"no inode {ino}") from None

    def __len__(self) -> int:
        return len(self._inodes)

    def __iter__(self) -> Iterator[Inode]:
        return iter(self._inodes.values())

    # -- path resolution ----------------------------------------------------

    @staticmethod
    def split(path: str) -> List[str]:
        """Normalize a path into components; rejects empty components."""
        if not path.startswith("/"):
            raise ValueError(f"path must be absolute: {path!r}")
        parts = [p for p in path.split("/") if p]
        for p in parts:
            if p in (".", ".."):
                raise ValueError(f"'.'/'..' components not supported: {path!r}")
        return parts

    def lookup(self, path: str) -> Inode:
        """Resolve *path* to its inode, raising :class:`FileNotFound`."""
        node = self.get(ROOT_INO)
        for part in self.split(path):
            if not node.is_dir:
                raise NotADirectory(f"{part!r} lookup through non-directory")
            try:
                node = self.get(node.entries[part])
            except KeyError:
                raise FileNotFound(path) from None
        return node

    def lookup_parent(self, path: str) -> Tuple[Inode, str]:
        """Resolve the parent directory of *path*; returns (parent, name)."""
        parts = self.split(path)
        if not parts:
            raise ValueError("cannot take the parent of the root directory")
        node = self.get(ROOT_INO)
        for part in parts[:-1]:
            if not node.is_dir:
                raise NotADirectory(f"{part!r} lookup through non-directory")
            try:
                node = self.get(node.entries[part])
            except KeyError:
                raise FileNotFound(path) from None
        if not node.is_dir:
            raise NotADirectory(path)
        return node, parts[-1]

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    # -- namespace mutation --------------------------------------------------

    def link(self, parent: Inode, name: str, node: Inode) -> None:
        if not parent.is_dir:
            raise NotADirectory(f"inode {parent.ino} is not a directory")
        if name in parent.entries:
            raise FileExists(name)
        parent.entries[name] = node.ino
        parent.mtime = self._tick()

    def unlink(self, parent: Inode, name: str) -> Inode:
        if not parent.is_dir:
            raise NotADirectory(f"inode {parent.ino} is not a directory")
        try:
            ino = parent.entries[name]
        except KeyError:
            raise FileNotFound(name) from None
        node = self.get(ino)
        if node.is_dir:
            raise IsADirectory(name)
        del parent.entries[name]
        parent.mtime = self._tick()
        node.nlink -= 1
        if node.nlink <= 0:
            del self._inodes[ino]
        return node

    def rmdir(self, parent: Inode, name: str) -> Inode:
        try:
            ino = parent.entries[name]
        except KeyError:
            raise FileNotFound(name) from None
        node = self.get(ino)
        if not node.is_dir:
            raise NotADirectory(name)
        if node.entries:
            raise DirectoryNotEmpty(name)
        del parent.entries[name]
        del self._inodes[ino]
        parent.mtime = self._tick()
        return node

    def create(self, path: str, kind: InodeKind, mode: int = 0o644, rdev: int = 0) -> Inode:
        parent, name = self.lookup_parent(path)
        node = self._alloc(kind, mode=mode, rdev=rdev)
        self.link(parent, name, node)
        return node

    def touch_mtime(self, node: Inode) -> None:
        node.mtime = self._tick()

    # -- snapshot / restore ---------------------------------------------------

    @staticmethod
    def image_of(node: Inode) -> InodeImage:
        """An immutable image of *node* (see :data:`InodeImage`)."""
        return (node.kind, node.mode, node.nlink, node.size, node.rdev,
                node.ctime, node.mtime,
                tuple(sorted(node.entries.items())))

    @staticmethod
    def _node_from_image(ino: int, image: InodeImage) -> Inode:
        kind, mode, nlink, size, rdev, ctime, mtime, entries = image
        return Inode(ino=ino, kind=kind, mode=mode, nlink=nlink, size=size,
                     rdev=rdev, ctime=ctime, mtime=mtime,
                     entries=dict(entries))

    def snapshot_images(self) -> Dict[int, InodeImage]:
        """Every inode as an immutable image, keyed by inode number."""
        return {ino: self.image_of(node) for ino, node in self._inodes.items()}

    def restore_images(self, images: Mapping[int, InodeImage],
                       next_ino: int, clock: int) -> None:
        """Rebuild the whole table from images (fresh Inode objects)."""
        self._inodes = {ino: self._node_from_image(ino, image)
                        for ino, image in images.items()}
        self._next_ino = next_ino
        self._clock = clock

    def set_image(self, ino: int, image: InodeImage) -> None:
        """Overwrite (or create) one inode from its image."""
        self._inodes[ino] = self._node_from_image(ino, image)

    def drop(self, ino: int) -> None:
        """Remove one inode outright (snapshot-delta application)."""
        self._inodes.pop(ino, None)

    def get_or_none(self, ino: int) -> Optional[Inode]:
        return self._inodes.get(ino)

    @property
    def next_ino(self) -> int:
        return self._next_ino

    @property
    def clock(self) -> int:
        return self._clock

    def set_scalars(self, next_ino: int, clock: int) -> None:
        self._next_ino = next_ino
        self._clock = clock
