"""Mount/unmount lifecycle and the user-facing :class:`MountPoint` API.

The paper remounts FFISFS around every fault-injection run "to mimic the
real scenario on the HPC system".  :func:`mount` reproduces that
discipline: a context manager that marks the file system mounted, resets
the interposer's dynamic counters (a fresh mount is a fresh sequence of
primitive executions), and guarantees unmount on exit even when the
application under test crashes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.fusefs.vfs import FFISFileSystem, FileHandle, StatResult


class MountPoint:
    """Handle applications use to perform I/O on a mounted FFIS fs.

    Thin convenience wrappers (``write_file``, ``read_file``) are layered
    on the primitives so that *every* byte still flows through the
    interposer; there is no side channel around the fault injector.
    """

    def __init__(self, fs: FFISFileSystem) -> None:
        self.fs = fs

    # -- file handles ----------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> FileHandle:
        return self.fs.ffis_open(path, mode)

    # -- whole-file helpers ------------------------------------------------------

    def write_file(self, path: str, data: bytes, block_size: Optional[int] = None) -> int:
        """Write *data* to *path*, optionally split into *block_size* writes.

        HPC I/O stacks issue large writes in device-block-sized chunks;
        splitting matters here because fault models are defined per write
        (e.g. a shorn 4 KiB write).
        """
        with self.open(path, "w") as f:
            if block_size is None:
                return f.write(data)
            total = 0
            view = memoryview(data)
            for start in range(0, len(data), block_size):
                # Zero-copy block carve-out; the write primitive freezes
                # each block to bytes exactly once for its hooks.
                total += f.write(view[start : start + block_size])
            return total

    def read_file(self, path: str) -> bytes:
        with self.open(path, "r") as f:
            return f.read()

    # -- namespace ----------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.fs.inodes.exists(path)

    def stat(self, path: str) -> StatResult:
        return self.fs.ffis_getattr(path)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self.fs.ffis_mkdir(path, mode)

    def makedirs(self, path: str) -> None:
        parts = [p for p in path.split("/") if p]
        cur = ""
        for p in parts:
            cur += "/" + p
            if not self.exists(cur):
                self.mkdir(cur)

    def listdir(self, path: str = "/") -> List[str]:
        return self.fs.ffis_readdir(path)

    def remove(self, path: str) -> None:
        self.fs.ffis_unlink(path)

    def rename(self, src: str, dst: str) -> None:
        self.fs.ffis_rename(src, dst)

    def truncate(self, path: str, size: int) -> None:
        self.fs.ffis_truncate(path, size)

    def mknod(self, path: str, mode: int = 0o644, dev: int = 0) -> None:
        self.fs.ffis_mknod(path, mode, dev)

    def chmod(self, path: str, mode: int) -> None:
        self.fs.ffis_chmod(path, mode)


@contextmanager
def mount(fs: FFISFileSystem, reset_counters: bool = True) -> Iterator[MountPoint]:
    """Mount *fs* for the duration of the ``with`` block.

    Parameters
    ----------
    reset_counters:
        Start the primitive sequence numbering afresh (the default).  The
        I/O profiler and the fault injector both assume counters start at
        zero at mount time, matching the paper's remount-per-run protocol.
    """
    fs._set_mounted(True)
    if reset_counters:
        fs.interposer.reset_counters()
    try:
        yield MountPoint(fs)
    finally:
        fs._set_mounted(False)
