"""Little-endian binary packing helpers shared by the file-format codecs."""

from __future__ import annotations

import zlib


def pack_uint(value: int, nbytes: int) -> bytes:
    """Pack a non-negative integer into *nbytes* little-endian bytes."""
    if value < 0:
        raise ValueError(f"cannot pack negative value {value}")
    if value >= 1 << (8 * nbytes):
        raise ValueError(f"value {value} does not fit in {nbytes} bytes")
    return value.to_bytes(nbytes, "little")


def unpack_uint(buf: bytes, offset: int, nbytes: int) -> int:
    """Unpack *nbytes* little-endian bytes at *offset* as an unsigned int."""
    if offset < 0 or offset + nbytes > len(buf):
        raise ValueError(
            f"cannot read {nbytes} bytes at offset {offset} from {len(buf)}-byte buffer"
        )
    return int.from_bytes(buf[offset : offset + nbytes], "little")


def pad_to(buf: bytes, size: int, fill: int = 0) -> bytes:
    """Pad *buf* with *fill* bytes up to *size* (error if already larger)."""
    if len(buf) > size:
        raise ValueError(f"buffer of {len(buf)} bytes exceeds target size {size}")
    return buf + bytes([fill]) * (size - len(buf))


def checksum32(buf: bytes) -> int:
    """CRC-32 checksum used for optional integrity fields."""
    return zlib.crc32(buf) & 0xFFFFFFFF
