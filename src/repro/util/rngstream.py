"""Named, reproducible random-number streams.

Every stochastic component of the reproduction (field generation, Monte
Carlo walkers, fault-instance selection, bit positions) draws from its own
named stream derived from a campaign master seed.  Deriving streams by
*name* rather than by call order means adding a new consumer never
perturbs the draws of existing consumers -- campaigns stay replayable
across code evolution.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, *names: object) -> int:
    """Derive a child seed from *master_seed* and a path of stream names.

    The derivation hashes the textual path with SHA-256, so it is stable
    across processes and Python versions (unlike ``hash()``).
    """
    h = hashlib.sha256()
    h.update(str(int(master_seed)).encode())
    for name in names:
        h.update(b"/")
        h.update(str(name).encode())
    return int.from_bytes(h.digest()[:8], "little")


class RngStream:
    """A hierarchy of named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int, *path: object) -> None:
        self._seed = derive_seed(master_seed, *path) if path else int(master_seed)
        self._path = tuple(path)
        self._master = int(master_seed)

    @property
    def seed(self) -> int:
        return self._seed

    def generator(self) -> np.random.Generator:
        """A fresh generator for this stream (always starts from the seed)."""
        return np.random.default_rng(self._seed)

    def child(self, *names: object) -> "RngStream":
        """Derive a sub-stream; ``child('a').child('b') == child('a','b')``."""
        return RngStream(self._master, *self._path, *names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(master={self._master}, path={'/'.join(map(str, self._path))!r})"
