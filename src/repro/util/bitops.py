"""Bit-level manipulation helpers used by fault models and the float codec.

All buffer-oriented helpers use a consistent bit-addressing convention:
bit ``i`` of a byte buffer lives in byte ``i // 8`` at intra-byte position
``i % 8`` counted from the least-significant bit.  This matches the HDF5
File Format Specification, whose floating-point property fields (bit
offset, exponent location, mantissa location) address bits from the LSB of
the little-endian element.
"""

from __future__ import annotations

from typing import Iterable


def get_bit(buf: bytes, bit_index: int) -> int:
    """Return bit ``bit_index`` (0 = LSB of byte 0) of *buf* as 0 or 1."""
    if bit_index < 0 or bit_index >= 8 * len(buf):
        raise IndexError(f"bit index {bit_index} out of range for {len(buf)} bytes")
    return (buf[bit_index >> 3] >> (bit_index & 7)) & 1


def set_bit(buf: bytes, bit_index: int, value: int) -> bytes:
    """Return a copy of *buf* with bit ``bit_index`` set to *value* (0/1)."""
    if bit_index < 0 or bit_index >= 8 * len(buf):
        raise IndexError(f"bit index {bit_index} out of range for {len(buf)} bytes")
    out = bytearray(buf)
    mask = 1 << (bit_index & 7)
    if value:
        out[bit_index >> 3] |= mask
    else:
        out[bit_index >> 3] &= ~mask & 0xFF
    return bytes(out)


def flip_bit(buf: bytes, bit_index: int) -> bytes:
    """Return a copy of *buf* with bit ``bit_index`` inverted."""
    if bit_index < 0 or bit_index >= 8 * len(buf):
        raise IndexError(f"bit index {bit_index} out of range for {len(buf)} bytes")
    out = bytearray(buf)
    out[bit_index >> 3] ^= 1 << (bit_index & 7)
    return bytes(out)


def flip_bits(buf: bytes, bit_indices: Iterable[int]) -> bytes:
    """Return a copy of *buf* with every bit in *bit_indices* inverted."""
    out = bytearray(buf)
    n = 8 * len(out)
    for bit_index in bit_indices:
        if bit_index < 0 or bit_index >= n:
            raise IndexError(f"bit index {bit_index} out of range for {len(out)} bytes")
        out[bit_index >> 3] ^= 1 << (bit_index & 7)
    return bytes(out)


def flip_consecutive_bits(buf: bytes, start_bit: int, count: int) -> bytes:
    """Flip *count* consecutive bits of *buf* starting at *start_bit*.

    This is the paper's BIT_FLIP feature ("flip consecutive multiple bits",
    2 by default, 4 in the footnote-3 ablation).  The run is clamped to the
    buffer end so a start near the final bit still flips at least one bit.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    n = 8 * len(buf)
    if start_bit < 0 or start_bit >= n:
        raise IndexError(f"start bit {start_bit} out of range for {len(buf)} bytes")
    end = min(start_bit + count, n)
    return flip_bits(buf, range(start_bit, end))


def extract_bits(value: int, location: int, size: int) -> int:
    """Extract *size* bits of *value* starting at bit *location* (LSB = 0)."""
    if size < 0 or location < 0:
        raise ValueError("location and size must be non-negative")
    if size == 0:
        return 0
    return (value >> location) & ((1 << size) - 1)


def deposit_bits(value: int, field: int, location: int, size: int) -> int:
    """Return *value* with *size* bits at *location* replaced by *field*."""
    if size < 0 or location < 0:
        raise ValueError("location and size must be non-negative")
    if size == 0:
        return value
    mask = ((1 << size) - 1) << location
    return (value & ~mask) | ((field << location) & mask)


def popcount_bytes(buf: bytes) -> int:
    """Number of set bits across *buf*."""
    return sum(bin(b).count("1") for b in buf)


def hamming_distance(a: bytes, b: bytes) -> int:
    """Number of differing bits between equal-length buffers *a* and *b*."""
    if len(a) != len(b):
        raise ValueError("buffers must have equal length")
    return sum(bin(x ^ y).count("1") for x, y in zip(a, b))
