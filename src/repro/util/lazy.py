"""Shared PEP 562 lazy-export machinery for package ``__init__``\\ s.

The curated packages (:mod:`repro`, :mod:`repro.core`,
:mod:`repro.experiments`, :mod:`repro.study`) all export by name ->
``(module, attribute)`` mapping, resolved on first attribute access so
importing a package costs nothing until a name is used.  This helper
keeps the ``__getattr__``/``__dir__`` implementation in one place.

Usage::

    _EXPORTS = {"Thing": ("pkg.module", "Thing"), ...}
    __getattr__, __dir__ = lazy_exports(__name__, globals(), _EXPORTS)
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Mapping, Tuple


def resolve_export(module: str, attr: str) -> Any:
    return getattr(importlib.import_module(module), attr)


def lazy_exports(module_name: str, namespace: Dict[str, Any],
                 exports: Mapping[str, Tuple[str, str]],
                 ) -> Tuple[Callable[[str], Any], Callable[[], list]]:
    """Build the ``(__getattr__, __dir__)`` pair for one package."""

    def __getattr__(name: str) -> Any:
        try:
            module, attr = exports[name]
        except KeyError:
            raise AttributeError(
                f"module {module_name!r} has no attribute {name!r}"
            ) from None
        value = resolve_export(module, attr)
        namespace[name] = value  # cache: resolve each name at most once
        return value

    def __dir__() -> list:
        return sorted(set(namespace) | set(exports))

    return __getattr__, __dir__
