"""Shared low-level utilities: bit manipulation, RNG streams, binary codecs."""

from repro.util.bitops import (
    flip_bit,
    flip_bits,
    flip_consecutive_bits,
    get_bit,
    set_bit,
    extract_bits,
    deposit_bits,
    popcount_bytes,
    hamming_distance,
)
from repro.util.rngstream import RngStream, derive_seed
from repro.util.binary import (
    pack_uint,
    unpack_uint,
    pad_to,
    checksum32,
)

__all__ = [
    "flip_bit",
    "flip_bits",
    "flip_consecutive_bits",
    "get_bit",
    "set_bit",
    "extract_bits",
    "deposit_bits",
    "popcount_bytes",
    "hamming_distance",
    "RngStream",
    "derive_seed",
    "pack_uint",
    "unpack_uint",
    "pad_to",
    "checksum32",
]
