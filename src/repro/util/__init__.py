"""Shared low-level utilities: bit manipulation, RNG streams, binary codecs.

Exports resolve lazily (PEP 562, via :mod:`repro.util.lazy`) so packages
that only need the lazy-export helper never pay for numpy.
"""

from repro.util.lazy import lazy_exports

_EXPORTS = {
    name: ("repro.util.bitops", name) for name in (
        "flip_bit", "flip_bits", "flip_consecutive_bits", "get_bit",
        "set_bit", "extract_bits", "deposit_bits", "popcount_bytes",
        "hamming_distance",
    )
}
_EXPORTS.update({
    "RngStream": ("repro.util.rngstream", "RngStream"),
    "derive_seed": ("repro.util.rngstream", "derive_seed"),
    "pack_uint": ("repro.util.binary", "pack_uint"),
    "unpack_uint": ("repro.util.binary", "unpack_uint"),
    "pad_to": ("repro.util.binary", "pad_to"),
    "checksum32": ("repro.util.binary", "checksum32"),
})

__all__ = sorted(_EXPORTS)

__getattr__, __dir__ = lazy_exports(__name__, globals(), _EXPORTS)
