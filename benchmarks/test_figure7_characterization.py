"""Bench for Figure 7: the {NYX, QMC, MT1..4} x {BF, SW, DW} grid.

This is the paper's headline experiment.  Each application gets its own
bench so timings and failures are attributable; every bench asserts the
qualitative shape of its row block.  ``REPRO_FI_RUNS`` scales the
campaigns (paper: 1,000 per cell).
"""

from repro.analysis.tables import render_outcome_grid
from repro.core.outcomes import Outcome
from repro.experiments.figure7 import (
    FAULT_MODELS,
    MONTAGE_STAGES,
    PAPER_NOTES,
    run_figure7_cell,
)
from repro.experiments.params import default_runs, montage_default, nyx_default, qmcpack_default

from conftest import run_once

RUNS = default_runs(150)


def _cells_report(cells):
    grid = render_outcome_grid(cells)
    notes = "\n".join(f"  paper {label}: {PAPER_NOTES[label]}"
                      for label in cells if label in PAPER_NOTES)
    return grid + notes + "\n"


def test_figure7_nyx(benchmark, save_report):
    app = nyx_default()

    def run_nyx_row():
        return {f"NYX-{fm}": run_figure7_cell(app, fm, RUNS) for fm in FAULT_MODELS}

    cells = run_once(benchmark, run_nyx_row)
    save_report("figure7_nyx", _cells_report(cells))

    bf, sw, dw = cells["NYX-BF"], cells["NYX-SW"], cells["NYX-DW"]
    # Paper: BF 91.1 % benign, 0.8 % SDC (lowest of the apps).
    assert bf.rate(Outcome.BENIGN) > 0.80
    assert bf.rate(Outcome.SDC) < 0.10
    # Paper: SW fully masked by the halo finder.
    assert sw.rate(Outcome.BENIGN) > 0.75
    # Paper: DW 1000/1000 SDC; at our scale a small fraction of drops hit
    # the metadata/flag writes and crash instead.
    assert dw.rate(Outcome.SDC) > 0.90
    assert dw.rate(Outcome.BENIGN) == 0.0


def test_figure7_qmcpack(benchmark, save_report):
    app = qmcpack_default()

    def run_qmc_row():
        return {f"QMC-{fm}": run_figure7_cell(app, fm, RUNS) for fm in FAULT_MODELS}

    cells = run_once(benchmark, run_qmc_row)
    save_report("figure7_qmcpack", _cells_report(cells))

    bf, sw, dw = cells["QMC-BF"], cells["QMC-SW"], cells["QMC-DW"]
    # Paper: ~60 % SDC under BF, ~37 % benign -- QMCPACK is the least
    # resilient app because the DMC restart file propagates faults.
    assert bf.rate(Outcome.SDC) > 0.30
    assert 0.15 < bf.rate(Outcome.BENIGN) < 0.70
    # Paper: SW 54 % SDC, essentially no detected.
    assert sw.rate(Outcome.SDC) > 0.35
    assert sw.rate(Outcome.DETECTED) < 0.15
    # Paper: DW has the most detected (43 %) and some crash (12 %).
    assert dw.rate(Outcome.DETECTED) > bf.rate(Outcome.DETECTED)
    assert dw.rate(Outcome.DETECTED) > sw.rate(Outcome.DETECTED)
    assert dw.rate(Outcome.CRASH) > 0.03


def test_figure7_montage(benchmark, save_report):
    app = montage_default()

    def run_montage_block():
        cells = {}
        for fm in FAULT_MODELS:
            for i, stage in enumerate(MONTAGE_STAGES, start=1):
                cells[f"MT{i}-{fm}"] = run_figure7_cell(app, fm, RUNS,
                                                        phase=stage)
        return cells

    cells = run_once(benchmark, run_montage_block)
    save_report("figure7_montage", _cells_report(cells))

    bf_sdc = [cells[f"MT{i}-BF"].rate(Outcome.SDC) for i in range(1, 5)]
    sw_sdc = [cells[f"MT{i}-SW"].rate(Outcome.SDC) for i in range(1, 5)]
    dw_sdc = [cells[f"MT{i}-DW"].rate(Outcome.SDC) for i in range(1, 5)]

    # Paper: BF rates stay relatively stable and low across stages.
    assert max(bf_sdc) < 0.45
    assert max(bf_sdc) - min(bf_sdc) < 0.35
    # Paper: mDiffExec (MT2) has the lowest BF SDC rate -- its output only
    # feeds plane-fit coefficients.
    assert bf_sdc[1] <= min(bf_sdc) + 0.05
    # Paper: DW varies far more drastically across stages than BF.
    assert max(dw_sdc) - min(dw_sdc) > max(bf_sdc) - min(bf_sdc)
    # SW sits between: substantial SDC in at least one stage.
    assert max(sw_sdc) > 0.25
