"""Bench: the fused Figure 7 sweep vs the sequential-cells baseline.

The PR 1 engine ran the 18-cell grid as 18 isolated ``Campaign.run()``
calls, each paying its own fault-free profile + golden capture -- the
same Montage pair re-executed twelve times for bit-identical results.
The fused sweep plans the whole grid against one shared cache (one
fault-free pair per distinct application) and dispatches every cell's
specs through one executor.

This bench times both styles on the same reduced grid, asserts the
fused sweep is record-for-record identical to the sequential cells
(fusion changes cost, not science), and asserts it is measurably
faster -- which here comes from *deleting* redundant fault-free runs,
so it holds even on a single-core host.
"""

from __future__ import annotations

import time

from repro.experiments.figure7 import (
    FAULT_MODELS,
    MONTAGE_STAGES,
    run_figure7,
    run_figure7_cell,
)
from repro.experiments.params import (
    default_runs,
    montage_default,
    nyx_default,
    qmcpack_default,
)

#: Runs per cell.  Small enough that the 2-per-cell fault-free overhead
#: the fusion deletes is a visible fraction of the total; the full-scale
#: grid benches live in test_figure7_characterization.py.
RUNS = default_runs(8)


def _sequential_cells(apps):
    """The PR 1 baseline: one isolated Campaign.run() per cell."""
    cells = {}
    for fm in FAULT_MODELS:
        cells[f"NYX-{fm}"] = run_figure7_cell(apps["NYX"], fm, RUNS)
        cells[f"QMC-{fm}"] = run_figure7_cell(apps["QMC"], fm, RUNS)
        for i, stage in enumerate(MONTAGE_STAGES, start=1):
            cells[f"MT{i}-{fm}"] = run_figure7_cell(apps["MT"], fm, RUNS,
                                                    phase=stage)
    return cells


def test_figure7_fused_sweep_beats_sequential_cells(benchmark, save_report,
                                                    save_engine_baseline):
    apps = {"NYX": nyx_default(), "QMC": qmcpack_default(),
            "MT": montage_default()}

    start = time.perf_counter()
    sequential = _sequential_cells(apps)
    sequential_s = time.perf_counter() - start

    def fused_run():
        return run_figure7(n_runs=RUNS, apps=apps)

    start = time.perf_counter()
    fused = benchmark.pedantic(fused_run, rounds=1, iterations=1,
                               warmup_rounds=0)
    fused_s = time.perf_counter() - start

    # Fusion changes cost, not science: every cell record-identical.
    assert set(fused.cells) == set(sequential)
    for label, cell in sequential.items():
        assert fused.cells[label].records == cell.records

    n_cells = len(sequential)
    sequential_fault_free = n_cells              # golden capture per cell
    speedup = sequential_s / fused_s if fused_s else float("inf")
    save_report("figure7_fused_sweep", (
        f"Figure 7 grid ({n_cells} cells x {RUNS} runs), sequential "
        "cells vs fused sweep\n"
        f"  sequential cells : {sequential_s:8.2f} s "
        f"({sequential_fault_free} fault-free runs)\n"
        f"  fused sweep      : {fused_s:8.2f} s "
        f"({fused.fault_free_runs} fault-free runs)\n"
        f"  speedup          : {speedup:8.2f}x\n"
        "  records identical: True\n"))
    save_engine_baseline("figure7_fused_sweep", {
        "cells": n_cells,
        "runs_per_cell": RUNS,
        "sequential_wall_s": round(sequential_s, 3),
        "fused_wall_s": round(fused_s, 3),
        "fault_free_runs": fused.fault_free_runs,
        "speedup": round(speedup, 2),
        "records_identical": True,
    })

    # The fused sweep runs 3 shared golden captures instead of 18
    # (profiles are derived from the captures, not executed).
    assert fused.fault_free_runs == len(apps)
    # Fewer application executions must mean less wall clock, serial on
    # any host; margin kept loose so bench noise doesn't flake it.
    assert fused_s < sequential_s, (
        f"fused sweep {fused_s:.2f}s not faster than sequential "
        f"cells {sequential_s:.2f}s")
