"""Benchmark harness configuration.

Every paper table/figure has one bench module.  Each bench

* times the experiment via pytest-benchmark (one round -- these are
  campaign workloads, not microbenchmarks),
* writes the rendered paper-vs-measured report to
  ``benchmarks/results/<experiment>.txt``, and
* asserts the qualitative shape so a regression in the reproduction
  fails the bench rather than silently producing different science.

Campaign sizes follow ``REPRO_FI_RUNS`` (default 150 per cell here;
``REPRO_FI_RUNS=1000`` reproduces the paper's statistics).
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_collection_modifyitems(items):
    """Every bench is a full campaign workload: mark them all ``slow``.

    The fast lane (``pytest -m "not slow"``) then runs only the unit
    suite; the benches still gate the full sweep.  The hook sees the
    whole session's items, so restrict to this directory.
    """
    bench_dir = os.path.dirname(__file__)
    for item in items:
        if str(item.fspath).startswith(bench_dir + os.sep):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    """Write (and echo) an experiment's rendered report."""

    def _save(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"\n===== {name} =====\n{text}")

    return _save


ENGINE_BASELINE = os.path.join(RESULTS_DIR, "BENCH_engine.json")


@pytest.fixture
def save_engine_baseline(results_dir):
    """Merge one engine benchmark's metrics into ``BENCH_engine.json``.

    The machine-readable companion to the ``.txt`` reports: every
    engine-level bench records wall time, throughput, speedup, and its
    records-identical flag under its own key, so future performance
    work has a trajectory to regress against instead of prose.
    """
    import json

    def _save(name: str, metrics: dict) -> None:
        data = {}
        if os.path.exists(ENGINE_BASELINE):
            with open(ENGINE_BASELINE, encoding="utf-8") as f:
                try:
                    data = json.load(f)
                except ValueError:
                    data = {}
        data[name] = metrics
        with open(ENGINE_BASELINE, "w", encoding="utf-8") as f:
            json.dump(data, f, indent=2, sort_keys=True)
            f.write("\n")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once (campaigns are their own repetition)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
