"""Ablation bench: write-path (FFIS) vs read-path (CORDS-style) injection.

The paper's Related Work contrasts FFIS with CORDS, which "randomly
modifies the content of a read buffer".  The methodological difference is
persistence: a write-path fault stays on the device and poisons every
later consumer, while a read-path fault corrupts one read and vanishes.
On Montage (whose stages re-read intermediates repeatedly) that
difference is directly measurable.
"""

from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.outcomes import Outcome
from repro.experiments.params import default_runs, montage_default, qmcpack_default

from conftest import run_once

RUNS = default_runs(120)


def test_ablation_read_vs_write_path(benchmark, save_report):
    montage = montage_default()
    qmc = qmcpack_default()

    def run():
        mt_write = Campaign(montage, CampaignConfig(
            fault_model="BF", n_runs=RUNS, seed=41)).run()
        mt_read = Campaign(montage, CampaignConfig(
            fault_model="RC", n_runs=RUNS, seed=41)).run()
        qmc_read = Campaign(qmc, CampaignConfig(
            fault_model="RC", n_runs=max(RUNS // 3, 20), seed=41)).run()
        return mt_write, mt_read, qmc_read

    mt_write, mt_read, qmc_read = run_once(benchmark, run)
    save_report("ablation_read_path", "\n".join([
        f"montage write-path BF : {mt_write.tally}",
        f"montage read-path  RC : {mt_read.tally}",
        f"qmcpack read-path  RC : {qmc_read.tally}",
    ]) + "\n")

    # A transient read corruption can still reach the mosaic (whichever
    # consumer read the poisoned bytes keeps its products), so RC is not
    # harmless -- but it is never *less* benign than the persistent flip.
    assert mt_read.rate(Outcome.BENIGN) >= mt_write.rate(Outcome.BENIGN) - 0.05
    assert mt_read.tally.total == RUNS
    # QMCPACK's only run-time read is the DMC restart: read corruption
    # there behaves like corrupting the walker file itself.
    assert qmc_read.rate(Outcome.SDC) > 0.2
