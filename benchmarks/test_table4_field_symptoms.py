"""Bench for Table IV: per-field SDC symptoms at the full workload scale."""

from repro.experiments import run_table4

from conftest import run_once


def test_table4_field_symptoms(benchmark, save_report):
    result = run_once(benchmark, run_table4)
    save_report("table4", result.render())

    # Exponent Bias: everything scales, nothing moves (paper Fig. 5b).
    bias = result.row("Exponent Bias")
    assert bias.mass_symptom.startswith("scaled")
    assert bias.location_symptom == "unchanged"
    assert bias.halo_number == "unchanged"
    assert bias.average_value.startswith("scaled by 2^")

    # ARD: everything moves, nothing scales (paper Fig. 5c) -- and the
    # average stays at 1, which is why the paper calls it the severe case.
    ard = result.row("ARD")
    assert ard.mass_symptom == "unchanged"
    assert "shifted" in ard.location_symptom
    assert ard.average_value == "unchanged"

    # Mantissa geometry faults: masses and locations change, average lands
    # in the paper's 1.04-1.55 band.
    msize = result.row("Mantissa Size")
    assert msize.mass_symptom == "changed"
    assert "changed to 1." in msize.average_value

    mloc = result.row("Mantissa Location")
    assert mloc.mass_symptom in ("changed", "no halos")

    # Mantissa Normalization bit-5: average collapses below 1 (implied
    # leading bit dropped; paper reports 0.55 on Nyx data).
    norm = result.row("Mantissa Normalization")
    assert norm.average_value.startswith("changed to 0.")
