"""Bench for Figure 8: halo-mass distribution under DROPPED_WRITE."""

import numpy as np

from repro.experiments import run_figure8

from conftest import run_once


def test_figure8_mass_distribution(benchmark, save_report):
    result = run_once(benchmark, run_figure8)
    save_report("figure8", result.render())

    assert result.golden.n_halos > 0
    assert np.array_equal(result.golden.bin_edges, result.faulty.bin_edges)
    # The distributions differ: some halo moved bins (mass changed) or
    # dissolved -- the paper's "SDC curve differs from the original".
    assert not np.array_equal(result.golden.counts, result.faulty.counts) \
        or result.faulty_halos != result.golden_halos
