"""Bench for Figure 5: the scale/shift signatures of typical SDC cases."""

import numpy as np

from repro.experiments import run_figure5

from conftest import run_once


def test_figure5_sdc_visualization(benchmark, save_report):
    result = run_once(benchmark, run_figure5)
    save_report("figure5", result.render())

    # (b) a faulty Exponent Bias scales the decoded field by an exact
    # power of two.
    assert result.scale_factor == 2.0 ** round(np.log2(result.scale_factor))
    assert result.scale_factor != 1.0

    # The scaled trace really is the original trace times the factor.
    assert np.allclose(result.bias_trace,
                       result.original_trace * result.scale_factor,
                       rtol=1e-6)

    # (c) a faulty ARD shifts the field by a whole number of cells.
    assert result.shift_cells > 0
