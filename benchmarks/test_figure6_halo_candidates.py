"""Bench for Figure 6: candidate loss under a faulty Mantissa Size."""

from repro.experiments import run_figure6

from conftest import run_once


def test_figure6_halo_candidates(benchmark, save_report):
    result = run_once(benchmark, run_figure6)
    save_report("figure6", result.render())

    # The candidate population shrinks...
    assert result.faulty_candidates < result.golden_candidates
    # ...and at least one halo no longer gathers enough candidates to
    # form (the paper's visualized case).
    assert result.faulty_halos < result.golden_halos
