"""Bench: the parallel campaign engine vs the serial reference.

Times the same ≥64-run Nyx BF campaign under the serial executor and a
4-worker process pool, asserts the two record streams are identical
(the engine's determinism contract at campaign scale), and reports the
speedup.  The speedup assertion only applies where the host actually
has multiple cores -- on a single-core box the pool degenerates to
serial execution plus fork overhead, which is exactly what the report
then shows.
"""

from __future__ import annotations

import os
import time

from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.experiments.params import nyx_default

N_RUNS = 64
WORKERS = 4


def test_engine_parallel_speedup(benchmark, save_report,
                                 save_engine_baseline):
    app = nyx_default()
    config = CampaignConfig(fault_model="BF", n_runs=N_RUNS, seed=21)

    start = time.perf_counter()
    serial = Campaign(app, config).run()
    serial_s = time.perf_counter() - start

    def parallel_run():
        return Campaign(app, config).run(workers=WORKERS)

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1,
                                  warmup_rounds=0)
    parallel_s = time.perf_counter() - start

    # The determinism contract, at campaign scale.
    assert parallel.records == serial.records

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    save_report("engine_parallel", (
        f"Engine: Nyx BF campaign, {N_RUNS} runs, "
        f"serial vs --workers {WORKERS} ({cores} cores)\n"
        f"  serial   : {serial_s:8.2f} s\n"
        f"  parallel : {parallel_s:8.2f} s\n"
        f"  speedup  : {speedup:8.2f}x\n"
        "  records identical: True\n"))
    save_engine_baseline("engine_parallel", {
        "runs": N_RUNS,
        "workers": WORKERS,
        "cores": cores,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "serial_runs_per_s": round(N_RUNS / serial_s, 2),
        "parallel_runs_per_s": round(N_RUNS / parallel_s, 2),
        "speedup": round(speedup, 2),
        "records_identical": True,
    })

    if cores >= 2:
        # Measurably faster; the margin is deliberately loose so bench
        # noise on busy CI hosts doesn't flake the determinism check.
        assert parallel_s < serial_s * 0.9, (
            f"parallel {parallel_s:.2f}s not faster than "
            f"serial {serial_s:.2f}s on {cores} cores")
