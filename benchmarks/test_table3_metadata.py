"""Bench for Table III: byte-exhaustive HDF5-metadata fault injection.

Paper reference: 2,432 cases -- SDC 4 (0.2 %), benign 2,085 (85.7 %),
crash 343 (14.1 %).  This bench sweeps every metadata byte (~2,500
application runs) and checks both the proportions and the identity of
the SDC-capable fields.
"""

from repro.core.outcomes import Outcome
from repro.experiments import run_table3

from conftest import run_once


def test_table3_metadata_classification(benchmark, save_report):
    result = run_once(benchmark, run_table3)
    save_report("table3", result.render())

    tally = result.campaign.tally
    assert tally.total > 2000                       # paper: 2,432 cases

    # Proportions: benign dominates, crash is a sizeable minority, SDC is
    # a fraction of a percent.
    assert 0.80 < tally.rate(Outcome.BENIGN) < 0.97     # paper 85.7 %
    assert 0.02 < tally.rate(Outcome.CRASH) < 0.18      # paper 14.1 %
    assert 0.0 < tally.rate(Outcome.SDC) < 0.02         # paper 0.2 %

    # The SDC-capable fields are the paper's set (Table III/IV).
    sdc_fields = " | ".join(result.field_examples.get(Outcome.SDC, []))
    assert any(name in sdc_fields for name in
               ("Exponent Bias", "Mantissa", "Address of Raw Data"))

    # Benign cases are dominated by unused/reserved capacity, the paper's
    # explanation #1.
    benign_fields = " | ".join(result.field_examples.get(Outcome.BENIGN, [])[:3])
    assert "unused" in benign_fields or "reserved" in benign_fields.lower()
