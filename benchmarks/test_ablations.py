"""Ablation benches for the design knobs the paper calls out.

* Footnote 3: 2-bit vs 4-bit BIT_FLIP ("the SDC rate remains minimal for
  Nyx" under the 4-bit model too).
* Table I: SHORN_WRITE's 3/8 vs 7/8 feature.
* DESIGN.md: the tail policy of "undefined" shorn data (stale buffer
  content vs zeros) -- the choice that decides whether Nyx masks shorn
  writes, i.e. a substitution-validity check.
* Fig. 7 note: the average-value detector turns Nyx's DW SDCs into
  detected outcomes.
"""

from repro.apps.nyx import NyxApplication
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.outcomes import Outcome
from repro.experiments.params import default_runs, nyx_default

from conftest import run_once

RUNS = default_runs(120)


def _campaign(app, fault_model, seed=21, **model_params):
    config = CampaignConfig(fault_model=fault_model, n_runs=RUNS, seed=seed,
                            model_params=model_params)
    return Campaign(app, config).run()


def test_ablation_bitflip_width(benchmark, save_report):
    """4-bit flips (footnote 3) leave Nyx's SDC rate minimal, like 2-bit."""
    app = nyx_default()

    def run():
        return (_campaign(app, "BF", n_bits=2), _campaign(app, "BF", n_bits=4))

    two, four = run_once(benchmark, run)
    save_report("ablation_bitflip_width",
                f"2-bit: {two.tally}\n4-bit: {four.tally}\n")
    assert two.rate(Outcome.SDC) < 0.10
    assert four.rate(Outcome.SDC) < 0.10
    assert four.rate(Outcome.BENIGN) > 0.70


def test_ablation_shorn_fraction(benchmark, save_report):
    """3/8 shears lose 5x the bytes of 7/8 shears; Nyx absorbs more of the
    smaller shear and never absorbs less."""
    app = nyx_default()

    def run():
        return (_campaign(app, "SW", fraction=7 / 8),
                _campaign(app, "SW", fraction=3 / 8))

    seven, three = run_once(benchmark, run)
    save_report("ablation_shorn_fraction",
                f"7/8: {seven.tally}\n3/8: {three.tally}\n")
    assert three.rate(Outcome.BENIGN) <= seven.rate(Outcome.BENIGN) + 0.05


def test_ablation_shorn_tail_policy(benchmark, save_report):
    """Stale (in-distribution) tails are what the paper observed -- they
    keep Nyx benign.  Zero tails act like a one-sector dropped write and
    multiply the SDC rate severalfold.  This validates the substitution
    choice documented in DESIGN.md: what "undefined data" physically is
    decides the shorn-write outcome profile."""
    app = nyx_default()

    def run():
        return (_campaign(app, "SW", tail_policy="stale"),
                _campaign(app, "SW", tail_policy="zeros"))

    stale, zeros = run_once(benchmark, run)
    save_report("ablation_shorn_tail_policy",
                f"stale: {stale.tally}\nzeros: {zeros.tally}\n")
    assert stale.rate(Outcome.BENIGN) > 0.75
    assert zeros.rate(Outcome.SDC) > 2.0 * stale.rate(Outcome.SDC)


def test_ablation_average_value_detector(benchmark, save_report):
    """Fig. 7's note: 'all SDC cases with Nyx will be changed to detected
    cases after using the average-value-based method'."""
    plain = nyx_default()
    protected = NyxApplication(seed=plain.seed,
                               field_config=plain.field_config,
                               use_average_detector=True)

    def run():
        return (_campaign(plain, "DW"), _campaign(protected, "DW"))

    without, with_detector = run_once(benchmark, run)
    save_report("ablation_average_detector",
                f"without: {without.tally}\nwith: {with_detector.tally}\n")
    assert without.rate(Outcome.SDC) > 0.90
    assert with_detector.rate(Outcome.SDC) == 0.0
    assert with_detector.rate(Outcome.DETECTED) > 0.90
