"""Bench for Table II: the tested applications' measured I/O inventory."""

from repro.experiments import run_table2

from conftest import run_once


def test_table2_applications(benchmark, save_report):
    result = run_once(benchmark, run_table2)
    save_report("table2", result.render())

    rows = {r.benchmark: r for r in result.rows}
    assert set(rows) == {"nyx", "qmcpack", "montage"}
    # Every app performs substantial instrumentable write traffic.
    for row in rows.values():
        assert row.writes > 5
        assert row.written_bytes > 10_000
        assert row.loc > 200
    # Nyx's snapshot dominates its write volume, like the real plotfiles.
    assert rows["nyx"].written_bytes > rows["qmcpack"].written_bytes
