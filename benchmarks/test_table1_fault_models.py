"""Bench for Table I: fault-model conformance on 4 KiB writes."""

from repro.experiments import run_table1

from conftest import run_once


def test_table1_fault_models(benchmark, save_report):
    result = run_once(benchmark, run_table1)
    save_report("table1", result.render())

    rows = {r.model: r for r in result.rows}
    assert "2 bits flipped" in rows["Bitflip"].measured
    assert rows["Dropped write"].measured.startswith("decision=SUPPRESS")
    shorn = [r for r in result.rows if r.model == "Shorn write"]
    assert {"first 1536 B intact (True)" in r.measured or
            "first 3584 B intact (True)" in r.measured for r in shorn} == {True}
