"""Ablation bench for the paper's compression insight (Sec. V-A).

"The baryon density field in Nyx can be easily compressed ... thus the
importance of metadata would be greatly raised due to its increasing
portion in the whole file."  We write the same snapshot contiguous vs
chunked+deflate and measure (a) the metadata share of the file and of
the write traffic, and (b) how the BIT_FLIP outcome profile shifts:
flips inside a compressed chunk tend to break the deflate filter
(a detectable failure) instead of silently changing one value.
"""

from repro.apps.nyx import FieldConfig, NyxApplication
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.outcomes import Outcome
from repro.experiments.params import default_runs
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem

from conftest import run_once

RUNS = default_runs(120)
FIELD = FieldConfig(shape=(64, 64, 64))
CHUNKS = (16, 64, 64)


def _file_profile(app):
    fs = FFISFileSystem()
    with mount(fs) as mp:
        app.execute(mp)
        file_size = mp.stat(app.output_paths()[0]).size
    plan = app.last_write_result.plan
    return plan.metadata_size, file_size


def test_ablation_compression(benchmark, save_report):
    plain = NyxApplication(seed=2021, field_config=FIELD)
    packed = NyxApplication(seed=2021, field_config=FIELD,
                            chunks=CHUNKS, compression="deflate")

    def run():
        plain_meta, plain_size = _file_profile(plain)
        packed_meta, packed_size = _file_profile(packed)
        plain_bf = Campaign(plain, CampaignConfig(
            fault_model="BF", n_runs=RUNS, seed=31)).run()
        packed_bf = Campaign(packed, CampaignConfig(
            fault_model="BF", n_runs=RUNS, seed=31)).run()
        return (plain_meta, plain_size, packed_meta, packed_size,
                plain_bf, packed_bf)

    (plain_meta, plain_size, packed_meta, packed_size,
     plain_bf, packed_bf) = run_once(benchmark, run)

    plain_fraction = plain_meta / plain_size
    packed_fraction = packed_meta / packed_size
    save_report("ablation_compression", "\n".join([
        f"contiguous : file {plain_size} B, metadata {plain_meta} B "
        f"({100 * plain_fraction:.2f}%)",
        f"compressed : file {packed_size} B, metadata {packed_meta} B "
        f"({100 * packed_fraction:.2f}%)",
        f"compression ratio: {plain_size / packed_size:.2f}x",
        f"BF contiguous : {plain_bf.tally}",
        f"BF compressed : {packed_bf.tally}",
    ]) + "\n")

    # The compressed file is smaller and its metadata share is a multiple
    # of the contiguous one -- the paper's "importance of metadata
    # raised".  (Deflate on float32 mantissa noise manages ~1.1x; the
    # tens-to-hundreds ratios the paper cites come from the error-bounded
    # lossy compressors of its refs [34,35], which would push the
    # metadata share higher still.)
    assert packed_size < plain_size
    assert packed_fraction > 2 * plain_fraction

    # Flips inside compressed chunks break decompression: the crash (and
    # crash+detected) share grows, the silent share does not.
    assert packed_bf.rate(Outcome.CRASH) > plain_bf.rate(Outcome.CRASH)
    detectable_packed = (packed_bf.rate(Outcome.CRASH)
                         + packed_bf.rate(Outcome.DETECTED))
    detectable_plain = (plain_bf.rate(Outcome.CRASH)
                        + plain_bf.rate(Outcome.DETECTED))
    assert detectable_packed > detectable_plain
