"""Bench for Figure 9: the dropped-write black-stripe mosaic artifact."""

from repro.core.outcomes import Outcome
from repro.experiments import run_figure9

from conftest import run_once


def test_figure9_montage_fault(benchmark, save_report):
    result = run_once(benchmark, run_figure9)
    save_report("figure9", result.render())

    # The paper's classification bound: golden min near 82.82...
    assert abs(result.golden_min - 82.82) < 1.0
    # ...and the faulty mosaic leaves the plausible range (detected).
    assert result.outcome is Outcome.DETECTED
    assert abs(result.faulty_min - result.golden_min) > 0.01
    # The visible artifact: a stripe of lost (zero) pixels.
    assert result.dark_pixels >= 100
