"""Bench: the prefix-replay engine vs cold execution on the Figure 7 grid.

The PR 4 engine (fused sweep) already runs each distinct application's
fault-free work once per sweep, but every *faulty* run still re-executes
the whole deterministic application from an empty file system -- even
though, by construction, it is byte-identical to the golden run up to
its injection point.  The prefix-replay engine restores the golden
snapshot at the last step boundary before the injection point and
fast-forwards every suffix step the fault provably cannot influence.

This bench runs the full 18-cell Figure 7 grid both ways, asserts the
two record streams are byte-identical (replay changes cost, not
science), and asserts the replay engine is at least 1.8x faster.  The
committed study fixtures (``tests/data/study_figure7.jsonl``) pin the
same records against the pre-replay engine's checkpoints, so the
speedup is measured against an unchanged baseline.
"""

from __future__ import annotations

import time

from repro.experiments.figure7 import run_figure7
from repro.experiments.params import (
    default_runs,
    montage_default,
    nyx_default,
    qmcpack_default,
)

#: Runs per cell.  The replay win scales with campaign size (the golden
#: capture is a fixed cost both engines pay once); 8 per cell is enough
#: for a stable measurement at bench time scales.
RUNS = default_runs(8)

#: The floor the replay engine must clear over cold execution.
MIN_SPEEDUP = 1.8


def _apps():
    return {"NYX": nyx_default(), "QMC": qmcpack_default(),
            "MT": montage_default()}


def test_prefix_replay_beats_cold_execution(benchmark, save_report,
                                            save_engine_baseline,
                                            monkeypatch):
    # The PR 4 baseline: the same fused sweep, every faulty run cold.
    monkeypatch.setenv("REPRO_NO_REPLAY", "1")
    start = time.perf_counter()
    cold = run_figure7(n_runs=RUNS, apps=_apps())
    cold_s = time.perf_counter() - start
    monkeypatch.delenv("REPRO_NO_REPLAY")

    def replayed_run():
        return run_figure7(n_runs=RUNS, apps=_apps())

    start = time.perf_counter()
    replayed = benchmark.pedantic(replayed_run, rounds=1, iterations=1,
                                  warmup_rounds=0)
    replayed_s = time.perf_counter() - start

    # Replay changes cost, not science: every cell record-identical.
    assert set(replayed.cells) == set(cold.cells)
    identical = all(replayed.cells[label].records == cell.records
                    for label, cell in cold.cells.items())
    assert identical

    n_runs = sum(len(cell.records) for cell in cold.cells.values())
    speedup = cold_s / replayed_s if replayed_s else float("inf")
    save_report("prefix_replay", (
        f"Figure 7 grid ({len(cold.cells)} cells x {RUNS} runs), cold "
        "execution vs prefix replay\n"
        f"  cold (PR 4 engine): {cold_s:8.2f} s "
        f"({n_runs / cold_s:6.1f} runs/s)\n"
        f"  prefix replay     : {replayed_s:8.2f} s "
        f"({n_runs / replayed_s:6.1f} runs/s)\n"
        f"  speedup           : {speedup:8.2f}x\n"
        f"  records identical : {identical}\n"))
    save_engine_baseline("prefix_replay_figure7", {
        "cells": len(cold.cells),
        "runs_per_cell": RUNS,
        "cold_wall_s": round(cold_s, 3),
        "replay_wall_s": round(replayed_s, 3),
        "cold_runs_per_s": round(n_runs / cold_s, 2),
        "replay_runs_per_s": round(n_runs / replayed_s, 2),
        "speedup": round(speedup, 2),
        "records_identical": identical,
    })

    assert speedup >= MIN_SPEEDUP, (
        f"prefix replay {replayed_s:.2f}s is only {speedup:.2f}x over "
        f"cold {cold_s:.2f}s (needs >= {MIN_SPEEDUP}x)")
