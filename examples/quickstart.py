#!/usr/bin/env python
"""Quickstart: inject storage faults into an HPC application in ~20 lines.

Runs the Nyx workload under all three fault models (a scaled-down version
of the paper's Fig. 7 Nyx rows) and prints the outcome breakdown with
95 % confidence intervals.
"""

from repro import Campaign, CampaignConfig, Outcome
from repro.analysis.stats import campaign_error_bars
from repro.apps.nyx import FieldConfig, NyxApplication

N_RUNS = 100


def main() -> None:
    # The application under test: a cosmological density snapshot whose
    # post-analysis (the halo finder) defines benign/SDC/detected.
    #
    # 32^3 keeps this demo fast; at this scale the metadata write is a
    # visible share of the fault surface (some shorn/dropped writes crash)
    # and halos occupy more of the volume than in the paper's 512^3 box
    # (higher shorn-write SDC).  The benchmarks use the 64^3 workload
    # whose rates track the paper -- see EXPERIMENTS.md.
    app = NyxApplication(seed=2021, field_config=FieldConfig(shape=(32, 32, 32)))

    print(f"Nyx under storage faults ({N_RUNS} injections per model)\n")
    for fault_model in ("BF", "SW", "DW"):
        config = CampaignConfig(fault_model=fault_model, n_runs=N_RUNS, seed=1)
        result = Campaign(app, config).run()
        bars = campaign_error_bars(result.tally)
        print(f"{fault_model}:")
        for outcome in Outcome:
            if result.tally.counts[outcome]:
                print(f"  {outcome.value:<9} {bars[outcome]}")
        print(f"  ({result.elapsed_seconds:.1f}s)\n")


if __name__ == "__main__":
    main()
