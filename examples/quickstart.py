#!/usr/bin/env python
"""Quickstart: a declarative fault-injection study in ~15 lines.

One serializable :class:`~repro.StudySpec` describes the whole study --
the Nyx workload under all three fault models (a scaled-down version of
the paper's Fig. 7 Nyx rows) -- and running it returns a uniform
:class:`~repro.ResultSet` with the outcome breakdown and 95 % confidence
intervals.  The same spec could be saved as TOML and run with
``python -m repro study run --file quickstart.toml``.
"""

from repro import ModelSpec, Outcome, StudySpec, TargetSpec, register_app

N_RUNS = 100


def main(n_runs: int = N_RUNS, shape=(32, 32, 32)) -> None:
    from repro.apps.nyx import FieldConfig, NyxApplication
    from repro.study import Study

    # The application under test: a cosmological density snapshot whose
    # post-analysis (the halo finder) defines benign/SDC/detected.
    #
    # 32^3 keeps this demo fast; at this scale the metadata write is a
    # visible share of the fault surface (some shorn/dropped writes crash)
    # and halos occupy more of the volume than in the paper's 512^3 box
    # (higher shorn-write SDC).  The benchmarks use the 64^3 workload
    # whose rates track the paper -- see EXPERIMENTS.md.
    register_app("nyx-demo", lambda: NyxApplication(
        seed=2021, field_config=FieldConfig(shape=tuple(shape))))

    # The study is data: one target x three fault models.  New studies
    # mean editing this spec (or a TOML file), not writing a driver.
    spec = StudySpec(
        name="quickstart",
        targets=(TargetSpec(app="nyx-demo", label="nyx"),),
        models=tuple(ModelSpec(model=fm) for fm in ("BF", "SW", "DW")),
        runs=n_runs, seed=1)

    print(f"Nyx under storage faults ({n_runs} injections per model)\n")
    results = Study(spec).run()
    for key in results.keys():
        bars = results.error_bars(key)
        print(f"{key}:")
        for outcome in Outcome:
            if results.tally(key).counts[outcome]:
                print(f"  {outcome.value:<9} {bars[outcome]}")
        print()
    print(results.footer())


if __name__ == "__main__":
    main()
