#!/usr/bin/env python
"""Characterizing *your own* application with FFIS.

The framework is application-agnostic (the paper's requirement R1/R2):
anything that performs its I/O through a mounted FFIS file system can be
characterized.  This example wraps a small log-structured key-value
store -- an application the paper never studied -- and runs the same
three fault models against it.
"""

import json
from typing import Dict, List, Tuple

from repro import Campaign, CampaignConfig, Outcome
from repro.apps.base import GoldenRecord, HpcApplication
from repro.fusefs.mount import MountPoint

DB_PATH = "/kv/store.log"
CHECK_PATH = "/kv/checksums.json"


class TinyKvStore(HpcApplication):
    """Append-only KV store with a record-level checksum side file.

    The store detects torn/corrupt records via per-record checksums --
    so unlike Nyx/QMCPACK/Montage it has *explicit* integrity checking,
    and the campaign shows how that shifts SDC into detected.
    """

    name = "tiny-kv"

    def __init__(self, n_records: int = 200) -> None:
        super().__init__()
        self.n_records = n_records
        self.records = [(f"key{i:04d}", f"value-{i * 7919 % 1000:03d}" * 4)
                        for i in range(n_records)]

    def run(self, mp: MountPoint) -> None:
        mp.makedirs("/kv")
        with self.phase("log-append"):
            payload = "".join(f"{k}={v}\n" for k, v in self.records).encode()
            mp.write_file(DB_PATH, payload, block_size=1024)
        with self.phase("checksums"):
            sums = {k: sum(v.encode()) % 65536 for k, v in self.records}
            mp.write_file(CHECK_PATH, json.dumps(sums).encode(),
                          block_size=1024)

    def output_paths(self) -> List[str]:
        return [DB_PATH, CHECK_PATH]

    def _verify(self, mp: MountPoint) -> Tuple[Dict[str, str], int]:
        sums = json.loads(mp.read_file(CHECK_PATH).decode("ascii"))
        table: Dict[str, str] = {}
        bad = 0
        for line in mp.read_file(DB_PATH).decode("ascii", "replace").splitlines():
            if "=" not in line:
                bad += 1
                continue
            key, value = line.split("=", 1)
            if key not in sums or sum(value.encode()) % 65536 != sums[key]:
                bad += 1
                continue
            table[key] = value
        return table, bad

    def analyze(self, mp: MountPoint) -> Dict[str, object]:
        table, bad = self._verify(mp)
        return {"table": table, "bad_records": bad}

    def classify(self, golden: GoldenRecord, mp: MountPoint) -> Tuple[Outcome, str]:
        if self.outputs_identical(golden, mp):
            return Outcome.BENIGN, "log and checksum file identical"
        table, bad = self._verify(mp)
        if bad:
            return Outcome.DETECTED, f"{bad} records failed checksum"
        if table != golden.analysis["table"]:
            return Outcome.SDC, "table differs but every checksum passed"
        return Outcome.BENIGN, "files differ only in dead bytes"


if __name__ == "__main__":
    app = TinyKvStore()
    print("characterizing a checksummed KV store (not in the paper):\n")
    for fault_model in ("BF", "SW", "DW"):
        config = CampaignConfig(fault_model=fault_model, n_runs=150, seed=5)
        result = Campaign(app, config).run()
        print(f"  {result.summary()}")
    print("\nNote the contrast with the paper's apps: explicit per-record")
    print("checksums convert nearly all would-be SDCs into detected.")
