#!/usr/bin/env python
"""The HDF5-metadata study (paper Sec. IV-D / V-A) end to end.

1. Byte-by-byte corruption of the Nyx plotfile metadata (Table III).
2. Targeted corruption of the six SDC-capable fields (Table IV).
3. The average-value detection + auto-correction methodology in action.
"""

from repro.experiments import run_table3, run_table4
from repro.experiments.params import nyx_small
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.mhdf5.repair import diagnose_dataset, repair_file


def metadata_sweep() -> None:
    print("=" * 70)
    print("Table III: byte-by-byte metadata corruption (stride 4 for speed;")
    print("           run the bench for the full per-byte sweep)")
    print("=" * 70)
    result = run_table3(byte_stride=4)
    print(result.render())


def field_symptoms() -> None:
    print("=" * 70)
    print("Table IV: what each SDC-capable field does to the post-analysis")
    print("=" * 70)
    print(run_table4().render())


def detect_and_repair() -> None:
    print("=" * 70)
    print("Detection + auto-correction (Sec. V-A)")
    print("=" * 70)
    app = nyx_small()
    fs = FFISFileSystem()
    with mount(fs) as mp:
        app.execute(mp)
        path = app.output_paths()[0]
        fieldmap = app.last_write_result.fieldmap

        # Corrupt the Exponent Bias field the way the paper's example does
        # (bias 0x7f -> 0x73 scales the field by 2^12).
        span = next(s for s in fieldmap if "Exponent Bias" in s.name)
        raw = bytearray(mp.read_file(path))
        raw[span.start] ^= 0x0C
        with mp.open(path, "r+") as f:
            f.pwrite(bytes(raw[span.start:span.start + 1]), span.start)

        diagnosis = diagnose_dataset(mp, path, "baryon_density")
        print(f"diagnosis : {diagnosis.kind.value} "
              f"(observed mean {diagnosis.observed_mean:.6g}; {diagnosis.detail})")
        report = repair_file(mp, path, "baryon_density")
        print(f"repair    : success={report.success}")
        for action in report.actions:
            print(f"  corrected {action.field_name}: "
                  f"{action.old_value} -> {action.new_value}")
        print(f"mean after: {report.mean_after:.6f} (invariant restored)")


if __name__ == "__main__":
    metadata_sweep()
    field_symptoms()
    detect_and_repair()
