#!/usr/bin/env python
"""QMCPACK under storage faults: the restart-file propagation channel.

The paper finds QMCPACK the least resilient of the three applications
(~50-60 % SDC).  The mechanism is visible here: the DMC series *reads
back* the walker configuration VMC wrote, so corrupted bytes silently
steer the projector and the final energy.
"""


from repro import Campaign, CampaignConfig, FFISFileSystem, mount
from repro.apps.qmcpack import (
    HE_EXACT_ENERGY,
    S001_SCALARS,
    SDC_WINDOW,
    QmcpackApplication,
)
from repro.fusefs.interposer import PrimitiveCall

N_RUNS = 60


def show_golden(app: QmcpackApplication) -> None:
    fs = FFISFileSystem()
    with mount(fs) as mp:
        golden = app.capture_golden(mp)
    print(f"golden DMC energy : {golden.analysis['energy']:.5f} "
          f"+/- {golden.analysis['error']:.5f} Ha")
    print(f"exact (paper)     : {HE_EXACT_ENERGY} Ha")
    print(f"SDC window        : {SDC_WINDOW}  (inside = silent)\n")


def demonstrate_propagation(app: QmcpackApplication) -> None:
    """One flipped bit in one walker coordinate changes the DMC output."""
    fs = FFISFileSystem()
    with mount(fs) as mp:
        app.execute(mp)
        golden_s001 = mp.read_file(S001_SCALARS)

    fs = FFISFileSystem()

    fired = []

    def flip_one_walker_bit(call: PrimitiveCall):
        if (call.primitive == "ffis_write" and not fired
                and call.args["offset"] > 0 and call.args["size"] >= 4096):
            buf = bytearray(call.args["buf"])
            # A mid-mantissa bit of one float64 coordinate: perturbs that
            # walker by ~1e-6 bohr -- far below any physical scale, yet
            # enough to steer the stochastic trajectory.
            buf[68] ^= 0x10
            call.args["buf"] = bytes(buf)
            fired.append(call.seqno)
        return None

    fs.interposer.add_hook("ffis_write", flip_one_walker_bit)
    with mount(fs) as mp:
        app.execute(mp)
        faulty_s001 = mp.read_file(S001_SCALARS)
        energy = app.energy(mp)

    changed = sum(a != b for a, b in zip(golden_s001, faulty_s001))
    print("one bit flipped in the walker file ->")
    print(f"  He.s001.scalar.dat bytes changed : {changed}")
    print(f"  reanalysed energy                : {energy.mean:.5f} Ha")
    lo, hi = SDC_WINDOW
    verdict = "SDC (silent!)" if lo <= energy.mean <= hi else "detected"
    print(f"  verdict                          : {verdict}\n")


def campaign(app: QmcpackApplication) -> None:
    print(f"campaigns ({N_RUNS} runs per fault model):")
    for fault_model in ("BF", "SW", "DW"):
        config = CampaignConfig(fault_model=fault_model, n_runs=N_RUNS, seed=7)
        result = Campaign(app, config).run()
        print(f"  {result.summary()}")


if __name__ == "__main__":
    app = QmcpackApplication(seed=2021)
    show_golden(app)
    demonstrate_propagation(app)
    campaign(app)
